//! Facade crate: re-exports the full clMPI reproduction stack.
pub use clmpi;
pub use himeno;
pub use minicl;
pub use minimpi;
pub use nanopowder;
pub use simnet;
pub use simtime;
