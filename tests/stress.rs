//! Stress and failure-injection tests across the stack.

use clmpi_repro::clmpi::{ClMpi, SystemConfig};
use clmpi_repro::minimpi::{run_world_sized, ANY_SOURCE, ANY_TAG};
use clmpi_repro::simtime::XorShift64;

#[test]
fn forty_rank_world_smoke() {
    // The largest configuration Fig. 10 uses: 40 ranks, all-to-root
    // traffic, with a clMPI runtime per rank.
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 40, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let _buf = rt.context().create_buffer(4096);
        if p.rank() == 0 {
            for _ in 1..40 {
                let r = p.comm.recv(&p.actor, ANY_SOURCE, ANY_TAG);
                assert_eq!(r.data.len(), 8);
            }
        } else {
            p.comm
                .send(&p.actor, 0, p.rank() as i32, &[p.rank() as u8; 8]);
        }
        // And one local device command each to exercise 40 executors.
        q.enqueue_kernel("noop", 1_000, &[], || {}).wait(&p.actor);
        rt.shutdown(&p.actor);
        p.rank()
    });
    assert_eq!(res.outputs.len(), 40);
}

#[test]
fn random_traffic_storm_terminates_and_delivers() {
    // 6 ranks exchange a deterministic random pattern of ~120 messages
    // with mixed sizes/tags; every byte must arrive, nothing may hang.
    let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 4, |p| {
        let n = p.size();
        let me = p.rank();
        let mut rng = XorShift64::new(99);
        // Every rank derives the same global plan: (src, dst, tag, len).
        let plan: Vec<(usize, usize, i32, usize)> = (0..120)
            .map(|i| {
                let src = rng.gen_range_usize(0, n);
                let mut dst = rng.gen_range_usize(0, n);
                if dst == src {
                    dst = (dst + 1) % n;
                }
                (src, dst, i, rng.gen_range_usize(1, 20_000))
            })
            .collect();
        let mut recvs = Vec::new();
        for &(src, dst, tag, len) in &plan {
            if dst == me {
                recvs.push((src, tag, len, p.comm.irecv(&p.actor, Some(src), Some(tag))));
            }
            if src == me {
                let _ = p.comm.isend(&p.actor, dst, tag, &vec![tag as u8; len]);
            }
        }
        let mut bytes = 0usize;
        for (_, tag, len, req) in recvs {
            let r = req.wait(&p.actor).expect("recv yields payload");
            assert_eq!(r.data.len(), len);
            assert!(r.data.iter().all(|&b| b == tag as u8));
            bytes += len;
        }
        bytes
    });
    let total: usize = res.outputs.iter().sum();
    assert!(total > 0, "some traffic flowed");
}

#[test]
fn deadlocked_program_is_detected_not_hung() {
    // Two ranks both blocking-receive first: a real deadlock. The engine
    // must detect and report it (propagated as a rank panic), not hang.
    let result = std::panic::catch_unwind(|| {
        run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, |p| {
            let peer = 1 - p.rank();
            let _ = p.comm.recv(&p.actor, Some(peer), Some(1)); // both block
            p.comm.send(&p.actor, peer, 1, &[0]);
        });
    });
    assert!(result.is_err(), "deadlock detected and reported");
}

#[test]
fn rank_panic_poisons_world_quickly() {
    let result = std::panic::catch_unwind(|| {
        run_world_sized(SystemConfig::cichlid().cluster.clone(), 3, |p| {
            if p.rank() == 1 {
                panic!("injected fault");
            }
            // Other ranks would block forever without poisoning.
            let _ = p.comm.recv(&p.actor, Some(1), Some(1));
        });
    });
    assert!(result.is_err(), "fault propagated to the caller");
}

#[test]
fn many_small_transfers_through_one_runtime() {
    // 200 tagged transfers through one clMPI runtime pair: exercises the
    // per-command runtime-thread lifecycle and the shutdown barrier.
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(256);
        let mut events = Vec::new();
        for i in 0..200 {
            let e = if p.rank() == 0 {
                rt.enqueue_send_buffer(&q, &buf, false, 0, 256, 1, i, &[], &p.actor)
            } else {
                rt.enqueue_recv_buffer(&q, &buf, false, 0, 256, 0, i, &[], &p.actor)
            }
            .expect("enqueue");
            events.push(e);
        }
        for e in &events {
            e.wait(&p.actor);
        }
        rt.shutdown(&p.actor);
        events.len()
    });
    assert_eq!(res.outputs, vec![200, 200]);
}
