//! Stress and failure-injection tests across the stack.

use std::sync::Arc;

use clmpi_repro::clmpi::{ClMpi, ObsSummary, PeerSelector, SystemConfig, TransferStrategy};
use clmpi_repro::minimpi::{run_world_sized, ANY_SOURCE, ANY_TAG};
use clmpi_repro::simtime::XorShift64;

#[test]
fn forty_rank_world_smoke() {
    // The largest configuration Fig. 10 uses: 40 ranks, all-to-root
    // traffic, with a clMPI runtime per rank.
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 40, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let _buf = rt.context().create_buffer(4096);
        if p.rank() == 0 {
            for _ in 1..40 {
                let r = p.comm.recv(&p.actor, ANY_SOURCE, ANY_TAG);
                assert_eq!(r.data.len(), 8);
            }
        } else {
            p.comm
                .send(&p.actor, 0, p.rank() as i32, &[p.rank() as u8; 8]);
        }
        // And one local device command each to exercise 40 executors.
        q.enqueue_kernel("noop", 1_000, &[], || {}).wait(&p.actor);
        rt.shutdown(&p.actor);
        p.rank()
    });
    assert_eq!(res.outputs.len(), 40);
}

#[test]
fn random_traffic_storm_terminates_and_delivers() {
    // 6 ranks exchange a deterministic random pattern of ~120 messages
    // with mixed sizes/tags; every byte must arrive, nothing may hang.
    let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 4, |p| {
        let n = p.size();
        let me = p.rank();
        let mut rng = XorShift64::new(99);
        // Every rank derives the same global plan: (src, dst, tag, len).
        let plan: Vec<(usize, usize, i32, usize)> = (0..120)
            .map(|i| {
                let src = rng.gen_range_usize(0, n);
                let mut dst = rng.gen_range_usize(0, n);
                if dst == src {
                    dst = (dst + 1) % n;
                }
                (src, dst, i, rng.gen_range_usize(1, 20_000))
            })
            .collect();
        let mut recvs = Vec::new();
        for &(src, dst, tag, len) in &plan {
            if dst == me {
                recvs.push((src, tag, len, p.comm.irecv(&p.actor, Some(src), Some(tag))));
            }
            if src == me {
                let _ = p.comm.isend(&p.actor, dst, tag, &vec![tag as u8; len]);
            }
        }
        let mut bytes = 0usize;
        for (_, tag, len, req) in recvs {
            let r = req.wait(&p.actor).expect("recv yields payload");
            assert_eq!(r.data.len(), len);
            assert!(r.data.iter().all(|&b| b == tag as u8));
            bytes += len;
        }
        bytes
    });
    let total: usize = res.outputs.iter().sum();
    assert!(total > 0, "some traffic flowed");
}

#[test]
fn deadlocked_program_is_detected_not_hung() {
    // Two ranks both blocking-receive first: a real deadlock. The engine
    // must detect and report it (propagated as a rank panic), not hang.
    let result = std::panic::catch_unwind(|| {
        run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, |p| {
            let peer = 1 - p.rank();
            let _ = p.comm.recv(&p.actor, Some(peer), Some(1)); // both block
            p.comm.send(&p.actor, peer, 1, &[0]);
        });
    });
    assert!(result.is_err(), "deadlock detected and reported");
}

#[test]
fn rank_panic_poisons_world_quickly() {
    let result = std::panic::catch_unwind(|| {
        run_world_sized(SystemConfig::cichlid().cluster.clone(), 3, |p| {
            if p.rank() == 1 {
                panic!("injected fault");
            }
            // Other ranks would block forever without poisoning.
            let _ = p.comm.recv(&p.actor, Some(1), Some(1));
        });
    });
    assert!(result.is_err(), "fault propagated to the caller");
}

#[test]
fn many_small_transfers_through_one_runtime() {
    // 200 tagged transfers through one clMPI runtime pair: exercises the
    // per-command runtime-thread lifecycle and the shutdown barrier.
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, |p| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(256);
        let mut events = Vec::new();
        for i in 0..200 {
            let e = if p.rank() == 0 {
                rt.enqueue_send_buffer(&q, &buf, false, 0, 256, 1, i, &[], &p.actor)
            } else {
                rt.enqueue_recv_buffer(&q, &buf, false, 0, 256, 0, i, &[], &p.actor)
            }
            .expect("enqueue");
            events.push(e);
        }
        for e in &events {
            e.wait(&p.actor);
        }
        rt.shutdown(&p.actor);
        events.len()
    });
    assert_eq!(res.outputs, vec![200, 200]);
}

#[test]
fn world_16_mixed_rma_and_two_sided_converges_per_peer() {
    // A full CXL pod machine (16 ranks, pods of 4) running a mixed
    // workload: every round each rank puts 1 MiB into a co-located pod
    // neighbor's window AND into a cross-pod peer's window, plus a
    // 64 KiB two-sided ring exchange. With a per-(peer, size)
    // [`PeerSelector`] armed, the adaptive layer must converge to the
    // shared-segment path for the in-pod peer and a NIC-side strategy
    // for the cross-pod one — the wires genuinely differ, so a single
    // global winner would be wrong for one of the two.
    // Alternate the put target between rounds: a strategy being explored
    // for the co-located peer is NIC-routed too (Pinned/Mapped force the
    // NIC regardless of fabric class), so putting to both peers in one
    // round would double the NIC load exactly in the non-Rma exploration
    // rounds and bias the remote comparison. With one put class per
    // round every candidate is measured under the same background load.
    const ROUNDS: usize = 10; // 5 colo + 5 remote: 4 to explore, then locked
    const RMA_SIZE: usize = 1 << 20;
    const P2P_SIZE: usize = 64 << 10;
    let sys = SystemConfig::cxl_pod();
    let pod = sys.cluster.cxl.as_ref().expect("cxl fabric").pool_nodes;
    let sys2 = sys.clone();
    let res = run_world_sized(sys.cluster.clone(), 16, move |p| {
        let n = p.size();
        let me = p.rank();
        let colo = (me / pod) * pod + ((me % pod) + 1) % pod;
        let remote = (me + pod) % n;
        let rt = ClMpi::new(&p, sys2.clone());
        let sel = Arc::new(PeerSelector::for_system(&sys2));
        rt.set_rma_adaptive(Some(sel.clone()));
        let q = rt.context().create_queue(0, format!("r{me}"));
        let buf = rt.context().create_buffer(RMA_SIZE);
        let p2p = rt.context().create_buffer(P2P_SIZE);
        let win = rt
            .expose_buffer_as_window(&buf, RMA_SIZE, &p.actor)
            .expect("window");
        p.comm.barrier(&p.actor);
        for round in 0..ROUNDS {
            let tag = round as i32;
            let mut gate = Vec::new();
            // Two-sided ring traffic rides alongside the one-sided
            // epoch on disjoint tags.
            let rv = rt
                .enqueue_recv_buffer(
                    &q,
                    &p2p,
                    false,
                    0,
                    P2P_SIZE,
                    (me + n - 1) % n,
                    tag,
                    &[],
                    &p.actor,
                )
                .expect("ring recv");
            let sd = rt
                .enqueue_send_buffer(
                    &q,
                    &p2p,
                    false,
                    0,
                    P2P_SIZE,
                    (me + 1) % n,
                    tag,
                    &[],
                    &p.actor,
                )
                .expect("ring send");
            let target = if round % 2 == 0 { colo } else { remote };
            let e = rt
                .enqueue_put_buffer(&q, &win, false, 0, 0, RMA_SIZE, target, &[], &p.actor)
                .expect("put");
            gate.push(e);
            gate.push(rv);
            gate.push(sd);
            let f = rt
                .enqueue_win_fence(&win, false, &gate, &p.actor)
                .expect("fence");
            f.wait_result(&p.actor).expect("round fence");
        }
        let verdict = (
            sel.winner_for(colo, RMA_SIZE),
            sel.winner_for(remote, RMA_SIZE),
        );
        rt.shutdown(&p.actor);
        verdict
    });
    for (rank, &(colo_winner, remote_winner)) in res.outputs.iter().enumerate() {
        assert_eq!(
            colo_winner,
            Some(TransferStrategy::Rma),
            "rank {rank}: co-located peer must converge to the shared segment"
        );
        let rw = remote_winner.unwrap_or_else(|| {
            panic!("rank {rank}: remote winner must be locked after {ROUNDS} rounds")
        });
        assert_ne!(
            rw,
            TransferStrategy::Rma,
            "rank {rank}: cross-pod RMA is NIC-routed and must lose to a NIC-side strategy"
        );
    }
    // Every rank moved one one-sided MiB per round and ROUNDS two-sided
    // ring messages; the observability layer keeps the two volumes apart.
    let s = ObsSummary::from_trace(&res.trace);
    for rank in 0..16 {
        let r = &s.ranks[&rank];
        assert_eq!(
            r.rma_bytes,
            (ROUNDS * RMA_SIZE) as u64,
            "rank {rank}: one-sided payload volume"
        );
        assert_eq!(
            r.bytes_sent,
            (ROUNDS * P2P_SIZE) as u64,
            "rank {rank}: two-sided ring volume"
        );
        assert_eq!(r.ops_failed, 0, "rank {rank}: clean run");
    }
}
