//! Property-based tests on the transfer layer: arbitrary sizes, offsets
//! and strategies must deliver bytes intact with sane timing.

use proptest::prelude::*;

use clmpi_repro::clmpi::{ClMpi, SystemConfig, TransferStrategy};
use clmpi_repro::minimpi::run_world_sized;

fn arb_strategy() -> impl Strategy<Value = TransferStrategy> {
    prop_oneof![
        Just(TransferStrategy::Pinned),
        Just(TransferStrategy::Mapped),
        Just(TransferStrategy::Auto),
        (1usize..512 * 1024).prop_map(TransferStrategy::Pipelined),
    ]
}

proptest! {
    // Each case spins up a 2-rank world with real threads; keep the case
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_transfer_delivers_intact(
        strategy in arb_strategy(),
        size in 1usize..600_000,
        offset in 0usize..4096,
        seed in any::<u64>(),
    ) {
        let total = offset + size + 128;
        let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, move |p| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_forced_strategy(Some(strategy));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(total);
            let payload: Vec<u8> = {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                (0..size).map(|_| rng.gen()).collect()
            };
            let ok = if p.rank() == 0 {
                buf.store(offset, &payload).unwrap();
                rt.enqueue_send_buffer(&q, &buf, true, offset, size, 1, 1, &[], &p.actor)
                    .unwrap();
                true
            } else {
                rt.enqueue_recv_buffer(&q, &buf, true, offset, size, 0, 1, &[], &p.actor)
                    .unwrap();
                buf.load(offset, size).unwrap() == payload
                    // Bytes outside the transfer window untouched:
                    && buf.load(0, offset).unwrap() == vec![0u8; offset]
                    && buf.load(offset + size, 128).unwrap() == vec![0u8; 128]
            };
            rt.shutdown(&p.actor);
            (ok, p.actor.now_ns())
        });
        prop_assert!(res.outputs.iter().all(|(ok, _)| *ok));
        // Timing sanity: never faster than the wire allows.
        let wire_floor = SystemConfig::ricc().cluster.link.message_ns(size);
        let elapsed = res.outputs.iter().map(|(_, t)| *t).max().unwrap();
        prop_assert!(elapsed >= wire_floor / 2, "elapsed {elapsed} vs floor {wire_floor}");
    }

    #[test]
    fn sendrecv_style_exchange_never_deadlocks(
        size_a in 1usize..200_000,
        size_b in 1usize..200_000,
    ) {
        let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, move |p| {
            let rt = ClMpi::new(&p, SystemConfig::cichlid());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let my_size = if p.rank() == 0 { size_a } else { size_b };
            let peer_size = if p.rank() == 0 { size_b } else { size_a };
            let mine = rt.context().create_buffer(my_size);
            let theirs = rt.context().create_buffer(peer_size);
            let peer = 1 - p.rank();
            let es = rt
                .enqueue_send_buffer(&q, &mine, false, 0, my_size, peer, p.rank() as i32, &[], &p.actor)
                .unwrap();
            let er = rt
                .enqueue_recv_buffer(&q, &theirs, false, 0, peer_size, peer, peer as i32, &[], &p.actor)
                .unwrap();
            es.wait(&p.actor);
            er.wait(&p.actor);
            rt.shutdown(&p.actor);
            true
        });
        prop_assert!(res.outputs.iter().all(|&b| b));
    }
}
