//! Property-style tests on the transfer layer: deterministically seeded
//! case generation (a local xorshift replaces the external `proptest` /
//! `rand` dependencies so the workspace builds fully offline). Arbitrary
//! sizes, offsets and strategies must deliver bytes intact with sane
//! timing — and fault-injected runs must be exactly reproducible.

use clmpi_repro::clmpi::{data_plane_faults, ClMpi, SystemConfig, TransferStrategy};
use clmpi_repro::himeno::{run_himeno_with_faults, GridSize, HimenoConfig, Variant};
use clmpi_repro::minimpi::{run_world_faulty, run_world_sized, FaultPlan};
use clmpi_repro::simtime::XorShift64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn arb_strategy(rng: &mut XorShift64) -> TransferStrategy {
    match rng.next_u64() % 4 {
        0 => TransferStrategy::Pinned,
        1 => TransferStrategy::Mapped,
        2 => TransferStrategy::Auto,
        _ => TransferStrategy::Pipelined(1 + (rng.next_u64() as usize) % (512 * 1024)),
    }
}

#[test]
fn any_transfer_delivers_intact() {
    // Each case spins up a 2-rank world with real threads; keep the case
    // count modest (the proptest original used 24 cases too).
    let mut rng = XorShift64::new(0x70707e57);
    for case in 0..24 {
        let strategy = arb_strategy(&mut rng);
        let size = 1 + (rng.next_u64() as usize) % 600_000;
        let offset = (rng.next_u64() as usize) % 4096;
        let seed = rng.next_u64();
        let total = offset + size + 128;
        let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, move |p| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_forced_strategy(Some(strategy));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(total);
            let payload = pattern(size, seed);
            let ok = if p.rank() == 0 {
                buf.store(offset, &payload).unwrap();
                rt.enqueue_send_buffer(&q, &buf, true, offset, size, 1, 1, &[], &p.actor)
                    .unwrap();
                true
            } else {
                rt.enqueue_recv_buffer(&q, &buf, true, offset, size, 0, 1, &[], &p.actor)
                    .unwrap();
                buf.load(offset, size).unwrap() == payload
                    // Bytes outside the transfer window untouched:
                    && buf.load(0, offset).unwrap() == vec![0u8; offset]
                    && buf.load(offset + size, 128).unwrap() == vec![0u8; 128]
            };
            rt.shutdown(&p.actor);
            (ok, p.actor.now_ns())
        });
        assert!(
            res.outputs.iter().all(|(ok, _)| *ok),
            "case {case}: {strategy:?} size {size} offset {offset} corrupted data"
        );
        // Timing sanity: never faster than the wire allows.
        let wire_floor = SystemConfig::ricc().cluster.link.message_ns(size);
        let elapsed = res.outputs.iter().map(|(_, t)| *t).max().unwrap();
        assert!(
            elapsed >= wire_floor / 2,
            "case {case}: elapsed {elapsed} vs floor {wire_floor}"
        );
    }
}

#[test]
fn sendrecv_style_exchange_never_deadlocks() {
    let mut rng = XorShift64::new(0x5e4d2ecf);
    for _ in 0..8 {
        let size_a = 1 + (rng.next_u64() as usize) % 200_000;
        let size_b = 1 + (rng.next_u64() as usize) % 200_000;
        let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, move |p| {
            let rt = ClMpi::new(&p, SystemConfig::cichlid());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let my_size = if p.rank() == 0 { size_a } else { size_b };
            let peer_size = if p.rank() == 0 { size_b } else { size_a };
            let mine = rt.context().create_buffer(my_size);
            let theirs = rt.context().create_buffer(peer_size);
            let peer = 1 - p.rank();
            let es = rt
                .enqueue_send_buffer(
                    &q,
                    &mine,
                    false,
                    0,
                    my_size,
                    peer,
                    p.rank() as i32,
                    &[],
                    &p.actor,
                )
                .unwrap();
            let er = rt
                .enqueue_recv_buffer(
                    &q,
                    &theirs,
                    false,
                    0,
                    peer_size,
                    peer,
                    peer as i32,
                    &[],
                    &p.actor,
                )
                .unwrap();
            es.wait(&p.actor);
            er.wait(&p.actor);
            rt.shutdown(&p.actor);
            true
        });
        assert!(res.outputs.iter().all(|&b| b));
    }
}

/// Fault determinism as a property: across several (seed, drop-rate)
/// plans, two runs of the same plan agree on every observable — payloads,
/// elapsed virtual time, fault counters, and the full trace.
#[test]
fn same_fault_plan_reproduces_the_run_exactly() {
    for (seed, drop_p, jitter) in [
        (1u64, 0.02, 0u64),
        (99, 0.10, 25_000),
        (0xfeed, 0.30, 80_000),
    ] {
        let run = move || {
            let plan = data_plane_faults(FaultPlan::drops(seed, drop_p).with_jitter(jitter));
            let res = run_world_faulty(SystemConfig::ricc().cluster.clone(), 2, plan, move |p| {
                let rt = ClMpi::new(&p, SystemConfig::ricc());
                rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 16)));
                let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                let buf = rt.context().create_buffer(512 << 10);
                let out = if p.rank() == 0 {
                    buf.store(0, &pattern(512 << 10, seed ^ 0xabc)).unwrap();
                    rt.enqueue_send_buffer(&q, &buf, true, 0, 512 << 10, 1, 1, &[], &p.actor)
                        .unwrap();
                    Vec::new()
                } else {
                    rt.enqueue_recv_buffer(&q, &buf, true, 0, 512 << 10, 0, 1, &[], &p.actor)
                        .unwrap();
                    buf.load(0, 512 << 10).unwrap()
                };
                rt.shutdown(&p.actor);
                out
            });
            let spans: Vec<String> = res
                .trace
                .spans()
                .iter()
                .map(|s| format!("{}|{}|{}|{}", s.lane, s.label, s.start, s.end))
                .collect();
            (res.elapsed_ns, res.outputs.clone(), res.fault_counts, spans)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seed {seed} p {drop_p} must reproduce exactly");
        assert_eq!(
            a.1[1],
            pattern(512 << 10, seed ^ 0xabc),
            "payload must arrive intact despite drops"
        );
    }
}

/// The issue's end-to-end acceptance case: Himeno M on 2 ranks, clMPI
/// variant, under a seeded 1% data-plane drop rate — the run completes,
/// the numerics are bit-identical to the fault-free reference, and the
/// retries are visible in both the transfer stats and the trace.
#[test]
fn himeno_m_numerics_survive_one_percent_drop() {
    let cfg = || HimenoConfig {
        size: GridSize::M,
        iters: 2,
        sys: SystemConfig::cichlid(),
        nodes: 2,
        strategy: None,
        halo: Default::default(),
    };
    let clean = run_himeno_with_faults(Variant::ClMpi, cfg(), FaultPlan::none());
    assert_eq!(clean.fault_counts.dropped(), 0);
    assert_eq!(clean.transfer_faults, Default::default());

    let faulty = run_himeno_with_faults(
        Variant::ClMpi,
        cfg(),
        data_plane_faults(FaultPlan::drops(2, 0.01)),
    );
    // Bit-identical physics: drops delay chunks but never corrupt them.
    assert_eq!(faulty.checksum.to_bits(), clean.checksum.to_bits());
    assert_eq!(faulty.gosa.to_bits(), clean.gosa.to_bits());
    // The run really was lossy, and the runtime really did retry.
    assert!(faulty.fault_counts.dropped() > 0, "1% plan never fired");
    assert!(faulty.transfer_faults.retries > 0, "no retries recorded");
    assert_eq!(faulty.transfer_faults.failures, 0);
    assert!(
        faulty
            .trace
            .spans()
            .iter()
            .any(|s| s.lane.contains(".fault")),
        "retries must appear in the fault trace lane"
    );
    // A perturbed fabric can only slow the run down.
    assert!(faulty.elapsed_ns >= clean.elapsed_ns);
}
