//! Cross-crate integration tests: the full stack from the facade crate.

use clmpi_repro::clmpi::{analytic, ClMpi, SystemConfig, TransferStrategy};
use clmpi_repro::himeno::{run_himeno, GridSize, HimenoConfig, Variant};
use clmpi_repro::minimpi::run_world_sized;
use clmpi_repro::nanopowder::{reference_simulation, run_nanopowder, NanoConfig, NanoVariant};

#[test]
fn facade_reexports_whole_stack() {
    // Compile-time check mostly; touch one item from each layer.
    let clock = clmpi_repro::simtime::SimClock::new();
    assert_eq!(clock.now_ns(), 0);
    let spec = clmpi_repro::simnet::ClusterSpec::cichlid();
    assert_eq!(spec.nodes, 4);
    let dev = clmpi_repro::minicl::DeviceSpec::tesla_c1060();
    assert!(dev.mem_bw_bps > 0.0);
}

#[test]
fn measured_transfer_times_track_the_analytic_model() {
    // The simulated pipeline (reservations + virtual time) and the
    // closed-form model in clmpi::analytic must agree within 15% for
    // idle-link single transfers — they are independent derivations.
    for sys in [SystemConfig::cichlid(), SystemConfig::ricc()] {
        for strategy in [
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
            TransferStrategy::Pipelined(1 << 20),
        ] {
            let size = 8 << 20;
            let sys2 = sys.clone();
            let res = run_world_sized(sys.cluster.clone(), 2, move |p| {
                let rt = ClMpi::new(&p, sys2.clone());
                rt.set_forced_strategy(Some(strategy));
                let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                let buf = rt.context().create_buffer(size);
                p.comm.barrier(&p.actor);
                let t0 = p.actor.now_ns();
                if p.rank() == 0 {
                    rt.enqueue_send_buffer(&q, &buf, true, 0, size, 1, 1, &[], &p.actor)
                        .unwrap();
                } else {
                    rt.enqueue_recv_buffer(&q, &buf, true, 0, size, 0, 1, &[], &p.actor)
                        .unwrap();
                }
                rt.shutdown(&p.actor);
                p.actor.now_ns() - t0
            });
            let measured = *res.outputs.iter().max().unwrap() as f64;
            let predicted = analytic::transfer_ns(&sys, strategy, size) as f64;
            let ratio = measured / predicted;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "{} {} 8MiB: measured {measured} vs analytic {predicted}",
                sys.cluster.name,
                strategy.name()
            );
        }
    }
}

#[test]
fn auto_strategy_is_never_slower_than_worst_fixed() {
    let sys = SystemConfig::ricc();
    let size = 8 << 20;
    let time = |strategy| {
        let sys2 = sys.clone();
        let res = run_world_sized(sys.cluster.clone(), 2, move |p| {
            let rt = ClMpi::new(&p, sys2.clone());
            rt.set_forced_strategy(strategy);
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            p.comm.barrier(&p.actor);
            let t0 = p.actor.now_ns();
            if p.rank() == 0 {
                rt.enqueue_send_buffer(&q, &buf, true, 0, size, 1, 1, &[], &p.actor)
                    .unwrap();
            } else {
                rt.enqueue_recv_buffer(&q, &buf, true, 0, size, 0, 1, &[], &p.actor)
                    .unwrap();
            }
            rt.shutdown(&p.actor);
            p.actor.now_ns() - t0
        });
        *res.outputs.iter().max().unwrap()
    };
    let auto = time(None);
    let mapped = time(Some(TransferStrategy::Mapped));
    let pinned = time(Some(TransferStrategy::Pinned));
    assert!(auto <= mapped.max(pinned), "auto {auto} beats worst fixed");
}

#[test]
fn himeno_fig9a_ordering_holds_end_to_end() {
    // The Fig. 9(a) 4-node ordering on the S grid (fast enough for CI):
    // serial < hand-optimized < clMPI.
    let cfg = HimenoConfig {
        size: GridSize::S,
        iters: 4,
        sys: SystemConfig::cichlid(),
        nodes: 4,
        strategy: None,
        halo: Default::default(),
    };
    let serial = run_himeno(Variant::Serial, cfg.clone());
    let hand = run_himeno(Variant::HandOptimized, cfg.clone());
    let cl = run_himeno(Variant::ClMpi, cfg);
    assert!(serial.gflops < hand.gflops);
    assert!(hand.gflops < cl.gflops);
    // And the paper's headline: ~14% when communication is exposed.
    let gain = cl.gflops / hand.gflops;
    assert!(
        (1.05..=1.35).contains(&gain),
        "clMPI/hand gain {gain:.3} in the paper's ballpark"
    );
}

#[test]
fn event_chain_ablation_shows_blocking_cost() {
    let cfg = HimenoConfig {
        size: GridSize::S,
        iters: 4,
        sys: SystemConfig::cichlid(),
        nodes: 4,
        strategy: None,
        halo: Default::default(),
    };
    let free = run_himeno(Variant::ClMpi, cfg.clone());
    let blocked = run_himeno(Variant::ClMpiBlocked, cfg);
    assert!(
        blocked.gflops <= free.gflops,
        "host-blocking can only hurt: {} vs {}",
        blocked.gflops,
        free.gflops
    );
}

#[test]
fn nanopowder_validates_and_gains_end_to_end() {
    let cfg = NanoConfig {
        sections: 720,
        steps: 3,
        sys: SystemConfig::ricc(),
        nodes: 4,
    };
    let base = run_nanopowder(NanoVariant::Baseline, cfg.clone());
    let cl = run_nanopowder(NanoVariant::ClMpi, cfg);
    let reference = reference_simulation(720, 3);
    assert_eq!(base.final_n, reference);
    assert_eq!(cl.final_n, reference);
    assert!(cl.step_ns < base.step_ns);
}
