//! Fig. 8-style sweep for the one-sided path: sustained bandwidth of a
//! window `Put` (closed by a collective fence) vs the two-sided transfer
//! the auto policy would pick, across all three fabrics. On CXL-Pod the
//! sweep measures both a co-located pair (ranks 0→1, same pool — the
//! shared-segment port) and a cross-pod pair (ranks 0→4, NIC-routed
//! RMA).
//!
//! Besides the console table, every point is persisted to
//! `BENCH_rma.json` — all fields are virtual-time derived, so the file
//! is byte-identical across runs and CI archives it as the RMA
//! perf-trajectory data point.
//!
//! Asserts the tentpole acceptance bound: on CXL-Pod, shared-segment RMA
//! beats the two-sided NIC path for every co-located size ≥ 1 MiB.
//!
//! Usage: `rma [cichlid|ricc|cxl-pod] [--quick] [--bench-out path]`

use clmpi::obs::validate_json;
use clmpi::{SystemConfig, TransferStrategy};
use clmpi_bench::{fmt_size, measure_p2p, measure_rma, CsvOut};

/// One measured point, as persisted to `BENCH_rma.json`.
struct Point {
    system: String,
    size: usize,
    path: String,
    per_transfer_ns: u64,
    mbps_bits: u64,
}

/// The (world, origin, target, label) pairs swept per system: every
/// fabric gets the adjacent pair; CXL-Pod adds a cross-pod pair so the
/// NIC-routed RMA fallback is on the same chart.
fn pairs(sys: &SystemConfig) -> Vec<(usize, usize, usize, &'static str)> {
    if sys.cluster.cxl.is_some() {
        vec![(2, 0, 1, "rma"), (5, 0, 4, "rma-remote")]
    } else {
        vec![(2, 0, 1, "rma")]
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bench_out = "BENCH_rma.json".to_string();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                it.next(); // value consumed by CsvOut::from_args
            }
            "--bench-out" => {
                bench_out = it.next().expect("--bench-out needs a value").clone();
            }
            other => names.push(other),
        }
    }
    let names = if names.is_empty() {
        vec!["cichlid", "ricc", "cxl-pod"]
    } else {
        names
    };
    let mut csv = CsvOut::from_args(&args);
    csv.row(["system", "size_bytes", "path", "mbps"]);
    let mut points = Vec::new();
    for name in names {
        let sys = SystemConfig::by_name(name)
            .unwrap_or_else(|| panic!("unknown system '{name}' (cichlid|ricc|cxl-pod)"));
        run_system(&sys, quick, &mut csv, &mut points);
    }
    csv.finish();
    assert_colocated_rma_wins(&points);
    write_bench_json(&bench_out, quick, &points);
}

fn run_system(sys: &SystemConfig, quick: bool, csv: &mut CsvOut, points: &mut Vec<Point>) {
    let sizes: Vec<usize> = if quick {
        vec![64 << 10, 1 << 20, 8 << 20]
    } else {
        (16..=23).map(|s| 1usize << s).collect() // 64 KiB … 8 MiB
    };
    let pairs = pairs(sys);
    println!();
    println!(
        "RMA sweep — sustained bandwidth [MB/s], {} ({})",
        sys.cluster.name, sys.cluster.nic
    );
    print!("{:>8}  {:>15}", "size", "two-sided");
    for &(_, _, _, label) in &pairs {
        print!("  {label:>15}");
    }
    println!();
    for &size in &sizes {
        let reps = if size >= 8 << 20 { 1 } else { 2 };
        print!("{:>8}", fmt_size(size));
        // The two-sided baseline: whatever the system's auto policy
        // resolves to at this size, over the NIC.
        let st = sys.resolve(TransferStrategy::Auto, size);
        let two = measure_p2p(sys, st, size, reps);
        record(sys, size, "two-sided", &two, csv, points);
        print!("  {:>15.1}", two.mbps);
        for &(world, origin, target, label) in &pairs {
            let bp = measure_rma(sys, world, origin, target, size, reps);
            record(sys, size, label, &bp, csv, points);
            print!("  {:>15.1}", bp.mbps);
        }
        println!();
    }
    if let Some(cxl) = &sys.cluster.cxl {
        println!(
            "(pool port {:.1} MB/s shared by pods of {}; NIC {:.1} MB/s)",
            cxl.link.bandwidth_bps / 1e6,
            cxl.pool_nodes,
            sys.cluster.link.bandwidth_bps / 1e6
        );
    }
}

fn record(
    sys: &SystemConfig,
    size: usize,
    path: &str,
    bp: &clmpi_bench::BandwidthPoint,
    csv: &mut CsvOut,
    points: &mut Vec<Point>,
) {
    csv.row([
        sys.cluster.name.to_string(),
        size.to_string(),
        path.to_string(),
        format!("{:.2}", bp.mbps),
    ]);
    points.push(Point {
        system: sys.cluster.name.to_string(),
        size: bp.size,
        path: path.to_string(),
        per_transfer_ns: bp.per_transfer_ns,
        mbps_bits: bp.mbps.to_bits(),
    });
}

/// Tentpole acceptance: on CXL-Pod every co-located RMA point of
/// ≥ 1 MiB must beat the two-sided NIC baseline at the same size.
fn assert_colocated_rma_wins(points: &[Point]) {
    for p in points
        .iter()
        .filter(|p| p.system == "CXL-Pod" && p.path == "rma" && p.size >= 1 << 20)
    {
        let two = points
            .iter()
            .find(|q| q.system == p.system && q.size == p.size && q.path == "two-sided")
            .expect("matching two-sided point");
        let (rma, base) = (f64::from_bits(p.mbps_bits), f64::from_bits(two.mbps_bits));
        assert!(
            rma > base,
            "co-located RMA must beat two-sided NIC at {}: {rma:.1} vs {base:.1} MB/s",
            fmt_size(p.size)
        );
    }
}

/// Persist every measured point as deterministic JSON. `mbps` is stored
/// as an IEEE-754 bit pattern (exact equality across runs); the
/// human-readable rate is recoverable as `f64::from_bits`.
fn write_bench_json(path: &str, quick: bool, points: &[Point]) {
    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            "    {{ \"system\": \"{}\", \"size\": {}, \"path\": \"{}\", \
             \"per_transfer_ns\": {}, \"mbps_bits\": {} }}{}\n",
            p.system,
            p.size,
            p.path,
            p.per_transfer_ns,
            p.mbps_bits,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"rma_bandwidth\",\n  \"quick\": {quick},\n  \"points\": [\n{body}  ]\n}}\n"
    );
    validate_json(&json).expect("BENCH json must be well-formed");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("(deterministic bench json written to {path})");
}
