//! Regenerates Fig. 3: the Himeno domain decomposition — 1-D split along
//! the first axis, each rank's slab halved into lower part B and upper
//! part A, ghost planes exchanged with neighbors.
//!
//! Usage: `fig3 [--size xs|s|m|l] [--nodes N]`

use himeno::GridSize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = GridSize::M;
    let mut nodes = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => size = GridSize::by_name(it.next().expect("value")).expect("xs|s|m|l"),
            "--nodes" => nodes = it.next().expect("value").parse().expect("node count"),
            _ => {}
        }
    }
    let (mi, mj, mk) = size.dims();
    let interior = mi - 2;
    let base = interior / nodes;
    let rem = interior % nodes;
    println!("Fig. 3 — domain decomposition: {mi}x{mj}x{mk} grid, {nodes} ranks");
    println!(
        "(planes are {mj}x{mk} = {} KiB of f32 each)\n",
        mj * mk * 4 / 1024
    );
    for r in (0..nodes).rev() {
        let n = base + usize::from(r < rem);
        let start = 1 + r * base + r.min(rem);
        let half = n / 2;
        let even = r % 2 == 0;
        println!("  +--------------------------------------+");
        if r + 1 < nodes {
            println!("  | ghost (from rank {})                 |", r + 1);
        } else {
            println!("  | fixed boundary plane                 |");
        }
        println!(
            "  | A: planes {:>3}..{:<3} ({} planes){}    |",
            start + half,
            start + n - 1,
            n - half,
            if even { " [1st]" } else { " [2nd]" }
        );
        println!("  |--------------------------------------|");
        println!(
            "  | B: planes {:>3}..{:<3} ({} planes){}    |",
            start,
            start + half - 1,
            half,
            if even { " [2nd]" } else { " [1st]" }
        );
        if r > 0 {
            println!("  | ghost (from rank {})                 |", r - 1);
        } else {
            println!("  | fixed boundary plane                 |");
        }
        println!(
            "  +--------------------------------------+  rank {r} ({})",
            if even {
                "even: A then B"
            } else {
                "odd: B then A"
            }
        );
    }
    println!("\nHalo planes exchanged every iteration: the top plane of A travels up,");
    println!("the bottom plane of B travels down; even ranks exchange B's halo while");
    println!("computing A (and vice versa for odd ranks), pairing each link's endpoints.");
}
