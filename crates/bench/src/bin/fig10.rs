//! Regenerates Fig. 10: nanopowder growth simulation on RICC — time per
//! step and speedup vs node count (divisors of 40), baseline MPI
//! distribution vs clMPI (`clEnqueueBcastBuffer`, the pipelined
//! device-buffer broadcast).
//!
//! Usage: `fig10 [--sections K] [--steps N] [--quick]`

use clmpi::SystemConfig;
use clmpi_bench::CsvOut;
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut sections = 3240usize; // K² × 4 B ≈ 42 MB of coefficients
    let mut steps = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sections" => sections = it.next().expect("value").parse().expect("sections"),
            "--steps" => steps = it.next().expect("value").parse().expect("steps"),
            _ => {}
        }
    }
    let nodes: Vec<usize> = if quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 4, 5, 8, 10, 20, 40]
    };
    let sys = SystemConfig::ricc();
    println!(
        "Fig. 10 — nanopowder growth simulation, RICC, K={sections} (≈{:.0} MB coefficients/step), {steps} steps",
        (sections * sections * 4) as f64 / 1e6
    );
    println!(
        "{:>6}  {:>14}  {:>14}  {:>10}  {:>12}  {:>12}",
        "nodes", "baseline ms", "clMPI ms", "clMPI gain", "base speedup", "clMPI speedup"
    );
    let mut csv = CsvOut::from_args(&args);
    csv.row(["nodes", "baseline_ms_per_step", "clmpi_ms_per_step"]);
    let mut base1 = None;
    for &n in &nodes {
        if !sections.is_multiple_of(n) {
            println!("{n:>6}  (skipped: {n} does not divide K={sections})");
            continue;
        }
        let cfg = NanoConfig {
            sections,
            steps,
            sys: sys.clone(),
            nodes: n,
        };
        let base = run_nanopowder(NanoVariant::Baseline, cfg.clone());
        let cl = run_nanopowder(NanoVariant::ClMpi, cfg);
        let b_ms = base.step_ns as f64 / 1e6;
        let c_ms = cl.step_ns as f64 / 1e6;
        csv.row([n.to_string(), format!("{b_ms:.3}"), format!("{c_ms:.3}")]);
        let b1 = *base1.get_or_insert(b_ms);
        println!(
            "{:>6}  {:>14.2}  {:>14.2}  {:>9.1}%  {:>12.2}  {:>12.2}",
            n,
            b_ms,
            c_ms,
            (b_ms / c_ms - 1.0) * 100.0,
            b1 / b_ms,
            b1 / c_ms
        );
    }
    csv.finish();
    println!("(speedups relative to 1-node baseline; the baseline's per-rank fan-out from rank 0");
    println!(" serializes ~42 MB × (n−1) through its NIC, so its curve flattens as nodes grow —");
    println!(" clMPI's pipelined ring broadcast moves each byte across each link once, so its");
    println!(" distribution cost stays roughly constant with n)");
}
