//! Regenerates Table I: system specifications of Cichlid and RICC, as
//! encoded by the simulation presets.

use clmpi::SystemConfig;

fn main() {
    let systems = [SystemConfig::cichlid(), SystemConfig::ricc()];
    println!("Table I — System specifications (simulation presets)");
    println!(
        "{:<22} {:<34} {:<34}",
        "", systems[0].cluster.name, systems[1].cluster.name
    );
    type RowFn = Box<dyn Fn(&SystemConfig) -> String>;
    let rows: Vec<(&str, RowFn)> = vec![
        ("Nodes", Box::new(|s| s.cluster.nodes.to_string())),
        ("CPU", Box::new(|s| s.cluster.cpu.to_string())),
        ("GPU", Box::new(|s| s.cluster.gpu.to_string())),
        ("NIC", Box::new(|s| s.cluster.nic.to_string())),
        ("MPI", Box::new(|s| s.cluster.mpi.to_string())),
        (
            "Net bandwidth",
            Box::new(|s| format!("{:.1} MB/s", s.cluster.link.bandwidth_bps / 1e6)),
        ),
        (
            "Net latency",
            Box::new(|s| format!("{} us", s.cluster.link.latency_ns / 1000)),
        ),
        (
            "Per-msg overhead",
            Box::new(|s| format!("{} us", s.cluster.link.per_msg_overhead_ns / 1000)),
        ),
        (
            "GPU mem bandwidth",
            Box::new(|s| format!("{:.0} GB/s", s.device.mem_bw_bps / 1e9)),
        ),
        (
            "PCIe pinned",
            Box::new(|s| format!("{:.1} GB/s", s.device.pcie.pinned_bps / 1e9)),
        ),
        (
            "PCIe pageable",
            Box::new(|s| format!("{:.1} GB/s", s.device.pcie.pageable_bps / 1e9)),
        ),
        (
            "PCIe mapped",
            Box::new(|s| format!("{:.1} GB/s", s.device.pcie.mapped_bps / 1e9)),
        ),
        (
            "Small-msg strategy",
            Box::new(|s| s.small_message_strategy.name()),
        ),
        (
            "Pipeline threshold",
            Box::new(|s| format!("{} MiB", s.pipeline_threshold >> 20)),
        ),
    ];
    for (label, f) in rows {
        println!(
            "{:<22} {:<34} {:<34}",
            label,
            f(&systems[0]),
            f(&systems[1])
        );
    }
}
