//! Regenerates Fig. 9: Himeno benchmark (M size) sustained GFLOPS vs
//! node count for the serial, hand-optimized, and clMPI implementations,
//! with the serial comp/comm ratio annotation of Fig. 9(a).
//!
//! Usage: `fig9 [cichlid|ricc] [--size xs|s|m|l] [--iters N]`

use clmpi::SystemConfig;
use clmpi_bench::CsvOut;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = GridSize::M;
    let mut iters = 12usize;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                let v = it.next().expect("--size needs a value");
                size = GridSize::by_name(v).expect("size is xs|s|m|l");
            }
            "--iters" => {
                iters = it
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("iter count");
            }
            "--csv" => {
                it.next(); // value consumed by CsvOut::from_args
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = vec!["cichlid".into(), "ricc".into()];
    }
    let mut csv = CsvOut::from_args(&args);
    csv.row(["system", "nodes", "variant", "gflops", "comp_comm_ratio"]);
    for name in names {
        let sys = SystemConfig::by_name(&name)
            .unwrap_or_else(|| panic!("unknown system '{name}' (cichlid|ricc)"));
        run_system(sys, size, iters, &mut csv);
    }
    csv.finish();
}

fn run_system(sys: SystemConfig, size: GridSize, iters: usize, csv: &mut CsvOut) {
    let nodes: Vec<usize> = if sys.cluster.name == "Cichlid" {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    println!();
    println!(
        "Fig. 9({}) — Himeno {:?} sustained GFLOPS, {} (iters={iters})",
        if sys.cluster.name == "Cichlid" {
            "a"
        } else {
            "b"
        },
        size,
        sys.cluster.name
    );
    println!(
        "{:>6}  {:>10}  {:>15}  {:>10}  {:>12}  {:>10}",
        "nodes", "serial", "hand-optimized", "clMPI", "clMPI/hand", "comp/comm"
    );
    for &n in &nodes {
        let cfg = |strategy| HimenoConfig {
            size,
            iters,
            sys: sys.clone(),
            nodes: n,
            strategy,
            halo: Default::default(),
        };
        let serial = run_himeno(Variant::Serial, cfg(None));
        let hand = run_himeno(Variant::HandOptimized, cfg(None));
        let cl = run_himeno(Variant::ClMpi, cfg(None));
        let ratio = if serial.comm_ns > 0 {
            serial.comp_ns as f64 / serial.comm_ns as f64
        } else {
            f64::INFINITY
        };
        for (v, r) in [
            ("serial", &serial),
            ("hand-optimized", &hand),
            ("clMPI", &cl),
        ] {
            csv.row([
                sys.cluster.name.to_string(),
                n.to_string(),
                v.to_string(),
                format!("{:.3}", r.gflops),
                format!("{ratio:.3}"),
            ]);
        }
        println!(
            "{:>6}  {:>10.2}  {:>15.2}  {:>10.2}  {:>12.3}  {:>10.2}",
            n,
            serial.gflops,
            hand.gflops,
            cl.gflops,
            cl.gflops / hand.gflops,
            ratio
        );
    }
    println!("(comp/comm: serial-variant kernel time over communication time per iteration;");
    println!(" the paper's +14% clMPI/hand gap appears where this ratio drops below 1)");
}
