//! Regenerates Fig. 4: execution timelines of the Himeno two-stage loop.
//!
//! (a) hand-optimized where computation covers communication,
//! (b) hand-optimized where it does not (second-stage communication is
//!     delayed by the blocked host thread),
//! (c) the clMPI implementation on the same configuration as (b) — the
//!     runtime releases communication commands as soon as their events
//!     fire, without host involvement.
//!
//! Rendered from *actual* activity traces of small runs (GPU lanes are
//! kernel executions, comm lanes are d2h / network / h2d reservations).
//!
//! Usage: `fig4 [--width N]`

use clmpi::{OverlapReport, SystemConfig};
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};

fn main() {
    let width = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--width")
        .map(|w| w[1].parse().expect("width"))
        .unwrap_or(100usize);

    // (a): RICC, 2 nodes — computation dominates, comm hidden.
    let a = run_himeno(
        Variant::HandOptimized,
        HimenoConfig {
            size: GridSize::S,
            iters: 3,
            sys: SystemConfig::ricc(),
            nodes: 2,
            strategy: None,
            halo: Default::default(),
        },
    );
    println!("Fig. 4(a) — hand-optimized, computation ≥ communication (RICC, 2 nodes, S):");
    println!("{}", a.trace.render_ascii(width));
    println!("{}", OverlapReport::from_trace(&a.trace).render());

    // (b): Cichlid, 4 nodes — communication exposed; host blocking delays
    // the second stage.
    let cfg_b = HimenoConfig {
        size: GridSize::S,
        iters: 3,
        sys: SystemConfig::cichlid(),
        nodes: 4,
        strategy: None,
        halo: Default::default(),
    };
    let b = run_himeno(Variant::HandOptimized, cfg_b.clone());
    println!("Fig. 4(b) — hand-optimized, communication exposed (Cichlid, 4 nodes, S):");
    println!("{}", b.trace.render_ascii(width));
    println!("{}", OverlapReport::from_trace(&b.trace).render());

    // (c): same configuration, clMPI event chains.
    let c = run_himeno(Variant::ClMpi, cfg_b);
    println!("Fig. 4(c) — clMPI, communication released by events (same config):");
    println!("{}", c.trace.render_ascii(width));
    let rc = OverlapReport::from_trace(&c.trace);
    println!("{}", rc.render());

    println!(
        "iteration walltime: (a) {:.2} ms   (b) {:.2} ms   (c) {:.2} ms",
        a.elapsed_ns as f64 / 3.0 / 1e6,
        b.elapsed_ns as f64 / 3.0 / 1e6,
        c.elapsed_ns as f64 / 3.0 / 1e6,
    );
    // The quantitative version of the figure's claim: communication time
    // NOT hidden behind computation (mean per rank). On this compute-poor
    // configuration neither variant can hide much, but clMPI both
    // shortens the comm lane (no host staging) and releases transfers as
    // soon as their events fire — the exposed time drops with it.
    let exposed = |r: &OverlapReport| {
        let total: u64 = r.ranks.iter().map(|x| x.comm_ns - x.overlap_ns).sum();
        total as f64 / r.ranks.len().max(1) as f64 / 1e6
    };
    println!(
        "exposed communication per rank: (b) {:.2} ms   (c) {:.2} ms",
        exposed(&OverlapReport::from_trace(&b.trace)),
        exposed(&rc),
    );
}
