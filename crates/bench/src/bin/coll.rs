//! Deterministic collective-pipeline benchmark: the paper-scale 42 MB
//! coefficient broadcast (3240² × 4 B, the nanopowder volume) across 8
//! RICC ranks under each dissemination algorithm, cross-checked against
//! the analytic models, plus the application-level effect (nanopowder
//! step time, per-rank fan-out vs one pipelined broadcast).
//!
//! Outputs:
//!
//! 1. `BENCH_coll.json` (repo root) — virtual-time results: per-algorithm
//!    broadcast ns and modeled throughput, the ring/flat speedup, the
//!    analytic cross-check, nanopowder fanout-vs-broadcast step times,
//!    and the obs summary of the ring run with its FNV-1a fingerprint.
//!    Pure function of the simulation → byte-identical across reruns.
//! 2. `BENCH_coll.trace.json` — Chrome `trace_events` export of the ring
//!    broadcast (op.bcast envelopes with chunk/forward/stage children).
//! 3. `results/coll.txt` — human-readable summary table.
//!
//! The binary *asserts* the PR's acceptance bar — pipelined ring ≥ 2× the
//! flat fan-out throughput at 42 MB / 8 ranks — so CI fails on regression.
//!
//! Usage: `coll [--out path] [--trace-out path] [--results path]`

use clmpi::obs::{chrome_trace, fnv1a, validate_json, ObsSummary};
use clmpi::{analytic, ClMpi, CollAlgo, SystemConfig};
use minimpi::{run_world_sized, Process};
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};
use simtime::Trace;

/// 3240² × 4 B — the paper's per-step coefficient volume.
const BYTES: usize = 41_990_400;
const NODES: usize = 8;
const CHUNK: usize = 1 << 20;

/// Longest per-rank virtual time of one forced-algorithm broadcast from
/// rank 0, plus the run's trace.
fn timed_bcast(algo: CollAlgo) -> (u64, Trace) {
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        NODES,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(BYTES);
            if p.rank() == 0 {
                buf.store(0, &vec![0x5A; BYTES]).expect("seed payload");
            }
            p.comm.barrier(&p.actor);
            let t0 = p.actor.now_ns();
            let e = rt
                .enqueue_bcast_buffer_as(&q, &buf, 0, BYTES, 0, 1, algo, CHUNK, &[], &p.actor)
                .expect("broadcast");
            e.wait(&p.actor);
            assert!(!e.is_failed(), "fault-free broadcast must succeed");
            assert_eq!(buf.load(0, BYTES).expect("payload"), vec![0x5A; BYTES]);
            rt.shutdown(&p.actor);
            p.actor.now_ns() - t0
        },
    );
    (res.outputs.into_iter().max().expect("ranks"), res.trace)
}

/// Modeled throughput in bytes/s as exact integer math (no float
/// formatting in the deterministic artifact).
fn bps(ns: u64) -> u64 {
    (BYTES as u128 * 1_000_000_000 / ns.max(1) as u128) as u64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_coll.json".to_string();
    let mut trace_out = "BENCH_coll.trace.json".to_string();
    let mut results = "results/coll.txt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--trace-out" => trace_out = it.next().expect("--trace-out needs a value").clone(),
            "--results" => results = it.next().expect("--results needs a value").clone(),
            other => panic!("unknown argument {other}"),
        }
    }

    // -- The 42 MB / 8-rank broadcast under each algorithm --------------
    let (flat_ns, _) = timed_bcast(CollAlgo::Flat);
    let (tree_ns, _) = timed_bcast(CollAlgo::Tree);
    let (ring_ns, ring_trace) = timed_bcast(CollAlgo::Ring);
    let sys = SystemConfig::ricc();
    let model = |algo| analytic::bcast_ns(&sys, algo, BYTES, NODES, CHUNK);
    let ring_vs_flat_x1000 = bps(ring_ns) * 1000 / bps(flat_ns).max(1);
    assert!(
        ring_vs_flat_x1000 >= 2000,
        "acceptance bar: pipelined ring must be ≥ 2× flat fan-out \
         throughput at 42 MB / 8 ranks (got {}.{:03}×)",
        ring_vs_flat_x1000 / 1000,
        ring_vs_flat_x1000 % 1000
    );

    // -- Application effect: nanopowder per-step distribution -----------
    let nano = |variant| {
        run_nanopowder(
            variant,
            NanoConfig {
                sections: 720,
                steps: 2,
                sys: SystemConfig::ricc(),
                nodes: 4,
            },
        )
    };
    let fanout = nano(NanoVariant::ClMpiFanout);
    let bcast = nano(NanoVariant::ClMpi);
    let n_fnv = |r: &nanopowder::NanoResult| {
        fnv1a(
            &r.final_n
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect::<Vec<u8>>(),
        )
    };
    assert_eq!(
        n_fnv(&fanout),
        n_fnv(&bcast),
        "distribution path must not change the physics"
    );
    assert!(
        bcast.step_ns <= fanout.step_ns,
        "the pipelined broadcast must not be slower than per-rank fan-out \
         ({} vs {})",
        bcast.step_ns,
        fanout.step_ns
    );

    // -- Deterministic artifacts ----------------------------------------
    let summary = ObsSummary::from_trace(&ring_trace);
    let bench_json = format!(
        "{{\n\"bench\": \"coll_pipeline\",\n\
         \"system\": \"ricc\", \"nodes\": {NODES}, \"bytes\": {BYTES}, \"chunk\": {CHUNK},\n\
         \"bcast_virtual_ns\": {{ \"flat\": {flat_ns}, \"tree\": {tree_ns}, \"ring\": {ring_ns} }},\n\
         \"bcast_bytes_per_s\": {{ \"flat\": {}, \"tree\": {}, \"ring\": {} }},\n\
         \"ring_vs_flat_x1000\": {ring_vs_flat_x1000},\n\
         \"analytic_ns\": {{ \"flat\": {}, \"tree\": {}, \"ring\": {} }},\n\
         \"nanopowder\": {{ \"sections\": 720, \"steps\": 2, \"system\": \"ricc\", \"nodes\": 4,\n\
         \"fanout_step_ns\": {}, \"bcast_step_ns\": {}, \"final_n_fnv1a\": {} }},\n\
         \"obs\": {},\n\
         \"obs_fnv1a\": {}\n}}\n",
        bps(flat_ns),
        bps(tree_ns),
        bps(ring_ns),
        model(CollAlgo::Flat),
        model(CollAlgo::Tree),
        model(CollAlgo::Ring),
        fanout.step_ns,
        bcast.step_ns,
        n_fnv(&bcast),
        summary.to_json().trim_end(),
        summary.hash(),
    );
    validate_json(&bench_json).expect("BENCH_coll json must be well-formed");
    std::fs::write(&out, &bench_json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(deterministic bench json written to {out})");

    let trace_json = chrome_trace(&ring_trace);
    validate_json(&trace_json).expect("chrome trace must be well-formed");
    std::fs::write(&trace_out, &trace_json).unwrap_or_else(|e| panic!("write {trace_out}: {e}"));
    eprintln!("(chrome trace written to {trace_out} — open in chrome://tracing)");

    let ms = |ns: u64| ns as f64 / 1e6;
    let gbps = |ns: u64| bps(ns) as f64 / 1e9;
    let mut table = String::new();
    table.push_str("42 MB broadcast across 8 RICC ranks (1 MiB chunks)\n");
    table.push_str("algo        virtual_ms   modeled_GB/s   analytic_ms\n");
    for (name, ns, algo) in [
        ("flat", flat_ns, CollAlgo::Flat),
        ("tree", tree_ns, CollAlgo::Tree),
        ("ring", ring_ns, CollAlgo::Ring),
    ] {
        table.push_str(&format!(
            "{name:<10}  {:>10.3}  {:>13.3}  {:>12.3}\n",
            ms(ns),
            gbps(ns),
            ms(model(algo)),
        ));
    }
    table.push_str(&format!(
        "ring/flat throughput: {}.{:03}x\n\n",
        ring_vs_flat_x1000 / 1000,
        ring_vs_flat_x1000 % 1000
    ));
    table.push_str("nanopowder step (720 sections, 4 RICC nodes):\n");
    table.push_str(&format!(
        "per-rank fan-out: {:.3} ms   pipelined bcast: {:.3} ms\n",
        ms(fanout.step_ns),
        ms(bcast.step_ns)
    ));
    print!("{table}");
    std::fs::write(&results, &table).unwrap_or_else(|e| panic!("write {results}: {e}"));
    eprintln!("(summary written to {results})");
}
