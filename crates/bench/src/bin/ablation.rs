//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Transfer-strategy ablation** — the clMPI Himeno with each fixed
//!    strategy vs the runtime's automatic choice (quantifies §V-B's
//!    system-aware selection).
//! 2. **Event-chaining ablation** — the clMPI Himeno with the host forced
//!    to wait for every exchange at iteration ends (quantifies §IV's
//!    benefit 2: the freed host thread / timely command release).
//!
//! Usage: `ablation [--size xs|s|m] [--iters N]`

use clmpi::{SystemConfig, TransferStrategy};
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = GridSize::M;
    let mut iters = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => size = GridSize::by_name(it.next().expect("value")).expect("xs|s|m|l"),
            "--iters" => iters = it.next().expect("value").parse().expect("iters"),
            _ => {}
        }
    }

    println!("Ablation 1 — transfer strategy, clMPI Himeno {size:?}, 4 nodes");
    println!(
        "{:>10}  {:>18}  {:>18}",
        "", "Cichlid GFLOPS", "RICC GFLOPS"
    );
    let strategies: Vec<(String, Option<TransferStrategy>)> = vec![
        ("auto".into(), None),
        ("pinned".into(), Some(TransferStrategy::Pinned)),
        ("mapped".into(), Some(TransferStrategy::Mapped)),
        (
            "pipe(1M)".into(),
            Some(TransferStrategy::Pipelined(1 << 20)),
        ),
    ];
    for (name, strategy) in &strategies {
        let mut cells = Vec::new();
        for sys in [SystemConfig::cichlid(), SystemConfig::ricc()] {
            let r = run_himeno(
                Variant::ClMpi,
                HimenoConfig {
                    size,
                    iters,
                    sys,
                    nodes: 4,
                    strategy: *strategy,
                    halo: Default::default(),
                },
            );
            cells.push(r.gflops);
        }
        println!("{:>10}  {:>18.2}  {:>18.2}", name, cells[0], cells[1]);
    }
    println!("(auto must match the best fixed strategy per system)\n");

    println!("Ablation 2 — event chaining, Himeno {size:?}, Cichlid, 4 nodes");
    for variant in [
        Variant::ClMpi,
        Variant::ClMpiBlocked,
        Variant::GpuAwareMpi,
        Variant::HandOptimized,
        Variant::Serial,
    ] {
        let r = run_himeno(
            variant,
            HimenoConfig {
                size,
                iters,
                sys: SystemConfig::cichlid(),
                nodes: 4,
                strategy: None,
                halo: Default::default(),
            },
        );
        println!("{:>16}: {:>8.2} GFLOPS", variant.name(), r.gflops);
    }
    println!("(gpu-aware-mpi = §II related-work comparator: optimized device-buffer MPI,");
    println!(" host-blocking; clMPI-blocked re-serializes the host on every exchange; the");
    println!(" gap to clMPI is the value of pure event-driven command release, 4(b) vs 4(c))");
}
