//! Wall-clock benchmark of the Himeno M overlap run (clMPI variant),
//! persisted as BENCH json under `results/` so refactors of the runtime
//! can show before/after numbers.
//!
//! Besides the wall-clock samples (the simulator's own speed), the json
//! records the **virtual-time** outcome of the run — elapsed ns, GFLOPS,
//! gosa, checksum — plus a small nanopowder run. Those fields are the
//! bit-identity witnesses: a behavior-preserving refactor must reproduce
//! them exactly.
//!
//! Usage: `himeno_wallclock [--label before|after] [--out path]
//!                          [--samples N] [--iters N] [--nodes N]`

use clmpi::SystemConfig;
use clmpi_bench::wallclock_samples;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};

/// FNV-1a over a byte stream; stable fingerprint for f32 vectors.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "run".to_string();
    let mut out = "results/bench_himeno_m.json".to_string();
    let mut samples = 3usize;
    let mut iters = 12usize;
    let mut nodes = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--samples" => samples = it.next().expect("value").parse().expect("samples"),
            "--iters" => iters = it.next().expect("value").parse().expect("iters"),
            "--nodes" => nodes = it.next().expect("value").parse().expect("nodes"),
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = || HimenoConfig {
        size: GridSize::M,
        iters,
        sys: SystemConfig::cichlid(),
        nodes,
        strategy: None,
    };
    // One canonical run for the virtual-time witnesses...
    let him = run_himeno(Variant::ClMpi, cfg());
    // ...then the timed wall-clock samples of the same run.
    let times = wallclock_samples(samples, || {
        let _ = run_himeno(Variant::ClMpi, cfg());
    });
    let ms = |n: u128| n as f64 / 1e6;

    let nano = run_nanopowder(
        NanoVariant::ClMpi,
        NanoConfig {
            sections: 120,
            steps: 2,
            sys: SystemConfig::ricc(),
            nodes: 4,
        },
    );
    let nano_fnv = fnv1a(
        &nano
            .final_n
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect::<Vec<u8>>(),
    );

    // Hand-rolled json (workspace has zero external deps). f64 witnesses
    // are stored as IEEE-754 bit patterns so equality is exact.
    let json = format!(
        "{{\n  \"bench\": \"himeno_m_overlap\",\n  \"label\": \"{label}\",\n  \
         \"himeno\": {{\n    \"grid\": \"M\", \"variant\": \"clMPI\", \"system\": \"cichlid\",\n    \
         \"nodes\": {nodes}, \"iters\": {iters},\n    \
         \"virtual_elapsed_ns\": {}, \"gflops\": {:.6},\n    \
         \"gosa_bits\": {}, \"checksum_bits\": {}\n  }},\n  \
         \"nanopowder\": {{\n    \"sections\": 120, \"steps\": 2, \"system\": \"ricc\", \"nodes\": 4,\n    \
         \"virtual_total_ns\": {}, \"virtual_step_ns\": {}, \"final_n_fnv1a\": {}\n  }},\n  \
         \"wallclock_ms\": {{ \"samples\": {samples}, \"min\": {:.3}, \"median\": {:.3}, \"max\": {:.3} }}\n}}\n",
        him.elapsed_ns,
        him.gflops,
        him.gosa.to_bits(),
        him.checksum.to_bits(),
        nano.total_ns,
        nano.step_ns,
        nano_fnv,
        ms(times[0]),
        ms(times[times.len() / 2]),
        ms(times[times.len() - 1]),
    );
    println!("{json}");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(bench json written to {out})");
}
