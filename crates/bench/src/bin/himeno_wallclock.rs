//! Wall-clock benchmark of the Himeno M overlap run (clMPI variant),
//! plus the repo's machine-readable perf artifacts.
//!
//! Three outputs:
//!
//! 1. `BENCH_himeno_m.json` (repo root) — the **virtual-time** outcome of
//!    the run: elapsed ns, GFLOPS, gosa/checksum bit patterns, the
//!    per-rank obs summary (ops, bytes, overlap %), and its FNV-1a
//!    fingerprint. Every field is a pure function of the simulation, so
//!    the file is byte-identical across runs — the perf-trajectory data
//!    point CI archives.
//! 2. `BENCH_himeno_m.trace.json` — the same run exported as Chrome
//!    `trace_events` JSON (open in `chrome://tracing` or Perfetto).
//! 3. `results/bench_himeno_m.json` — wall-clock samples of the
//!    *simulator's own* speed (min/median/max), for before/after
//!    comparisons of engine refactors. Not deterministic by nature.
//!
//! Usage: `himeno_wallclock [--label before|after] [--out path]
//!                          [--bench-out path] [--trace-out path]
//!                          [--samples N] [--iters N] [--nodes N]`

use clmpi::obs::{chrome_trace, fnv1a, validate_json, ObsSummary};
use clmpi::SystemConfig;
use clmpi_bench::wallclock_samples;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "run".to_string();
    let mut out = "results/bench_himeno_m.json".to_string();
    let mut bench_out = "BENCH_himeno_m.json".to_string();
    let mut trace_out = "BENCH_himeno_m.trace.json".to_string();
    let mut samples = 3usize;
    let mut iters = 12usize;
    let mut nodes = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--label" => label = it.next().expect("--label needs a value").clone(),
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--bench-out" => bench_out = it.next().expect("--bench-out needs a value").clone(),
            "--trace-out" => trace_out = it.next().expect("--trace-out needs a value").clone(),
            "--samples" => samples = it.next().expect("value").parse().expect("samples"),
            "--iters" => iters = it.next().expect("value").parse().expect("iters"),
            "--nodes" => nodes = it.next().expect("value").parse().expect("nodes"),
            other => panic!("unknown argument {other}"),
        }
    }

    let cfg = || HimenoConfig {
        size: GridSize::M,
        iters,
        sys: SystemConfig::cichlid(),
        nodes,
        strategy: None,
        halo: Default::default(),
    };
    // One canonical run for the virtual-time witnesses...
    let him = run_himeno(Variant::ClMpi, cfg());
    // ...then the timed wall-clock samples of the same run.
    let times = wallclock_samples(samples, || {
        let _ = run_himeno(Variant::ClMpi, cfg());
    });
    let ms = |n: u128| n as f64 / 1e6;

    let nano = run_nanopowder(
        NanoVariant::ClMpi,
        NanoConfig {
            sections: 120,
            steps: 2,
            sys: SystemConfig::ricc(),
            nodes: 4,
        },
    );
    let nano_fnv = fnv1a(
        &nano
            .final_n
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect::<Vec<u8>>(),
    );

    // -- Deterministic artifacts (BENCH_* + Chrome trace) ---------------
    let summary = ObsSummary::from_trace(&him.trace);
    // Hand-rolled json (workspace has zero external deps). f64 witnesses
    // are stored as IEEE-754 bit patterns so equality is exact; every
    // field is virtual-time-derived so reruns are byte-identical.
    let bench_json = format!(
        "{{\n\"bench\": \"himeno_m_overlap\",\n\
         \"grid\": \"M\", \"variant\": \"clMPI\", \"system\": \"cichlid\",\n\
         \"nodes\": {nodes}, \"iters\": {iters},\n\
         \"virtual_elapsed_ns\": {}, \"gflops_bits\": {},\n\
         \"gosa_bits\": {}, \"checksum_bits\": {},\n\
         \"nanopowder\": {{ \"sections\": 120, \"steps\": 2, \"system\": \"ricc\", \"nodes\": 4,\n\
         \"virtual_total_ns\": {}, \"virtual_step_ns\": {}, \"final_n_fnv1a\": {} }},\n\
         \"obs\": {},\n\
         \"obs_fnv1a\": {}\n}}\n",
        him.elapsed_ns,
        him.gflops.to_bits(),
        him.gosa.to_bits(),
        him.checksum.to_bits(),
        nano.total_ns,
        nano.step_ns,
        nano_fnv,
        summary.to_json().trim_end(),
        summary.hash(),
    );
    validate_json(&bench_json).expect("BENCH json must be well-formed");
    std::fs::write(&bench_out, &bench_json).unwrap_or_else(|e| panic!("write {bench_out}: {e}"));
    eprintln!("(deterministic bench json written to {bench_out})");

    let trace_json = chrome_trace(&him.trace);
    validate_json(&trace_json).expect("chrome trace must be well-formed");
    std::fs::write(&trace_out, &trace_json).unwrap_or_else(|e| panic!("write {trace_out}: {e}"));
    eprintln!("(chrome trace written to {trace_out} — open in chrome://tracing)");

    println!("overlap accounting (quantitative Fig. 4, himeno M / clMPI):");
    println!("{}", summary.overlap.render());

    // -- Wall-clock samples (simulator speed; not deterministic) --------
    let json = format!(
        "{{\n  \"bench\": \"himeno_m_overlap\",\n  \"label\": \"{label}\",\n  \
         \"himeno\": {{\n    \"grid\": \"M\", \"variant\": \"clMPI\", \"system\": \"cichlid\",\n    \
         \"nodes\": {nodes}, \"iters\": {iters},\n    \
         \"virtual_elapsed_ns\": {}, \"gflops\": {:.6},\n    \
         \"gosa_bits\": {}, \"checksum_bits\": {}\n  }},\n  \
         \"nanopowder\": {{\n    \"sections\": 120, \"steps\": 2, \"system\": \"ricc\", \"nodes\": 4,\n    \
         \"virtual_total_ns\": {}, \"virtual_step_ns\": {}, \"final_n_fnv1a\": {}\n  }},\n  \
         \"wallclock_ms\": {{ \"samples\": {samples}, \"min\": {:.3}, \"median\": {:.3}, \"max\": {:.3} }}\n}}\n",
        him.elapsed_ns,
        him.gflops,
        him.gosa.to_bits(),
        him.checksum.to_bits(),
        nano.total_ns,
        nano.step_ns,
        nano_fnv,
        ms(times[0]),
        ms(times[times.len() / 2]),
        ms(times[times.len() - 1]),
    );
    println!("{json}");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(bench json written to {out})");
}
