//! Simulator scale benchmark: Himeno and nanopowder worlds far past the
//! thread-per-actor wall, run under the sharded event scheduler
//! ([`ExecMode::Events`]), with simulator *self-throughput* recorded
//! alongside the virtual results.
//!
//! Outputs:
//!
//! 1. `BENCH_scale.json` (repo root) — the deterministic results:
//!    virtual makespans, scheduler event counts, and bit-exact residual/
//!    checksum fingerprints per world size. Byte-identical on rerun; CI
//!    enforces this with a regenerate-and-`cmp` step.
//! 2. `results/scale.json` — the host-dependent sidecar: wall-clock per
//!    config, events/sec, and wall-ms per virtual second. Informative
//!    only, never diffed.
//!
//! The binary *asserts* the PR's acceptance bar in-process: Himeno M
//! completes at world 256 and nanopowder at world 64 under the event
//! core, and at world 64 the event core reproduces the thread-per-actor
//! oracle exactly (virtual makespan, event count, ObsSummary hash).
//!
//! Usage: `scale [--out path] [--results path]`

use std::time::Instant;

use clmpi::obs::{validate_json, ObsSummary};
use clmpi::SystemConfig;
use himeno::{run_himeno_with_faults_mode, GridSize, HimenoConfig, Variant};
use minimpi::FaultPlan;
use nanopowder::{run_nanopowder_mode, NanoConfig, NanoVariant};
use simtime::ExecMode;

/// Himeno covers the full ladder, including the 1,024-rank world: the
/// stencil's communication is neighbor-local, so the simulated world
/// stays tractable at any rank count (at 1,024 ranks the M grid's 127
/// interior planes leave the tail ranks with empty slabs — exactly the
/// degenerate decomposition the scheduler must handle).
const HIMENO_WORLDS: [usize; 3] = [64, 256, 1024];
const HIMENO_ITERS: usize = 2;
/// Nanopowder rows: (world size, sections). The 64-rank row keeps the
/// paper-scale coefficient volume (K=2048 → 16.8 MB/step); 256 ranks
/// drops to K=1024 (4.2 MB/step). The app's rank-0 fan-out/gather is
/// inherently all-to-root, which costs O(world²) simulated wakeups —
/// the 256-rank row is the largest that keeps the CI
/// regenerate-twice job in minutes, and the 1,024-rank scheduling bar
/// is carried by the Himeno ladder above.
const NANO_ROWS: [(usize, usize); 2] = [(64, 2048), (256, 1024)];
const NANO_STEPS: usize = 1;

struct ConfigRow {
    label: String,
    nodes: usize,
    elapsed_ns: u64,
    events: u64,
    /// Bit-exact payload fingerprints, name → f64 bits.
    fingerprints: Vec<(&'static str, u64)>,
    wall_ms: f64,
}

impl ConfigRow {
    fn events_per_sec(&self) -> u64 {
        (self.events as f64 / (self.wall_ms / 1e3).max(1e-9)) as u64
    }

    fn wall_ms_per_vsec(&self) -> f64 {
        self.wall_ms / (self.elapsed_ns as f64 / 1e9).max(1e-12)
    }
}

/// RICC's link and device cost model, scaled out past its physical 100
/// nodes: the per-link latency/bandwidth/overhead parameters are
/// unchanged, only the node inventory grows to admit 256/1024-rank
/// worlds.
fn ricc_scaled(nodes: usize) -> SystemConfig {
    let mut sys = SystemConfig::ricc();
    sys.cluster.nodes = sys.cluster.nodes.max(nodes);
    sys
}

fn himeno_cfg(nodes: usize) -> HimenoConfig {
    HimenoConfig {
        size: GridSize::M,
        iters: HIMENO_ITERS,
        sys: ricc_scaled(nodes),
        nodes,
        strategy: None,
        halo: Default::default(),
    }
}

fn run_himeno_row(nodes: usize, mode: ExecMode) -> (ConfigRow, u64) {
    let t0 = Instant::now();
    let r = run_himeno_with_faults_mode(Variant::ClMpi, himeno_cfg(nodes), FaultPlan::none(), mode);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        r.gosa.is_finite() && r.gosa > 0.0,
        "himeno world {nodes}: residual must be finite and positive, got {}",
        r.gosa
    );
    let obs = ObsSummary::from_trace(&r.trace).hash();
    (
        ConfigRow {
            label: format!("himeno-M-w{nodes}"),
            nodes,
            elapsed_ns: r.elapsed_ns,
            events: r.sched_events,
            fingerprints: vec![
                ("gosa_bits", r.gosa.to_bits()),
                ("checksum_bits", r.checksum.to_bits()),
                ("obs_fnv1a", obs),
            ],
            wall_ms,
        },
        obs,
    )
}

fn run_nano_row(nodes: usize, sections: usize, mode: ExecMode) -> ConfigRow {
    let t0 = Instant::now();
    let r = run_nanopowder_mode(
        NanoVariant::ClMpi,
        NanoConfig {
            sections,
            steps: NANO_STEPS,
            sys: ricc_scaled(nodes),
            nodes,
        },
        mode,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n_sum: f64 = r.final_n.iter().map(|&v| v as f64).sum();
    assert!(
        n_sum.is_finite() && n_sum > 0.0,
        "nanopowder world {nodes}: final concentrations must be finite"
    );
    ConfigRow {
        label: format!("nanopowder-K{sections}-w{nodes}"),
        nodes,
        elapsed_ns: r.total_ns,
        events: r.sched_events,
        fingerprints: vec![("final_n_sum_bits", n_sum.to_bits())],
        wall_ms,
    }
}

/// Per-row progress line (stderr, wall-clock — never in the artifact).
fn note(r: &ConfigRow) {
    eprintln!(
        "[scale] {:<24} done: {} virtual ns, {} events, {:.1} s wall",
        r.label,
        r.elapsed_ns,
        r.events,
        r.wall_ms / 1e3
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_scale.json".to_string();
    let mut results = "results/scale.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--results" => results = it.next().expect("--results needs a value").clone(),
            other => panic!("unknown argument {other}"),
        }
    }

    let mut rows: Vec<ConfigRow> = Vec::new();

    // -- Oracle cross-check at world 64 (the acceptance gate) -------------
    // The same Himeno scenario under both executors: virtual makespan,
    // scheduler event count, and the full observability fingerprint must
    // match exactly.
    let (ev64, obs_ev) = run_himeno_row(64, ExecMode::Events);
    note(&ev64);
    let (th64, obs_th) = run_himeno_row(64, ExecMode::Threads);
    note(&th64);
    assert_eq!(
        ev64.elapsed_ns, th64.elapsed_ns,
        "world 64: event core must reproduce the oracle's virtual makespan"
    );
    assert_eq!(
        ev64.events, th64.events,
        "world 64: modes must count identical machine transitions"
    );
    assert_eq!(
        obs_ev, obs_th,
        "world 64: ObsSummary fingerprints must be byte-identical across modes"
    );
    rows.push(ev64);

    // -- Larger Himeno worlds under the event core ------------------------
    for nodes in HIMENO_WORLDS.into_iter().skip(1) {
        let row = run_himeno_row(nodes, ExecMode::Events).0;
        note(&row);
        rows.push(row);
    }

    // -- Nanopowder worlds ------------------------------------------------
    for (nodes, sections) in NANO_ROWS {
        let row = run_nano_row(nodes, sections, ExecMode::Events);
        note(&row);
        rows.push(row);
    }

    // -- Deterministic artifact ------------------------------------------
    let mut configs = String::new();
    for (i, r) in rows.iter().enumerate() {
        let fps: Vec<String> = r
            .fingerprints
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        configs.push_str(&format!(
            "  {{ \"config\": \"{}\", \"nodes\": {}, \"elapsed_ns\": {}, \"sched_events\": {}, {} }}{}\n",
            r.label,
            r.nodes,
            r.elapsed_ns,
            r.events,
            fps.join(", "),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let bench_json = format!(
        "{{\n\"bench\": \"scale\",\n\
         \"system\": \"ricc\", \"mode\": \"events\", \"himeno_grid\": \"M\", \
         \"himeno_iters\": {HIMENO_ITERS}, \"nano_steps\": {NANO_STEPS},\n\
         \"oracle_match_world64\": true,\n\
         \"configs\": [\n{configs}]\n}}\n"
    );
    validate_json(&bench_json).expect("BENCH_scale json must be well-formed");
    std::fs::write(&out, &bench_json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(deterministic bench json written to {out})");

    // -- Host-dependent sidecar ------------------------------------------
    let mut side = String::new();
    for (i, r) in rows.iter().enumerate() {
        side.push_str(&format!(
            "  {{ \"config\": \"{}\", \"wall_ms\": {:.1}, \"events_per_sec\": {}, \"wall_ms_per_virtual_sec\": {:.1} }}{}\n",
            r.label,
            r.wall_ms,
            r.events_per_sec(),
            r.wall_ms_per_vsec(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let side_json = format!("{{\n\"bench\": \"scale-wallclock\",\n\"configs\": [\n{side}]\n}}\n");
    validate_json(&side_json).expect("scale sidecar json must be well-formed");
    std::fs::write(&results, &side_json).unwrap_or_else(|e| panic!("write {results}: {e}"));
    eprintln!("(wall-clock sidecar written to {results})");

    for r in &rows {
        println!(
            "{:<24} elapsed {:>12} ns  events {:>9}  wall {:>8.1} ms  ({} ev/s)",
            r.label,
            r.elapsed_ns,
            r.events,
            r.wall_ms,
            r.events_per_sec()
        );
    }
}
