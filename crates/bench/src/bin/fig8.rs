//! Regenerates Fig. 8: sustained point-to-point bandwidth between two
//! remote devices vs message size, for the pinned / mapped / pipelined(N)
//! transfer implementations.
//!
//! Besides the console table, every measured point is persisted to
//! `BENCH_p2p.json` (repo root by default) — all fields are virtual-time
//! derived, so the file is byte-identical across runs and CI archives it
//! as the p2p perf-trajectory data point.
//!
//! Usage: `fig8 [cichlid|ricc] [--quick] [--bench-out path]`

use clmpi::obs::validate_json;
use clmpi::{analytic, SystemConfig};
use clmpi_bench::{fig8_sizes, fig8_strategies, fmt_size, measure_p2p, CsvOut};

/// One measured point, as persisted to `BENCH_p2p.json`.
struct Point {
    system: String,
    size: usize,
    strategy: String,
    per_transfer_ns: u64,
    mbps_bits: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut bench_out = "BENCH_p2p.json".to_string();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                it.next(); // value consumed by CsvOut::from_args
            }
            "--bench-out" => {
                bench_out = it.next().expect("--bench-out needs a value").clone();
            }
            other => names.push(other),
        }
    }
    let names = if names.is_empty() {
        vec!["cichlid", "ricc"]
    } else {
        names
    };
    let mut csv = CsvOut::from_args(&args);
    csv.row(["system", "size_bytes", "strategy", "mbps"]);
    let mut points = Vec::new();
    for name in names {
        let sys = SystemConfig::by_name(name)
            .unwrap_or_else(|| panic!("unknown system '{name}' (cichlid|ricc)"));
        run_system(&sys, quick, &mut csv, &mut points);
    }
    csv.finish();
    write_bench_json(&bench_out, quick, &points);
}

fn run_system(sys: &SystemConfig, quick: bool, csv: &mut CsvOut, points: &mut Vec<Point>) {
    let strategies = fig8_strategies();
    let sizes = if quick {
        vec![64 << 10, 1 << 20, 16 << 20]
    } else {
        fig8_sizes()
    };
    println!();
    println!(
        "Fig. 8({}) — sustained bandwidth [MB/s], {} ({})",
        if sys.cluster.name == "Cichlid" {
            "a"
        } else {
            "b"
        },
        sys.cluster.name,
        sys.cluster.nic
    );
    print!("{:>8}", "size");
    for s in &strategies {
        print!("  {:>15}", s.name());
    }
    println!("  {:>15}", "analytic best");
    for &size in &sizes {
        print!("{:>8}", fmt_size(size));
        let mut best = f64::MIN;
        for &st in &strategies {
            let reps = if size >= 16 << 20 { 1 } else { 2 };
            let bp = measure_p2p(sys, st, size, reps);
            best = best.max(bp.mbps);
            csv.row([
                sys.cluster.name.to_string(),
                size.to_string(),
                st.name(),
                format!("{:.2}", bp.mbps),
            ]);
            points.push(Point {
                system: sys.cluster.name.to_string(),
                size: bp.size,
                strategy: st.name(),
                per_transfer_ns: bp.per_transfer_ns,
                mbps_bits: bp.mbps.to_bits(),
            });
            print!("  {:>15.1}", bp.mbps);
        }
        // Cross-check: analytic model of the best fixed strategy.
        let ana = strategies
            .iter()
            .map(|&st| analytic::sustained_bps(sys, st, size) / 1e6)
            .fold(f64::MIN, f64::max);
        println!("  {ana:>15.1}");
    }
    println!(
        "(wire limit {:.1} MB/s; auto policy: {} below {} MiB, pipelined above)",
        sys.cluster.link.bandwidth_bps / 1e6,
        sys.small_message_strategy.name(),
        sys.pipeline_threshold >> 20
    );
}

/// Persist every measured point as deterministic JSON. `mbps` is stored
/// as an IEEE-754 bit pattern (exact equality across runs); the
/// human-readable rate is recoverable as `f64::from_bits`.
fn write_bench_json(path: &str, quick: bool, points: &[Point]) {
    let mut body = String::new();
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            "    {{ \"system\": \"{}\", \"size\": {}, \"strategy\": \"{}\", \
             \"per_transfer_ns\": {}, \"mbps_bits\": {} }}{}\n",
            p.system,
            p.size,
            p.strategy,
            p.per_transfer_ns,
            p.mbps_bits,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"p2p_bandwidth\",\n  \"quick\": {quick},\n  \"points\": [\n{body}  ]\n}}\n"
    );
    validate_json(&json).expect("BENCH json must be well-formed");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("(deterministic bench json written to {path})");
}
