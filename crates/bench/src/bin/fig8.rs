//! Regenerates Fig. 8: sustained point-to-point bandwidth between two
//! remote devices vs message size, for the pinned / mapped / pipelined(N)
//! transfer implementations.
//!
//! Usage: `fig8 [cichlid|ricc] [--quick]`

use clmpi::{analytic, SystemConfig};
use clmpi_bench::{fig8_sizes, fig8_strategies, fmt_size, measure_p2p, CsvOut};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                it.next(); // value consumed by CsvOut::from_args
            }
            other => names.push(other),
        }
    }
    let names = if names.is_empty() {
        vec!["cichlid", "ricc"]
    } else {
        names
    };
    let mut csv = CsvOut::from_args(&args);
    csv.row(["system", "size_bytes", "strategy", "mbps"]);
    for name in names {
        let sys = SystemConfig::by_name(name)
            .unwrap_or_else(|| panic!("unknown system '{name}' (cichlid|ricc)"));
        run_system(&sys, quick, &mut csv);
    }
    csv.finish();
}

fn run_system(sys: &SystemConfig, quick: bool, csv: &mut CsvOut) {
    let strategies = fig8_strategies();
    let sizes = if quick {
        vec![64 << 10, 1 << 20, 16 << 20]
    } else {
        fig8_sizes()
    };
    println!();
    println!(
        "Fig. 8({}) — sustained bandwidth [MB/s], {} ({})",
        if sys.cluster.name == "Cichlid" {
            "a"
        } else {
            "b"
        },
        sys.cluster.name,
        sys.cluster.nic
    );
    print!("{:>8}", "size");
    for s in &strategies {
        print!("  {:>15}", s.name());
    }
    println!("  {:>15}", "analytic best");
    for &size in &sizes {
        print!("{:>8}", fmt_size(size));
        let mut best = f64::MIN;
        for &st in &strategies {
            let reps = if size >= 16 << 20 { 1 } else { 2 };
            let bp = measure_p2p(sys, st, size, reps);
            best = best.max(bp.mbps);
            csv.row([
                sys.cluster.name.to_string(),
                size.to_string(),
                st.name(),
                format!("{:.2}", bp.mbps),
            ]);
            print!("  {:>15.1}", bp.mbps);
        }
        // Cross-check: analytic model of the best fixed strategy.
        let ana = strategies
            .iter()
            .map(|&st| analytic::sustained_bps(sys, st, size) / 1e6)
            .fold(f64::MIN, f64::max);
        println!("  {ana:>15.1}");
    }
    println!(
        "(wire limit {:.1} MB/s; auto policy: {} below {} MiB, pipelined above)",
        sys.cluster.link.bandwidth_bps / 1e6,
        sys.small_message_strategy.name(),
        sys.pipeline_threshold >> 20
    );
}
