//! Deterministic rank-failure recovery benchmark: the Himeno M solve
//! with the checkpointing recovery harness, fault-free and with one and
//! two ranks killed mid-loop. Measures the cost of surviving — recovery
//! latency (virtual time added by detect → shrink → restore → recompute)
//! and goodput retained — and exports the recovery observability
//! counters (`proc_failures`, `revokes`, `shrinks`, `restores`).
//!
//! Outputs:
//!
//! 1. `BENCH_recovery.json` (repo root) — virtual-time results. Every
//!    field is integer or bit-exact (`gosa` as f64 bits), so a rerun is
//!    byte-identical; CI enforces this with a regenerate-and-`cmp` step.
//! 2. `results/recovery.txt` — human-readable summary.
//!
//! The binary *asserts* the PR's acceptance bar — the one-kill Himeno M
//! run must recover (shrink + restore) and converge to the fault-free
//! residual bit-for-bit-comparable tolerance — so CI fails on
//! regression.
//!
//! Usage: `recovery [--out path] [--results path]`

use clmpi::obs::{validate_json, ObsSummary};
use clmpi::SystemConfig;
use himeno::{reference_jacobi, run_himeno_recover, GridSize, RecoverConfig};
use minimpi::FaultPlan;

const NODES: usize = 4;
const ITERS: usize = 4;
const CKPT_EVERY: usize = 2;

fn cfg() -> RecoverConfig {
    RecoverConfig {
        size: GridSize::M,
        iters: ITERS,
        sys: SystemConfig::ricc(),
        nodes: NODES,
        ckpt_every: CKPT_EVERY,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_recovery.json".to_string();
    let mut results = "results/recovery.txt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--results" => results = it.next().expect("--results needs a value").clone(),
            other => panic!("unknown argument {other}"),
        }
    }

    // -- Fault-free baseline (also bounds the kill scan) -----------------
    let base = run_himeno_recover(cfg(), FaultPlan::none());
    assert_eq!(base.survivors, NODES);
    assert!(!base.recovered);

    // -- Early kill: before any checkpoint is durable ---------------------
    // Shared-storage checkpoint writes dominate the timeline, so at 1/4
    // of the baseline the first slot is still in flight: the survivors
    // must shrink and restart from initial conditions.
    let early = run_himeno_recover(
        cfg(),
        FaultPlan::none().with_node_down(2, base.elapsed_ns / 4),
    );
    assert_eq!(early.survivors, NODES - 1);
    assert!(early.recovered, "early kill: survivors shrank and resumed");
    assert_eq!(
        early.resumed_from, None,
        "early kill: no slot was durable yet"
    );

    // -- One rank killed mid-loop, restored from a checkpoint -------------
    // The window where a slot is already durable *and* the survivors still
    // have compute left is narrow (serialized checkpoint I/O brackets it),
    // and its location depends on the timing model. Scan upward from the
    // midpoint in 1/128ths of the baseline — deterministically — until the
    // kill yields a shrink-and-restore recovery; give up once kills land
    // after the survivors' last reduction (clean completion).
    let mut chosen = None;
    for x in 64u64..128 {
        let t = base.elapsed_ns * x / 128;
        let res = run_himeno_recover(cfg(), FaultPlan::none().with_node_down(2, t));
        if res.recovered && res.resumed_from.is_some() {
            chosen = Some((t, res));
            break;
        }
        if !res.recovered {
            break; // survivors completed cleanly: past the last reduction
        }
    }
    let (t_kill, one) = chosen.expect("some kill instant must force a restore-based recovery");
    assert_eq!(one.survivors, NODES - 1, "one rank died");
    assert!(one.recovered, "survivors shrank and resumed");
    assert!(
        one.resumed_from.is_some(),
        "a checkpoint slot survived the kill"
    );

    // -- Two ranks killed at the same instant ----------------------------
    let two = run_himeno_recover(
        cfg(),
        FaultPlan::none()
            .with_node_down(1, t_kill)
            .with_node_down(3, t_kill),
    );
    assert_eq!(two.survivors, NODES - 2, "two ranks died");
    assert!(two.recovered);

    // -- Acceptance: the recovered solve converges to the reference ------
    let r = reference_jacobi(GridSize::M, ITERS);
    let (mi, mj, mk) = GridSize::M.dims();
    let mut ref_sum = 0.0f64;
    for i in 1..mi - 1 {
        for j in 1..mj - 1 {
            for k in 1..mk - 1 {
                ref_sum += r.p[(i * mj + j) * mk + k].abs() as f64;
            }
        }
    }
    for (name, res) in [
        ("fault-free", &base),
        ("early-kill", &early),
        ("one-kill", &one),
        ("two-kill", &two),
    ] {
        assert!(
            (res.gosa - r.gosa).abs() / r.gosa < 1e-9,
            "{name}: gosa {} vs reference {}",
            res.gosa,
            r.gosa
        );
        assert!(
            (res.checksum - ref_sum).abs() / ref_sum < 1e-10,
            "{name}: checksum {} vs reference {ref_sum}",
            res.checksum
        );
    }

    // -- Recovery counters from the one-kill trace ------------------------
    let summary = ObsSummary::from_trace(&one.trace);
    let totals =
        |f: fn(&clmpi::obs::RankSummary) -> u64| -> u64 { summary.ranks.values().map(f).sum() };
    let (failures, revokes, shrinks, restores) = (
        totals(|r| r.proc_failures),
        totals(|r| r.revokes),
        totals(|r| r.shrinks),
        totals(|r| r.restores),
    );
    assert!(failures > 0, "survivors classified the dead rank");
    assert!(revokes >= (NODES - 1) as u64, "every survivor revoked");
    assert!(shrinks >= (NODES - 1) as u64, "every survivor shrank");
    assert!(restores > 0, "the survivors restored checkpoint planes");

    // Goodput retained: baseline virtual time over faulty virtual time,
    // in integer permille (how much of the fault-free rate survives the
    // failure, recovery included).
    let goodput = |res: &himeno::RecoverResult| base.elapsed_ns * 1000 / res.elapsed_ns.max(1);
    let (g1, g2) = (goodput(&one), goodput(&two));
    let overhead = |res: &himeno::RecoverResult| res.elapsed_ns.saturating_sub(base.elapsed_ns);

    let ge = goodput(&early);
    let bench_json = format!(
        "{{\n\"bench\": \"recovery\",\n\
         \"system\": \"ricc\", \"grid\": \"M\", \"nodes\": {NODES}, \"iters\": {ITERS}, \"ckpt_every\": {CKPT_EVERY},\n\
         \"faultfree_ns\": {}, \"gosa_bits\": {}, \"t_kill_ns\": {t_kill},\n\
         \"early_kill\": {{ \"survivors\": {}, \"resumed_from\": -1, \"elapsed_ns\": {}, \"recovery_overhead_ns\": {}, \"goodput_x1000\": {ge}, \"gosa_bits\": {} }},\n\
         \"one_kill\": {{ \"survivors\": {}, \"resumed_from\": {}, \"elapsed_ns\": {}, \"recovery_overhead_ns\": {}, \"goodput_x1000\": {g1}, \"gosa_bits\": {} }},\n\
         \"two_kill\": {{ \"survivors\": {}, \"elapsed_ns\": {}, \"recovery_overhead_ns\": {}, \"goodput_x1000\": {g2}, \"gosa_bits\": {} }},\n\
         \"recovery_counters\": {{ \"proc_failures\": {failures}, \"revokes\": {revokes}, \"shrinks\": {shrinks}, \"restores\": {restores} }},\n\
         \"obs\": {},\n\
         \"obs_fnv1a\": {}\n}}\n",
        base.elapsed_ns,
        base.gosa.to_bits(),
        early.survivors,
        early.elapsed_ns,
        overhead(&early),
        early.gosa.to_bits(),
        one.survivors,
        one.resumed_from.map_or(-1i64, |s| s as i64),
        one.elapsed_ns,
        overhead(&one),
        one.gosa.to_bits(),
        two.survivors,
        two.elapsed_ns,
        overhead(&two),
        two.gosa.to_bits(),
        summary.to_json().trim_end(),
        summary.hash(),
    );
    validate_json(&bench_json).expect("BENCH_recovery json must be well-formed");
    std::fs::write(&out, &bench_json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(deterministic bench json written to {out})");

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut table = String::new();
    table.push_str("Himeno M recovery (4 RICC ranks, checkpoint every 2 iters)\n");
    table.push_str("scenario     survivors  virtual_ms  overhead_ms  goodput\n");
    for (name, res) in [
        ("fault-free", &base),
        ("early-kill", &early),
        ("one-kill", &one),
        ("two-kill", &two),
    ] {
        table.push_str(&format!(
            "{name:<12} {:>9}  {:>10.3}  {:>11.3}  {:>6.3}\n",
            res.survivors,
            ms(res.elapsed_ns),
            ms(overhead(res)),
            goodput(res) as f64 / 1000.0,
        ));
    }
    table.push_str(&format!(
        "recovery counters (one-kill): failures {failures}, revokes {revokes}, \
         shrinks {shrinks}, restores {restores}\n"
    ));
    print!("{table}");
    std::fs::write(&results, &table).unwrap_or_else(|e| panic!("write {results}: {e}"));
    eprintln!("(summary written to {results})");
}
