//! Deterministic derived-datatype transfer benchmark: strided vectors
//! ring-shifted across RICC ranks under each pack lowering (host gather,
//! on-device pack kernel, pipelined device pack), swept over packed
//! payload sizes and world counts, plus the Himeno halo ablation
//! (contiguous plane vs interior-face datatype).
//!
//! Outputs:
//!
//! 1. `BENCH_datatype.json` (repo root) — virtual-time results: per
//!    (size, world, mode) ring makespan and sustained bandwidth, the
//!    Himeno halo ablation, and the obs summary of the largest pipelined
//!    run with its FNV-1a fingerprint. Pure function of the simulation →
//!    byte-identical across reruns.
//! 2. `results/datatype.txt` — human-readable summary table.
//!
//! The binary *asserts* the PR's acceptance bar — device-pack sustained
//! bandwidth ≥ host-pack at every size — so CI fails on regression.
//!
//! Usage: `datatype [--out path] [--results path]`

use clmpi::obs::{validate_json, ObsSummary};
use clmpi::{ClMpi, PackMode, SystemConfig};
use himeno::{run_himeno, GridSize, HaloMode, HimenoConfig, Variant};
use minimpi::{run_world_sized, DerivedType, Process};
use simtime::Trace;

/// Strided vector: 16 KiB rows taken out of 32 KiB-strided records.
const BLOCKLEN: usize = 16 << 10;
const STRIDE: usize = 32 << 10;

/// Swept row counts → packed payloads of 256 KiB … 16 MiB.
const COUNTS: [usize; 4] = [16, 64, 256, 1024];
const WORLDS: [usize; 3] = [2, 4, 8];
const MODES: [PackMode; 3] = [
    PackMode::HostPack,
    PackMode::DevicePack,
    PackMode::PipelinedPack,
];

fn vector(count: usize) -> DerivedType {
    DerivedType::Vector {
        count,
        blocklen: BLOCKLEN,
        stride: STRIDE,
        extent: count * STRIDE,
    }
}

/// Ring-shift one strided vector across `world` RICC ranks under `mode`;
/// returns the makespan of the exchange and the run's trace.
fn timed_ring(count: usize, world: usize, mode: PackMode) -> (u64, Trace) {
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        world,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let ty = vector(count).commit().expect("vector commits");
            let buf = rt.context().create_buffer(ty.extent());
            buf.store(0, &vec![p.rank() as u8 + 1; ty.extent()])
                .expect("seed payload");
            let up = (p.rank() + 1) % world;
            let dn = (p.rank() + world - 1) % world;
            p.comm.barrier(&p.actor);
            let t0 = p.actor.now_ns();
            let es = rt
                .enqueue_send_datatype(&q, &buf, false, 0, &ty, mode, up, 1, &[], &p.actor)
                .expect("send vector");
            let er = rt
                .enqueue_recv_datatype(&q, &buf, false, 0, &ty, mode, dn, 1, &[], &p.actor)
                .expect("recv vector");
            es.wait(&p.actor);
            er.wait(&p.actor);
            assert!(!es.is_failed() && !er.is_failed(), "fault-free ring");
            let elapsed = p.actor.now_ns() - t0;
            rt.shutdown(&p.actor);
            elapsed
        },
    );
    (res.outputs.into_iter().max().expect("ranks"), res.trace)
}

/// Sustained bandwidth in bytes/s as exact integer math.
fn bps(packed: usize, ns: u64) -> u64 {
    (packed as u128 * 1_000_000_000 / ns.max(1) as u128) as u64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_datatype.json".to_string();
    let mut results = "results/datatype.txt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out needs a value").clone(),
            "--results" => results = it.next().expect("--results needs a value").clone(),
            other => panic!("unknown argument {other}"),
        }
    }

    // -- The (size × world × mode) sweep --------------------------------
    let mut rows = Vec::new(); // (count, packed, world, mode, ns, bps)
    let mut obs_trace: Option<Trace> = None;
    for &count in &COUNTS {
        let packed = count * BLOCKLEN;
        for &world in &WORLDS {
            for mode in MODES {
                let (ns, trace) = timed_ring(count, world, mode);
                if count == *COUNTS.last().unwrap()
                    && world == *WORLDS.last().unwrap()
                    && mode == PackMode::PipelinedPack
                {
                    obs_trace = Some(trace);
                }
                rows.push((count, packed, world, mode, ns, bps(packed, ns)));
            }
        }
    }

    // Acceptance bar: device-pack ≥ host-pack sustained bandwidth at
    // every size (and world count).
    for &count in &COUNTS {
        for &world in &WORLDS {
            let at = |m: PackMode| {
                rows.iter()
                    .find(|r| r.0 == count && r.2 == world && r.3 == m)
                    .expect("row exists")
                    .5
            };
            assert!(
                at(PackMode::DevicePack) >= at(PackMode::HostPack),
                "acceptance bar: device-pack ({}) must sustain at least \
                 host-pack ({}) at {count} rows x{world} ranks",
                at(PackMode::DevicePack),
                at(PackMode::HostPack),
            );
        }
    }

    // -- Himeno halo ablation: plane vs datatype faces ------------------
    let himeno = |halo: HaloMode| {
        run_himeno(
            Variant::ClMpi,
            HimenoConfig {
                size: GridSize::S,
                iters: 4,
                sys: SystemConfig::ricc(),
                nodes: 4,
                strategy: None,
                halo,
            },
        )
    };
    let halo_rows: Vec<(&str, himeno::HimenoResult)> = vec![
        ("plane", himeno(HaloMode::Plane)),
        ("host-pack", himeno(HaloMode::Datatype(PackMode::HostPack))),
        (
            "device-pack",
            himeno(HaloMode::Datatype(PackMode::DevicePack)),
        ),
        (
            "pipelined-pack",
            himeno(HaloMode::Datatype(PackMode::PipelinedPack)),
        ),
    ];
    for (name, r) in &halo_rows {
        assert_eq!(
            r.checksum.to_bits(),
            halo_rows[0].1.checksum.to_bits(),
            "halo mode {name} must not change the physics"
        );
    }

    // -- Deterministic artifacts ----------------------------------------
    let summary = ObsSummary::from_trace(obs_trace.as_ref().expect("sweep ran"));
    let mut sweep_json = String::new();
    for (i, (count, packed, world, mode, ns, b)) in rows.iter().enumerate() {
        sweep_json.push_str(&format!(
            "{}{{ \"rows\": {count}, \"packed_bytes\": {packed}, \"world\": {world}, \
             \"mode\": \"{}\", \"virtual_ns\": {ns}, \"bytes_per_s\": {b} }}",
            if i == 0 { "" } else { ",\n" },
            mode.name(),
        ));
    }
    let mut halo_json = String::new();
    for (i, (name, r)) in halo_rows.iter().enumerate() {
        halo_json.push_str(&format!(
            "{}{{ \"halo\": \"{name}\", \"virtual_ns\": {}, \"checksum_bits\": {} }}",
            if i == 0 { "" } else { ",\n" },
            r.elapsed_ns,
            r.checksum.to_bits(),
        ));
    }
    let bench_json = format!(
        "{{\n\"bench\": \"datatype_pack\",\n\
         \"system\": \"ricc\", \"blocklen\": {BLOCKLEN}, \"stride\": {STRIDE},\n\
         \"sweep\": [\n{sweep_json}\n],\n\
         \"himeno_halo\": [\n{halo_json}\n],\n\
         \"obs\": {},\n\
         \"obs_fnv1a\": {}\n}}\n",
        summary.to_json().trim_end(),
        summary.hash(),
    );
    validate_json(&bench_json).expect("BENCH_datatype json must be well-formed");
    std::fs::write(&out, &bench_json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("(deterministic bench json written to {out})");

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut table = String::new();
    table.push_str("strided-vector ring on RICC (16 KiB rows, 32 KiB stride)\n");
    table.push_str("packed      world  mode            virtual_ms   GB/s\n");
    for (_, packed, world, mode, ns, b) in &rows {
        table.push_str(&format!(
            "{:>9}  {world:>5}  {:<14}  {:>10.3}  {:>6.3}\n",
            packed >> 10,
            mode.name(),
            ms(*ns),
            *b as f64 / 1e9,
        ));
    }
    table.push_str("\nhimeno halo ablation (S grid, 4 RICC nodes, 4 iters):\n");
    for (name, r) in &halo_rows {
        table.push_str(&format!("{name:<14}  {:>10.3} ms\n", ms(r.elapsed_ns)));
    }
    print!("{table}");
    std::fs::write(&results, &table).unwrap_or_else(|e| panic!("write {results}: {e}"));
    eprintln!("(summary written to {results})");
}
