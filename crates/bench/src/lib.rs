//! Shared measurement helpers for the figure/table harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library holds the
//! measurement loops they share with the wall-clock benches.

use clmpi::{ClMpi, SystemConfig, TransferStrategy};
use minimpi::{run_world_sized, Process};
use simtime::SimNs;

/// Measured sustained bandwidth of repeated device→device transfers.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    /// Message size in bytes.
    pub size: usize,
    /// Sustained bandwidth in MB/s (size×reps ÷ virtual elapsed).
    pub mbps: f64,
    /// Virtual time of one transfer (average).
    pub per_transfer_ns: SimNs,
}

/// Measure `reps` serialized device→device transfers of `size` bytes
/// between two ranks under `strategy` (the Fig. 8 measurement loop: each
/// transfer completes — data in remote device memory — before the next
/// starts).
///
/// A zero `size` is clamped to 1 byte **once, at entry**: what is
/// measured, reported as `BandwidthPoint::size`, and used for the MB/s
/// arithmetic is always the same value. (An earlier revision clamped
/// only the buffer allocation and computed MB/s from the raw size, so
/// `size == 0` reported 0 MB/s while actually transferring 1 byte.)
pub fn measure_p2p(
    sys: &SystemConfig,
    strategy: TransferStrategy,
    size: usize,
    reps: usize,
) -> BandwidthPoint {
    let size = size.max(1);
    let sys2 = sys.clone();
    let res = run_world_sized(sys.cluster.clone(), 2, move |p: Process| {
        let rt = ClMpi::new(&p, sys2.clone());
        rt.set_forced_strategy(Some(strategy));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(size);
        p.comm.barrier(&p.actor);
        let t0 = p.actor.now_ns();
        for i in 0..reps {
            let tag = i as i32;
            if p.rank() == 0 {
                rt.enqueue_send_buffer(&q, &buf, true, 0, size, 1, tag, &[], &p.actor)
                    .expect("send");
                // Wait for the remote completion signal so transfers are
                // fully serialized (one-way latency measured honestly).
                p.comm.recv(&p.actor, Some(1), Some(tag + 1000));
            } else {
                rt.enqueue_recv_buffer(&q, &buf, true, 0, size, 0, tag, &[], &p.actor)
                    .expect("recv");
                p.comm.send(&p.actor, 0, tag + 1000, &[]);
            }
        }
        rt.shutdown(&p.actor);
        p.actor.now_ns() - t0
    });
    let elapsed = res.outputs.iter().copied().max().unwrap_or(1).max(1);
    // Subtract the ack cost (one small message per rep) analytically.
    let ack = sys.cluster.link.message_ns(0);
    let per = (elapsed / reps as u64).saturating_sub(ack).max(1);
    BandwidthPoint {
        size,
        mbps: size as f64 * 1e3 / per as f64, // bytes/ns → MB/s
        per_transfer_ns: per,
    }
}

/// Measure `reps` serialized one-sided puts of `size` bytes from rank
/// `origin` into rank `target`'s window over `sys`, in a `world`-rank
/// job. Every rank participates in the epoch-closing fences
/// (`MPI_Win_fence` is collective); only the origin moves payload. The
/// pair selects the wire: co-located ranks of a CXL pod claim the
/// shared pool port, any other pair takes the NIC-routed RMA path.
pub fn measure_rma(
    sys: &SystemConfig,
    world: usize,
    origin: usize,
    target: usize,
    size: usize,
    reps: usize,
) -> BandwidthPoint {
    let size = size.max(1);
    let sys2 = sys.clone();
    let res = run_world_sized(sys.cluster.clone(), world, move |p: Process| {
        let rt = ClMpi::new(&p, sys2.clone());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(size);
        let win = rt
            .expose_buffer_as_window(&buf, size, &p.actor)
            .expect("window");
        p.comm.barrier(&p.actor);
        let t0 = p.actor.now_ns();
        for _ in 0..reps {
            let mut gate = Vec::new();
            if p.rank() == origin {
                let e = rt
                    .enqueue_put_buffer(&q, &win, false, 0, 0, size, target, &[], &p.actor)
                    .expect("put");
                gate.push(e);
            }
            let f = rt
                .enqueue_win_fence(&win, false, &gate, &p.actor)
                .expect("fence");
            f.wait_result(&p.actor).expect("fence sync");
        }
        rt.shutdown(&p.actor);
        p.actor.now_ns() - t0
    });
    let elapsed = res.outputs.iter().copied().max().unwrap_or(1).max(1);
    let per = (elapsed / reps as u64).max(1);
    BandwidthPoint {
        size,
        mbps: size as f64 * 1e3 / per as f64, // bytes/ns → MB/s
        per_transfer_ns: per,
    }
}

/// Minimal wall-clock micro-benchmark harness (replaces the external
/// `criterion` dependency so the workspace builds with zero network
/// access). Warms up twice, takes `samples` timed runs, and prints a
/// min/median/max line. What it measures is the *wall time of the
/// simulation* — regressions in the engine itself show up here.
pub fn wallclock_bench(name: &str, samples: usize, f: impl FnMut()) {
    let times = wallclock_samples(samples, f);
    let ms = |n: u128| n as f64 / 1e6;
    println!(
        "{name:<44} min {:>9.3} ms  median {:>9.3} ms  max {:>9.3} ms",
        ms(times[0]),
        ms(times[times.len() / 2]),
        ms(times[times.len() - 1])
    );
}

/// The sampling loop of [`wallclock_bench`], returning the sorted raw
/// sample times in wall-clock nanoseconds (two untimed warmup runs, then
/// `samples` timed ones). Used by harnesses that persist the numbers
/// (e.g. the before/after BENCH json of the progress-engine refactor).
pub fn wallclock_samples(samples: usize, mut f: impl FnMut()) -> Vec<u128> {
    f();
    f();
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times
}

/// The strategy set plotted in Fig. 8.
pub fn fig8_strategies() -> Vec<TransferStrategy> {
    vec![
        TransferStrategy::Pinned,
        TransferStrategy::Mapped,
        TransferStrategy::Pipelined(1 << 20),
        TransferStrategy::Pipelined(4 << 20),
        TransferStrategy::Pipelined(16 << 20),
    ]
}

/// The message-size axis of Fig. 8.
pub fn fig8_sizes() -> Vec<usize> {
    (16..=26).map(|s| 1usize << s).collect() // 64 KiB … 64 MiB
}

/// Minimal CSV writer for the `--csv <path>` option of the harnesses:
/// plotting-ready series without extra dependencies.
pub struct CsvOut {
    path: Option<String>,
    rows: Vec<String>,
}

impl CsvOut {
    /// Parse `--csv <path>` out of `args` (returns a no-op writer if
    /// absent).
    pub fn from_args(args: &[String]) -> Self {
        let path = args
            .windows(2)
            .find(|w| w[0] == "--csv")
            .map(|w| w[1].clone());
        CsvOut {
            path,
            rows: Vec::new(),
        }
    }

    /// Append one row of cells (quoted/escaped as needed).
    pub fn row<S: AsRef<str>>(&mut self, cells: impl IntoIterator<Item = S>) {
        if self.path.is_none() {
            return;
        }
        let line = cells
            .into_iter()
            .map(|c| {
                let c = c.as_ref();
                if c.contains([',', '"', '\n']) {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        self.rows.push(line);
    }

    /// Write the collected rows (no-op without `--csv`).
    pub fn finish(self) {
        if let Some(path) = self.path {
            let data = self.rows.join("\n") + "\n";
            std::fs::write(&path, data).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("(csv written to {path})");
        }
    }
}

/// Render a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Format bytes human-readably (powers of two).
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_measurement_reports_sane_bandwidth() {
        let sys = SystemConfig::cichlid();
        let bp = measure_p2p(&sys, TransferStrategy::Mapped, 1 << 20, 2);
        // On GbE sustained bandwidth must be below the wire limit and
        // above a tenth of it for a 1 MiB message.
        assert!(bp.mbps < 118.0, "below GbE: {}", bp.mbps);
        assert!(bp.mbps > 20.0, "not absurdly slow: {}", bp.mbps);
    }

    #[test]
    fn zero_size_p2p_reports_the_clamped_transfer_honestly() {
        let sys = SystemConfig::cichlid();
        let bp = measure_p2p(&sys, TransferStrategy::Pinned, 0, 1);
        // The clamp is applied once at entry: the reported size is the
        // byte actually transferred, and the bandwidth is computed from
        // it (the old code reported size 0 at 0 MB/s while moving 1 byte).
        assert_eq!(bp.size, 1);
        assert!(bp.mbps > 0.0, "1 transferred byte yields nonzero MB/s");
        assert!(bp.per_transfer_ns >= 1);
    }

    #[test]
    fn fmt_size_renders() {
        assert_eq!(fmt_size(64 << 10), "64K");
        assert_eq!(fmt_size(16 << 20), "16M");
        assert_eq!(fmt_size(17), "17B");
    }

    #[test]
    fn fig8_axes_cover_paper_ranges() {
        assert_eq!(fig8_strategies().len(), 5);
        let sizes = fig8_sizes();
        assert_eq!(*sizes.first().unwrap(), 64 << 10);
        assert_eq!(*sizes.last().unwrap(), 64 << 20);
    }
}
