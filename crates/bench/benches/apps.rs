//! Criterion benches over the application harnesses (reduced problem
//! sizes; the paper-scale sweeps live in the `fig9`/`fig10` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use clmpi::SystemConfig;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};

fn bench_himeno_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_himeno_xs");
    g.sample_size(10);
    for variant in [Variant::Serial, Variant::HandOptimized, Variant::ClMpi] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_himeno(
                        variant,
                        HimenoConfig {
                            size: GridSize::Xs,
                            iters: 3,
                            sys: SystemConfig::cichlid(),
                            nodes: 4,
                            strategy: None,
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_nanopowder_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_nanopowder_small");
    g.sample_size(10);
    for variant in [NanoVariant::Baseline, NanoVariant::ClMpi] {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_nanopowder(
                        variant,
                        NanoConfig {
                            sections: 240,
                            steps: 2,
                            sys: SystemConfig::ricc(),
                            nodes: 4,
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_himeno_variants, bench_nanopowder_variants);
criterion_main!(benches);
