//! Benches over the application harnesses (reduced problem sizes; the
//! paper-scale sweeps live in the `fig9`/`fig10` binaries). Uses the
//! workspace's minimal timing harness instead of the external
//! `criterion` crate.

use clmpi::SystemConfig;
use clmpi_bench::wallclock_bench;
use himeno::{run_himeno, GridSize, HimenoConfig, Variant};
use nanopowder::{run_nanopowder, NanoConfig, NanoVariant};

fn main() {
    println!("fig9_himeno_xs (simulation wall time)");
    for variant in [Variant::Serial, Variant::HandOptimized, Variant::ClMpi] {
        wallclock_bench(&format!("fig9_himeno_xs/{}", variant.name()), 10, || {
            run_himeno(
                variant,
                HimenoConfig {
                    size: GridSize::Xs,
                    iters: 3,
                    sys: SystemConfig::cichlid(),
                    nodes: 4,
                    strategy: None,
                    halo: Default::default(),
                },
            );
        });
    }
    println!("fig10_nanopowder_small (simulation wall time)");
    for variant in [NanoVariant::Baseline, NanoVariant::ClMpi] {
        wallclock_bench(
            &format!("fig10_nanopowder_small/{}", variant.name()),
            10,
            || {
                run_nanopowder(
                    variant,
                    NanoConfig {
                        sections: 240,
                        steps: 2,
                        sys: SystemConfig::ricc(),
                        nodes: 4,
                    },
                );
            },
        );
    }
}
