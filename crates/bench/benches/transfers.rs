//! Criterion benches over the Fig. 8 measurement loop (reduced sizes so
//! `cargo bench` stays quick; the full sweep lives in the `fig8` binary).
//!
//! Note: what is measured here is the *wall time of the simulation* of
//! each transfer; the simulated (virtual) bandwidths are printed by the
//! `fig8` harness. Tracking wall time keeps the simulator itself honest —
//! regressions in the engine show up here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use clmpi::{SystemConfig, TransferStrategy};
use clmpi_bench::measure_p2p;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_p2p");
    g.sample_size(10);
    for (sys_name, sys) in [
        ("cichlid", SystemConfig::cichlid()),
        ("ricc", SystemConfig::ricc()),
    ] {
        for st in [
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
            TransferStrategy::Pipelined(1 << 20),
        ] {
            g.bench_with_input(
                BenchmarkId::new(sys_name, st.name()),
                &st,
                |b, &st| b.iter(|| measure_p2p(&sys, st, 4 << 20, 1)),
            );
        }
    }
    g.finish();
}

fn bench_auto_selection(c: &mut Criterion) {
    let sys = SystemConfig::ricc();
    c.bench_function("fig8_auto_4M", |b| {
        b.iter(|| measure_p2p(&sys, TransferStrategy::Auto, 4 << 20, 1))
    });
}

criterion_group!(benches, bench_strategies, bench_auto_selection);
criterion_main!(benches);
