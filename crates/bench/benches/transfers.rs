//! Benches over the Fig. 8 measurement loop (reduced sizes so
//! `cargo bench` stays quick; the full sweep lives in the `fig8` binary).
//!
//! Note: what is measured here is the *wall time of the simulation* of
//! each transfer; the simulated (virtual) bandwidths are printed by the
//! `fig8` harness. Tracking wall time keeps the simulator itself honest —
//! regressions in the engine show up here. Uses the workspace's minimal
//! timing harness instead of the external `criterion` crate.

use clmpi::{SystemConfig, TransferStrategy};
use clmpi_bench::{measure_p2p, wallclock_bench};

fn main() {
    println!("fig8_p2p (4 MiB, simulation wall time)");
    for (sys_name, sys) in [
        ("cichlid", SystemConfig::cichlid()),
        ("ricc", SystemConfig::ricc()),
    ] {
        for st in [
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
            TransferStrategy::Pipelined(1 << 20),
        ] {
            wallclock_bench(&format!("fig8_p2p/{sys_name}/{}", st.name()), 10, || {
                measure_p2p(&sys, st, 4 << 20, 1);
            });
        }
    }
    let sys = SystemConfig::ricc();
    wallclock_bench("fig8_auto_4M", 10, || {
        measure_p2p(&sys, TransferStrategy::Auto, 4 << 20, 1);
    });
}
