//! Runtime error codes (subset of OpenCL's `CL_*` errors).

use std::fmt;

/// Errors surfaced by runtime calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// A size/offset pair exceeds a buffer (`CL_INVALID_VALUE`).
    InvalidValue(String),
    /// An operation used an object from a different context
    /// (`CL_INVALID_CONTEXT`).
    InvalidContext,
    /// The queue has been shut down (`CL_INVALID_COMMAND_QUEUE`).
    QueueShutDown,
    /// A user event was completed twice (`CL_INVALID_OPERATION`).
    InvalidOperation(String),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            ClError::InvalidContext => write!(f, "object used outside its context"),
            ClError::QueueShutDown => write!(f, "command queue already shut down"),
            ClError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for ClError {}
