//! Runtime error codes (subset of OpenCL's `CL_*` errors).

use std::fmt;

// Negative event-status codes live in [`crate::status`]; re-exported here
// so error-handling code finds everything under one module.
pub use crate::status::{CL_MPI_TRANSFER_ERROR, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST};

/// Errors surfaced by runtime calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// A size/offset pair exceeds a buffer (`CL_INVALID_VALUE`).
    InvalidValue(String),
    /// An operation used an object from a different context
    /// (`CL_INVALID_CONTEXT`).
    InvalidContext,
    /// The queue has been shut down (`CL_INVALID_COMMAND_QUEUE`).
    QueueShutDown,
    /// A user event was completed twice (`CL_INVALID_OPERATION`).
    InvalidOperation(String),
    /// An awaited event terminated with a negative execution status
    /// (`clWaitForEvents` returning
    /// `CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST`).
    EventFailed {
        /// The event's negative error status.
        code: i32,
        /// The failed event's diagnostic label.
        label: String,
    },
    /// An inter-node transfer failed permanently (e.g. the retry budget
    /// was exhausted under a fault plan).
    TransferFailed(String),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            ClError::InvalidContext => write!(f, "object used outside its context"),
            ClError::QueueShutDown => write!(f, "command queue already shut down"),
            ClError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            ClError::EventFailed { code, label } => {
                write!(f, "event '{label}' failed with status {code}")
            }
            ClError::TransferFailed(m) => write!(f, "inter-node transfer failed: {m}"),
        }
    }
}

impl std::error::Error for ClError {}
