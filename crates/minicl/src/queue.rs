//! In-order command queues with scheduled executor machines.
//!
//! Each queue owns one executor machine ([`QueueCore`]) spawned through
//! [`SimClock::spawn_machine`]: a dedicated clock-actor thread in thread
//! mode, a shard-worker resident in event mode. Commands are dispatched
//! strictly in enqueue order; a command first waits for its wait-list
//! events (possibly from other queues), then runs. This is the OpenCL
//! in-order execution model, and because the executor is a real
//! concurrent actor, enqueues never block the host thread — the exact
//! property the paper's clMPI design builds on.

use simtime::plock::Mutex;
use std::sync::Arc;

use simtime::{Actor, MachineHandle, MachineStep, SimActor, SimChannel, SimClock, SimNs, Trace};

use crate::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
use crate::{Buffer, ClResult, CommandStatus, Device, Event, HostBuffer, WaitListStatus};

type Body = Box<dyn FnOnce() + Send>;

enum Command {
    Shutdown,
    /// Generic device task: optional host-side body (real computation) and
    /// a device-time cost.
    Task {
        event: Event,
        wait: Vec<Event>,
        cost_ns: SimNs,
        body: Option<Body>,
        kind: &'static str,
    },
    /// Device→host transfer over PCIe.
    ReadBuffer {
        event: Event,
        wait: Vec<Event>,
        buf: Buffer,
        offset: usize,
        size: usize,
        host: HostBuffer,
        host_offset: usize,
    },
    /// Host→device transfer over PCIe.
    WriteBuffer {
        event: Event,
        wait: Vec<Event>,
        buf: Buffer,
        offset: usize,
        size: usize,
        host: HostBuffer,
        host_offset: usize,
    },
}

struct QueueShared {
    clock: SimClock,
    device: Device,
    label: String,
    chan: SimChannel<Command>,
    trace: Mutex<Option<(Trace, String)>>,
}

/// An in-order command queue (`cl_command_queue`).
pub struct CommandQueue {
    shared: Arc<QueueShared>,
    joiner: Mutex<Option<MachineHandle>>,
}

/// FNV-1a over the queue label: a host-independent shard-placement hint.
fn label_hint(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CommandQueue {
    pub(crate) fn new(clock: SimClock, device: Device, label: String) -> Self {
        let shared = Arc::new(QueueShared {
            chan: SimChannel::new(clock.clone()),
            clock: clock.clone(),
            device,
            label: label.clone(),
            trace: Mutex::new(None),
        });
        let core = QueueCore {
            shared: shared.clone(),
            state: ExecState::Idle,
        };
        let joiner =
            clock.spawn_machine(label_hint(&label), format!("queue:{label}"), Box::new(core));
        CommandQueue {
            shared,
            joiner: Mutex::new(Some(joiner)),
        }
    }

    /// The device this queue feeds.
    pub fn device(&self) -> &Device {
        &self.shared.device
    }

    /// Record every executed command into `trace` under `lane`.
    pub fn set_trace(&self, trace: Trace, lane: impl Into<String>) {
        *self.shared.trace.lock() = Some((trace, lane.into()));
    }

    /// Enqueue a kernel: `body` runs on the executor (real computation),
    /// `cost_ns` of device time is charged (`clEnqueueNDRangeKernel`).
    pub fn enqueue_kernel(
        &self,
        name: &'static str,
        cost_ns: SimNs,
        wait_list: &[Event],
        body: impl FnOnce() + Send + 'static,
    ) -> Event {
        let event = Event::new_queued(self.shared.clock.clone(), name);
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns,
            body: Some(Box::new(body)),
            kind: name,
        });
        event
    }

    /// Enqueue a marker that completes once all preceding commands (and
    /// `wait_list`) have completed (`clEnqueueMarkerWithWaitList`).
    pub fn enqueue_marker(&self, wait_list: &[Event]) -> Event {
        let event = Event::new_queued(self.shared.clock.clone(), "marker");
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns: 0,
            body: None,
            kind: "marker",
        });
        event
    }

    /// Enqueue a device→host read (`clEnqueueReadBuffer`). When `blocking`
    /// the call waits for completion on `actor` before returning.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_read_buffer(
        &self,
        actor: &Actor,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        host: &HostBuffer,
        host_offset: usize,
        wait_list: &[Event],
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let event = Event::new_queued(self.shared.clock.clone(), "read-buffer");
        self.shared.chan.send(Command::ReadBuffer {
            event: event.clone(),
            wait: wait_list.to_vec(),
            buf: buf.clone(),
            offset,
            size,
            host: host.clone(),
            host_offset,
        });
        if blocking {
            event.wait(actor);
        }
        Ok(event)
    }

    /// Enqueue a host→device write (`clEnqueueWriteBuffer`).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_write_buffer(
        &self,
        actor: &Actor,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        host: &HostBuffer,
        host_offset: usize,
        wait_list: &[Event],
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let event = Event::new_queued(self.shared.clock.clone(), "write-buffer");
        self.shared.chan.send(Command::WriteBuffer {
            event: event.clone(),
            wait: wait_list.to_vec(),
            buf: buf.clone(),
            offset,
            size,
            host: host.clone(),
            host_offset,
        });
        if blocking {
            event.wait(actor);
        }
        Ok(event)
    }

    /// Map a buffer region for host access (`clEnqueueMapBuffer`): copies
    /// the region into a pageable host buffer at the mapped rate and pays
    /// the map setup cost. Returns (event, mapped region).
    pub fn enqueue_map_buffer(
        &self,
        actor: &Actor,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        wait_list: &[Event],
    ) -> ClResult<(Event, HostBuffer)> {
        buf.check_range(offset, size)?;
        let host = HostBuffer::pageable(size);
        let spec = self.shared.device.spec().pcie;
        let cost = spec.map_setup_ns + (size as f64 * 1e9 / spec.mapped_bps).round() as SimNs;
        let event = Event::new_queued(self.shared.clock.clone(), "map-buffer");
        let buf2 = buf.clone();
        let host2 = host.clone();
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns: cost,
            body: Some(Box::new(move || {
                let bytes = buf2.load(offset, size).expect("range checked");
                host2.fill_from(&bytes);
            })),
            kind: "map-buffer",
        });
        if blocking {
            event.wait(actor);
        }
        Ok((event, host))
    }

    /// Unmap a previously mapped region (`clEnqueueUnmapMemObject`):
    /// writes the host copy back at the mapped rate.
    pub fn enqueue_unmap(
        &self,
        buf: &Buffer,
        offset: usize,
        mapped: &HostBuffer,
        wait_list: &[Event],
    ) -> ClResult<Event> {
        let size = mapped.size();
        buf.check_range(offset, size)?;
        let spec = self.shared.device.spec().pcie;
        let cost = spec.map_setup_ns + (size as f64 * 1e9 / spec.mapped_bps).round() as SimNs;
        let event = Event::new_queued(self.shared.clock.clone(), "unmap");
        let buf2 = buf.clone();
        let mapped2 = mapped.clone();
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns: cost,
            body: Some(Box::new(move || {
                let bytes = mapped2.to_vec();
                buf2.store(offset, &bytes).expect("range checked");
            })),
            kind: "unmap",
        });
        Ok(event)
    }

    /// Device→device copy within the same device (`clEnqueueCopyBuffer`):
    /// charged at device memory bandwidth (read + write).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_copy_buffer(
        &self,
        src: &Buffer,
        src_offset: usize,
        dst: &Buffer,
        dst_offset: usize,
        size: usize,
        wait_list: &[Event],
    ) -> ClResult<Event> {
        src.check_range(src_offset, size)?;
        dst.check_range(dst_offset, size)?;
        let cost = self.shared.device.spec().membound_kernel_ns(2 * size);
        let event = Event::new_queued(self.shared.clock.clone(), "copy-buffer");
        let (src, dst) = (src.clone(), dst.clone());
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns: cost,
            body: Some(Box::new(move || {
                let bytes = src.load(src_offset, size).expect("range checked");
                dst.store(dst_offset, &bytes).expect("range checked");
            })),
            kind: "copy-buffer",
        });
        Ok(event)
    }

    /// Fill a buffer region with a repeated byte pattern
    /// (`clEnqueueFillBuffer`): charged at device memory write bandwidth.
    pub fn enqueue_fill_buffer(
        &self,
        buf: &Buffer,
        pattern: Vec<u8>,
        offset: usize,
        size: usize,
        wait_list: &[Event],
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if pattern.is_empty() || !size.is_multiple_of(pattern.len()) {
            return Err(crate::ClError::InvalidValue(format!(
                "fill size {size} is not a multiple of the {}-byte pattern",
                pattern.len()
            )));
        }
        let cost = self.shared.device.spec().membound_kernel_ns(size);
        let event = Event::new_queued(self.shared.clock.clone(), "fill-buffer");
        let buf = buf.clone();
        self.shared.chan.send(Command::Task {
            event: event.clone(),
            wait: wait_list.to_vec(),
            cost_ns: cost,
            body: Some(Box::new(move || {
                buf.write(|d| {
                    for chunk in d.as_mut_slice()[offset..offset + size].chunks_mut(pattern.len()) {
                        chunk.copy_from_slice(&pattern[..chunk.len()]);
                    }
                });
            })),
            kind: "fill-buffer",
        });
        Ok(event)
    }

    /// Block until every enqueued command has completed (`clFinish`).
    pub fn finish(&self, actor: &Actor) {
        self.enqueue_marker(&[]).wait(actor);
    }
}

impl Drop for CommandQueue {
    fn drop(&mut self) {
        self.shared.chan.send(Command::Shutdown);
        // Take the handle out before reaping: an `if let` scrutinee would
        // keep the MutexGuard alive across the join, deadlocking any
        // `on_worker_thread` call from the executor being joined.
        let j = self.joiner.lock().take();
        if let Some(j) = j {
            // If the owning thread is panicking the clock is poisoned and
            // the executor dies by panic; joining would double-panic.
            // (`reap` skips the join in that case, and has nothing to
            // join in event mode — the machine retires on its shard.)
            j.reap();
        }
    }
}

impl Command {
    fn event(&self) -> Option<&Event> {
        match self {
            Command::Shutdown => None,
            Command::Task { event, .. }
            | Command::ReadBuffer { event, .. }
            | Command::WriteBuffer { event, .. } => Some(event),
        }
    }

    /// The command's event wait list (named to stay distinct from the
    /// blocking `wait` vocabulary — this is an accessor, it never parks).
    fn wait_list(&self) -> &[Event] {
        match self {
            Command::Shutdown => &[],
            Command::Task { wait, .. }
            | Command::ReadBuffer { wait, .. }
            | Command::WriteBuffer { wait, .. } => wait,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Command::Shutdown => "shutdown",
            Command::Task { kind, .. } => kind,
            Command::ReadBuffer { .. } => "read",
            Command::WriteBuffer { .. } => "write",
        }
    }
}

/// Where the executor machine stands between polls.
enum ExecState {
    /// Between commands: dequeue the next one at the current instant.
    Idle,
    /// The head command's wait list has unsettled events.
    AwaitDeps(Command),
    /// The head command occupies its engine/link reservation until `end`.
    Running {
        cmd: Command,
        start: SimNs,
        end: SimNs,
    },
}

/// The queue executor as a resumable machine: dequeue → settle deps →
/// reserve and run → complete, strictly in order, exactly as the old
/// dedicated-thread loop did instant for instant. Identical code serves
/// both execution modes.
struct QueueCore {
    shared: Arc<QueueShared>,
    state: ExecState,
}

impl SimActor for QueueCore {
    fn wait_label(&self) -> &'static str {
        "queue executor"
    }

    fn poll(&mut self, now: SimNs, _actor: &Actor) -> MachineStep {
        let mut transitions: u64 = 0;
        let step = loop {
            match std::mem::replace(&mut self.state, ExecState::Idle) {
                ExecState::Idle => match self.shared.chan.try_recv() {
                    None => break MachineStep::Pending(None),
                    Some(Command::Shutdown) => {
                        transitions += 1;
                        break MachineStep::Done;
                    }
                    Some(cmd) => {
                        // Submission instant: when the executor reaches
                        // the command (the old loop's dequeue instant).
                        cmd.event().expect("non-shutdown").mark_submitted(now);
                        transitions += 1;
                        self.state = ExecState::AwaitDeps(cmd);
                    }
                },
                ExecState::AwaitDeps(cmd) => match Event::poll_wait_list(cmd.wait_list()) {
                    WaitListStatus::Pending => {
                        self.state = ExecState::AwaitDeps(cmd);
                        break MachineStep::Pending(None);
                    }
                    WaitListStatus::Failed { .. } => {
                        // A dependency failed: poison the command (its
                        // body never runs, no device time is charged)
                        // and move on to the next one.
                        let event = cmd.event().expect("non-shutdown");
                        event.fail(now, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST);
                        if let Some((trace, lane)) = self.shared.trace.lock().as_ref() {
                            trace.record(
                                lane.clone(),
                                format!("{}@{} poisoned", cmd.kind(), self.shared.label),
                                now,
                                now,
                            );
                        }
                        transitions += 1;
                        self.state = ExecState::Idle;
                    }
                    WaitListStatus::Ready => {
                        let start = now;
                        let mut cmd = cmd;
                        let end = begin_command(&self.shared, &mut cmd, start);
                        transitions += 1;
                        self.state = ExecState::Running { cmd, start, end };
                    }
                },
                ExecState::Running { cmd, start, end } => {
                    if now < end {
                        self.state = ExecState::Running { cmd, start, end };
                        break MachineStep::Pending(Some(end));
                    }
                    complete_command(&self.shared, cmd, start, end);
                    transitions += 1;
                    self.state = ExecState::Idle;
                }
            }
        };
        if transitions > 0 {
            self.shared.clock.count_events(transitions);
        }
        step
    }
}

/// Start the head command at `start`: mark it running, execute its host
/// body (Task bodies run at the start instant, as the old loop did), and
/// reserve its device engine/link. Returns the occupancy end instant.
fn begin_command(shared: &QueueShared, cmd: &mut Command, start: SimNs) -> SimNs {
    cmd.event().expect("non-shutdown").mark_running(start);
    match cmd {
        Command::Shutdown => start,
        Command::Task { cost_ns, body, .. } => {
            if let Some(b) = body.take() {
                b();
            }
            if *cost_ns > 0 {
                // Kernels serialize on the device's compute engine, even
                // across queues.
                shared
                    .device
                    .compute_link()
                    .reserve_duration(*cost_ns, start)
                    .end
            } else {
                start
            }
        }
        Command::ReadBuffer { size, host, .. } => {
            let dur = shared.device.spec().pcie.staged_ns(*size, host.is_pinned());
            shared.device.d2h_link().reserve_duration(dur, start).end
        }
        Command::WriteBuffer { size, host, .. } => {
            let dur = shared.device.spec().pcie.staged_ns(*size, host.is_pinned());
            shared.device.h2d_link().reserve_duration(dur, start).end
        }
    }
}

/// Finish the head command at `end`: transfer payloads move at the
/// completion instant (the old loop copied after `advance_until(end)`),
/// then the event completes and the span is recorded.
fn complete_command(shared: &QueueShared, cmd: Command, start: SimNs, end: SimNs) {
    let kind = cmd.kind();
    let event = match cmd {
        Command::Shutdown => unreachable!("shutdown never runs"),
        Command::Task { event, .. } => event,
        Command::ReadBuffer {
            event,
            buf,
            offset,
            size,
            host,
            host_offset,
            ..
        } => {
            let bytes = buf.load(offset, size).expect("range checked at enqueue");
            host.write(|h| {
                h.as_mut_slice()[host_offset..host_offset + size].copy_from_slice(&bytes)
            });
            event
        }
        Command::WriteBuffer {
            event,
            buf,
            offset,
            size,
            host,
            host_offset,
            ..
        } => {
            let bytes = host.read(|h| h.as_slice()[host_offset..host_offset + size].to_vec());
            buf.store(offset, &bytes).expect("range checked at enqueue");
            event
        }
    };
    event.complete(end);
    debug_assert_eq!(event.status(), CommandStatus::Complete);
    if let Some((trace, lane)) = shared.trace.lock().as_ref() {
        trace.record(lane.clone(), format!("{kind}@{}", shared.label), start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Context, DeviceSpec};

    fn ctx_and_actor() -> (Context, Actor) {
        let clock = SimClock::new();
        let actor = clock.register("host");
        let ctx = Context::new(clock, &[DeviceSpec::tesla_c2070()]);
        (ctx, actor)
    }

    #[test]
    fn kernel_runs_and_charges_cost() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let buf = ctx.create_buffer(16);
        let b2 = buf.clone();
        let e = q.enqueue_kernel("fill", 1_000, &[], move || {
            b2.write(|d| d.as_f32_mut().iter_mut().for_each(|x| *x = 2.0));
        });
        e.wait(&actor);
        assert!(buf.read(|d| d.as_f32().iter().all(|&x| x == 2.0)));
        let p = e.profiling().unwrap();
        assert_eq!(p.completed - p.started, 1_000);
    }

    #[test]
    fn in_order_execution_serializes_commands() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let e1 = q.enqueue_kernel("a", 500, &[], || {});
        let e2 = q.enqueue_kernel("b", 300, &[], || {});
        e2.wait(&actor);
        let p1 = e1.profiling().unwrap();
        let p2 = e2.profiling().unwrap();
        assert!(p2.started >= p1.completed, "in-order queue");
        assert_eq!(p2.completed, 800);
    }

    #[test]
    fn two_queues_one_device_serialize_kernels() {
        // One compute engine: kernels from different queues cannot
        // overlap on the same device.
        let (ctx, actor) = ctx_and_actor();
        let q1 = ctx.create_queue(0, "q1");
        let q2 = ctx.create_queue(0, "q2");
        let e1 = q1.enqueue_kernel("a", 1_000, &[], || {});
        let e2 = q2.enqueue_kernel("b", 1_000, &[], || {});
        e1.wait(&actor);
        e2.wait(&actor);
        assert_eq!(actor.now_ns(), 2_000, "compute engine is serialized");
    }

    #[test]
    fn two_devices_overlap_kernels() {
        let clock = SimClock::new();
        let actor = clock.register("host");
        let ctx = Context::new(
            clock,
            &[DeviceSpec::tesla_c2070(), DeviceSpec::tesla_c2070()],
        );
        let q1 = ctx.create_queue(0, "q1");
        let q2 = ctx.create_queue(1, "q2");
        let e1 = q1.enqueue_kernel("a", 1_000, &[], || {});
        let e2 = q2.enqueue_kernel("b", 1_000, &[], || {});
        e1.wait(&actor);
        e2.wait(&actor);
        assert!(actor.now_ns() < 1_500, "distinct devices run concurrently");
    }

    #[test]
    fn kernel_overlaps_pcie_transfer() {
        // Compute/DMA overlap is real: a kernel and a buffer write from
        // two queues proceed concurrently.
        let (ctx, actor) = ctx_and_actor();
        let qk = ctx.create_queue(0, "qk");
        let qx = ctx.create_queue(0, "qx");
        let buf = ctx.create_buffer(8 << 20);
        let host = HostBuffer::pinned(8 << 20);
        let ek = qk.enqueue_kernel("k", 2_000_000, &[], || {});
        let ex = qx
            .enqueue_write_buffer(&actor, &buf, false, 0, 8 << 20, &host, 0, &[])
            .unwrap();
        ek.wait(&actor);
        ex.wait(&actor);
        assert!(
            actor.now_ns() < 2_600_000,
            "transfer hidden under the kernel: {}",
            actor.now_ns()
        );
    }

    #[test]
    fn wait_list_orders_across_queues() {
        let (ctx, actor) = ctx_and_actor();
        let q1 = ctx.create_queue(0, "q1");
        let q2 = ctx.create_queue(0, "q2");
        let e1 = q1.enqueue_kernel("producer", 2_000, &[], || {});
        let e2 = q2.enqueue_kernel("consumer", 100, std::slice::from_ref(&e1), || {});
        e2.wait(&actor);
        let p1 = e1.profiling().unwrap();
        let p2 = e2.profiling().unwrap();
        assert!(p2.started >= p1.completed, "wait list enforced");
    }

    #[test]
    fn read_write_buffer_roundtrip_with_timing() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let buf = ctx.create_buffer(1 << 20);
        let src = HostBuffer::pinned(1 << 20);
        src.fill_from(&vec![7u8; 1 << 20]);
        let dst = HostBuffer::pinned(1 << 20);
        q.enqueue_write_buffer(&actor, &buf, true, 0, 1 << 20, &src, 0, &[])
            .unwrap();
        q.enqueue_read_buffer(&actor, &buf, true, 0, 1 << 20, &dst, 0, &[])
            .unwrap();
        assert_eq!(dst.to_vec(), vec![7u8; 1 << 20]);
        // 2 MB over ~5.8 GB/s plus latencies: ~360 us total.
        let t = actor.now_ns();
        assert!(t > 300_000 && t < 500_000, "pcie timing plausible: {t}");
    }

    #[test]
    fn pageable_transfer_slower_than_pinned() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let buf = ctx.create_buffer(4 << 20);
        let pinned = HostBuffer::pinned(4 << 20);
        let pageable = HostBuffer::pageable(4 << 20);
        let t0 = actor.now_ns();
        q.enqueue_write_buffer(&actor, &buf, true, 0, 4 << 20, &pinned, 0, &[])
            .unwrap();
        let t1 = actor.now_ns();
        q.enqueue_write_buffer(&actor, &buf, true, 0, 4 << 20, &pageable, 0, &[])
            .unwrap();
        let t2 = actor.now_ns();
        assert!(t2 - t1 > (t1 - t0) * 3 / 2, "pageable visibly slower");
    }

    #[test]
    fn map_unmap_roundtrip() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let buf = ctx.create_buffer(64);
        buf.store(0, &[3u8; 64]).unwrap();
        let (me, mapped) = q
            .enqueue_map_buffer(&actor, &buf, true, 0, 64, &[])
            .unwrap();
        assert!(me.is_complete());
        assert_eq!(mapped.to_vec(), vec![3u8; 64]);
        mapped.fill_from(&[9u8; 64]);
        let ue = q.enqueue_unmap(&buf, 0, &mapped, &[]).unwrap();
        ue.wait(&actor);
        assert_eq!(buf.load(0, 64).unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn copy_buffer_moves_bytes_with_cost() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let a = ctx.create_buffer(1 << 20);
        let b = ctx.create_buffer(1 << 20);
        a.store(0, &vec![3u8; 1 << 20]).unwrap();
        let e = q.enqueue_copy_buffer(&a, 0, &b, 0, 1 << 20, &[]).unwrap();
        e.wait(&actor);
        assert_eq!(b.load(0, 1 << 20).unwrap(), vec![3u8; 1 << 20]);
        let p = e.profiling().unwrap();
        // 2 MiB through 144 GB/s ≈ 14.5 us + launch overhead.
        assert!(p.completed - p.started > 10_000);
    }

    #[test]
    fn fill_buffer_patterns_region() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let b = ctx.create_buffer(32);
        let e = q
            .enqueue_fill_buffer(&b, vec![0xAB, 0xCD], 8, 16, &[])
            .unwrap();
        e.wait(&actor);
        let out = b.load(0, 32).unwrap();
        assert!(out[..8].iter().all(|&x| x == 0));
        assert_eq!(&out[8..12], &[0xAB, 0xCD, 0xAB, 0xCD]);
        assert!(out[24..].iter().all(|&x| x == 0));
    }

    #[test]
    fn fill_buffer_rejects_misaligned_pattern() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let b = ctx.create_buffer(32);
        assert!(q
            .enqueue_fill_buffer(&b, vec![1, 2, 3], 0, 32, &[])
            .is_err());
        q.finish(&actor);
    }

    #[test]
    fn finish_drains_the_queue() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        for _ in 0..5 {
            q.enqueue_kernel("k", 100, &[], || {});
        }
        q.finish(&actor);
        assert_eq!(actor.now_ns(), 500);
    }

    #[test]
    fn enqueue_does_not_block_host() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let e = q.enqueue_kernel("slow", 1_000_000, &[], || {});
        // Host can do its own work concurrently.
        actor.advance_ns(400_000);
        assert!(!e.is_complete() || e.completion_time().unwrap() <= 1_000_000);
        e.wait(&actor);
        assert_eq!(actor.now_ns(), 1_000_000, "overlapped, not serialized");
    }

    #[test]
    fn out_of_range_enqueue_rejected() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let buf = ctx.create_buffer(16);
        let host = HostBuffer::pinned(16);
        assert!(q
            .enqueue_read_buffer(&actor, &buf, false, 8, 16, &host, 0, &[])
            .is_err());
        q.finish(&actor);
    }

    #[test]
    fn failed_dependency_poisons_gated_command() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let ue = ctx.create_user_event("gate");
        let ran = Arc::new(Mutex::new(false));
        let r2 = ran.clone();
        let e = q.enqueue_kernel("gated", 10_000, &[ue.event()], move || {
            *r2.lock() = true;
        });
        // A second, chained command is poisoned transitively.
        let e2 = q.enqueue_marker(std::slice::from_ref(&e));
        actor.advance_ns(100);
        ue.set_failed(actor.now_ns(), -42).unwrap();
        assert!(e.wait_result(&actor).is_err());
        assert_eq!(
            e.status(),
            CommandStatus::Failed(crate::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
        );
        assert!(!*ran.lock(), "poisoned command body never ran");
        assert!(e2.wait_result(&actor).is_err(), "failure cascades");
        // The queue itself stays usable: an ungated command still runs.
        let e3 = q.enqueue_kernel("after", 10, &[], || {});
        e3.wait(&actor);
        assert!(e3.is_complete());
    }

    #[test]
    fn user_event_gates_queue_command() {
        let (ctx, actor) = ctx_and_actor();
        let q = ctx.create_queue(0, "q0");
        let ue = ctx.create_user_event("gate");
        let e = q.enqueue_kernel("gated", 10, &[ue.event()], || {});
        actor.advance_ns(5_000);
        assert!(!e.is_complete(), "blocked on user event");
        ue.set_complete(actor.now_ns()).unwrap();
        e.wait(&actor);
        assert_eq!(e.profiling().unwrap().started, 5_000);
    }
}
