//! Event objects: the dependency mechanism of the OpenCL execution model.
//!
//! Every enqueued command is bound to an [`Event`]; commands may name
//! other events in a *wait list* and only start once all of them complete.
//! [`UserEvent`]s are completable from application (or clMPI runtime)
//! code — the paper's implementation makes inter-node communication
//! commands return user events that "mimic event objects of standard
//! OpenCL commands" (§V-A); this module is exactly that mimicry.

use std::sync::Arc;

use simtime::{Actor, Monitor, SimClock, SimNs};

use crate::{ClError, ClResult};

/// Command execution status (`CL_QUEUED` … `CL_COMPLETE`, or a negative
/// error code as OpenCL events report abnormal termination).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandStatus {
    /// Enqueued, not yet seen by the executor.
    Queued,
    /// Picked up by the executor, waiting on its wait list.
    Submitted,
    /// Executing on the device.
    Running,
    /// Finished; timestamps final.
    Complete,
    /// Terminated abnormally with a negative OpenCL-style error code
    /// (e.g. [`crate::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST`]
    /// when a wait list dependency failed, or a runtime-specific code such
    /// as an exhausted-retries transfer error).
    Failed(i32),
}

impl CommandStatus {
    /// True once the event can never change again (complete or failed).
    pub fn is_settled(self) -> bool {
        matches!(self, CommandStatus::Complete | CommandStatus::Failed(_))
    }

    /// The negative error code, if failed.
    pub fn error_code(self) -> Option<i32> {
        match self {
            CommandStatus::Failed(c) => Some(c),
            _ => None,
        }
    }
}

/// Profiling timestamps in virtual ns (`CL_PROFILING_COMMAND_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilingInfo {
    /// When the command was enqueued.
    pub queued: SimNs,
    /// When the executor picked it up.
    pub submitted: SimNs,
    /// When execution began (wait list satisfied).
    pub started: SimNs,
    /// When execution finished.
    pub completed: SimNs,
}

struct EventState {
    status: CommandStatus,
    profiling: ProfilingInfo,
    #[allow(clippy::type_complexity)]
    callbacks: Vec<Box<dyn FnOnce(CommandStatus) + Send>>,
    label: String,
}

/// A command's status handle. Cheap to clone; all clones observe the same
/// state (like `cl_event` handles with retain/release).
#[derive(Clone)]
pub struct Event {
    core: Arc<Monitor<EventState>>,
}

impl Event {
    pub(crate) fn new_queued(clock: SimClock, label: impl Into<String>) -> Self {
        let queued = clock.now_ns();
        Event {
            core: Arc::new(Monitor::new(
                clock,
                EventState {
                    status: CommandStatus::Queued,
                    profiling: ProfilingInfo {
                        queued,
                        ..Default::default()
                    },
                    callbacks: Vec::new(),
                    label: label.into(),
                },
            )),
        }
    }

    /// Current status.
    pub fn status(&self) -> CommandStatus {
        self.core.peek(|st| st.status)
    }

    /// True once complete.
    pub fn is_complete(&self) -> bool {
        self.status() == CommandStatus::Complete
    }

    /// True once failed (negative status).
    pub fn is_failed(&self) -> bool {
        matches!(self.status(), CommandStatus::Failed(_))
    }

    /// The negative error code, if the event failed.
    pub fn error_code(&self) -> Option<i32> {
        self.status().error_code()
    }

    /// Profiling timestamps; `None` until complete (as in OpenCL, where
    /// querying before completion is undefined — we make it checkable).
    pub fn profiling(&self) -> Option<ProfilingInfo> {
        self.core
            .peek(|st| (st.status == CommandStatus::Complete).then_some(st.profiling))
    }

    /// Completion instant, if complete.
    pub fn completion_time(&self) -> Option<SimNs> {
        self.profiling().map(|p| p.completed)
    }

    /// Diagnostic label ("kernel jacobi", "recv-buffer from 3", …).
    pub fn label(&self) -> String {
        self.core.peek(|st| st.label.clone())
    }

    /// Block the calling actor until the command settles — completes or
    /// fails (`clWaitForEvents` with a single event). Use
    /// [`Event::wait_result`] to observe the failure.
    pub fn wait(&self, actor: &Actor) {
        self.core.wait_labeled(actor, "event wait", |st| {
            st.status.is_settled().then_some(())
        });
    }

    /// Block until the command settles, reporting abnormal termination as
    /// [`ClError::EventFailed`] — the checked form of [`Event::wait`].
    pub fn wait_result(&self, actor: &Actor) -> ClResult<()> {
        let (status, label) = self.core.wait_labeled(actor, "event wait", |st| {
            st.status
                .is_settled()
                .then(|| (st.status, st.label.clone()))
        });
        match status.error_code() {
            None => Ok(()),
            Some(code) => Err(ClError::EventFailed { code, label }),
        }
    }

    /// Block until every event in `events` settles (`clWaitForEvents`).
    pub fn wait_all(events: &[Event], actor: &Actor) {
        for e in events {
            e.wait(actor);
        }
    }

    /// Block until every event settles; the first failure (in list order)
    /// is returned as an error. All events are waited either way, so the
    /// caller observes a quiescent state.
    pub fn wait_all_result(events: &[Event], actor: &Actor) -> ClResult<()> {
        Event::wait_all(events, actor);
        match Event::poll_wait_list(events) {
            WaitListStatus::Ready => Ok(()),
            WaitListStatus::Failed { code, label } => Err(ClError::EventFailed { code, label }),
            WaitListStatus::Pending => unreachable!("all events settled"),
        }
    }

    /// Non-blocking wait-list poll: the one dependency-readiness rule
    /// shared by the queue executor and the clMPI progress engine (it used
    /// to be duplicated as two near-identical loops). A list is `Pending`
    /// while any member is unsettled; once all are settled, the first
    /// failure **in list order** wins (matching
    /// [`Event::wait_all_result`]'s error choice), else `Ready`.
    pub fn poll_wait_list(events: &[Event]) -> WaitListStatus {
        if events.iter().any(|e| !e.status().is_settled()) {
            return WaitListStatus::Pending;
        }
        for e in events {
            if let Some(code) = e.error_code() {
                return WaitListStatus::Failed {
                    code,
                    label: e.label(),
                };
            }
        }
        WaitListStatus::Ready
    }

    /// Register a completion callback (`clSetEventCallback` for
    /// `CL_COMPLETE`). Runs immediately if already complete; otherwise on
    /// the thread that completes the event.
    pub fn on_complete(&self, cb: impl FnOnce(CommandStatus) + Send + 'static) {
        let mut cb = Some(Box::new(cb) as Box<dyn FnOnce(CommandStatus) + Send>);
        let settled = self.core.with(|st| {
            if st.status.is_settled() {
                Some(st.status)
            } else {
                st.callbacks.push(cb.take().expect("callback present"));
                None
            }
        });
        if let Some(status) = settled {
            // Settled before registration: OpenCL runs it immediately.
            (cb.take().expect("callback present"))(status);
        }
    }

    pub(crate) fn mark_submitted(&self, at: SimNs) {
        self.core.with(|st| {
            debug_assert_eq!(st.status, CommandStatus::Queued);
            st.status = CommandStatus::Submitted;
            st.profiling.submitted = at;
        });
    }

    pub(crate) fn mark_running(&self, at: SimNs) {
        self.core.with(|st| {
            st.status = CommandStatus::Running;
            st.profiling.started = at;
        });
    }

    /// Complete the event at virtual instant `at` (callers have already
    /// advanced to `at`). Runs callbacks outside the lock.
    pub(crate) fn complete(&self, at: SimNs) {
        let cbs = self.core.with(|st| {
            debug_assert!(!st.status.is_settled(), "double completion");
            if st.profiling.submitted == 0 {
                st.profiling.submitted = st.profiling.queued;
            }
            if st.profiling.started == 0 {
                st.profiling.started = st.profiling.submitted;
            }
            st.status = CommandStatus::Complete;
            st.profiling.completed = at;
            std::mem::take(&mut st.callbacks)
        });
        for cb in cbs {
            cb(CommandStatus::Complete);
        }
    }

    /// Terminate the event abnormally with a negative error code at
    /// virtual instant `at`. Waiters are released (observing the failure
    /// through [`Event::wait_result`] / [`Event::status`]) and callbacks
    /// run with the failed status, as `clSetEventCallback` documents.
    pub(crate) fn fail(&self, at: SimNs, code: i32) {
        debug_assert!(code < 0, "OpenCL error statuses are negative");
        let cbs = self.core.with(|st| {
            debug_assert!(!st.status.is_settled(), "double completion");
            st.status = CommandStatus::Failed(code);
            st.profiling.completed = at;
            std::mem::take(&mut st.callbacks)
        });
        for cb in cbs {
            cb(CommandStatus::Failed(code));
        }
    }
}

/// Aggregate readiness of a wait list at one instant, as reported by
/// [`Event::poll_wait_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitListStatus {
    /// Every event settled, none failed — dependents may start.
    Ready,
    /// At least one event is still unsettled.
    Pending,
    /// Every event settled and at least one failed; dependents must be
    /// poisoned with
    /// [`crate::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST`].
    Failed {
        /// The first failed event's (negative) status code.
        code: i32,
        /// The first failed event's diagnostic label.
        label: String,
    },
}

impl simtime::Completion for Event {
    /// An event is a completion: settled status maps directly, with the
    /// recorded settling timestamp. A `Pending` event offers no wake hint
    /// (its settling is driven by whoever executes the command, which
    /// notifies the clock through the event's `Monitor`).
    fn poll(&self, _now: SimNs) -> simtime::CompletionState {
        self.core.peek(|st| match st.status {
            CommandStatus::Complete => simtime::CompletionState::Complete(st.profiling.completed),
            CommandStatus::Failed(code) => {
                simtime::CompletionState::Failed(code, st.profiling.completed)
            }
            _ => simtime::CompletionState::Pending,
        })
    }
}

/// A user event (`clCreateUserEvent`): an [`Event`] completable from
/// application code. The clMPI runtime returns these from its inter-node
/// communication commands.
pub struct UserEvent {
    event: Event,
}

impl UserEvent {
    /// Create an incomplete user event on `clock`.
    pub fn new(clock: SimClock, label: impl Into<String>) -> Self {
        UserEvent {
            event: Event::new_queued(clock, label),
        }
    }

    /// The underlying event handle to hand to wait lists.
    pub fn event(&self) -> Event {
        self.event.clone()
    }

    /// Complete the event now (`clSetUserEventStatus(CL_COMPLETE)`).
    /// Fails on double completion.
    pub fn set_complete(&self, at: SimNs) -> ClResult<()> {
        if self.event.status().is_settled() {
            return Err(ClError::InvalidOperation(
                "user event already settled".into(),
            ));
        }
        self.event.complete(at);
        Ok(())
    }

    /// Terminate the event with a negative error code
    /// (`clSetUserEventStatus` with a negative execution status). Commands
    /// gated on this event are poisoned with
    /// [`crate::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST`].
    pub fn set_failed(&self, at: SimNs, code: i32) -> ClResult<()> {
        if self.event.status().is_settled() {
            return Err(ClError::InvalidOperation(
                "user event already settled".into(),
            ));
        }
        if code >= 0 {
            return Err(ClError::InvalidValue(format!(
                "event error status must be negative, got {code}"
            )));
        }
        self.event.fail(at, code);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_profiling() {
        let clock = SimClock::new();
        let a = clock.register("t");
        a.advance_ns(10);
        let e = Event::new_queued(clock.clone(), "k");
        assert_eq!(e.status(), CommandStatus::Queued);
        assert!(e.profiling().is_none());
        e.mark_submitted(12);
        assert_eq!(e.status(), CommandStatus::Submitted);
        e.mark_running(20);
        e.complete(35);
        let p = e.profiling().expect("complete");
        assert_eq!(p.queued, 10);
        assert_eq!(p.submitted, 12);
        assert_eq!(p.started, 20);
        assert_eq!(p.completed, 35);
    }

    #[test]
    fn wait_blocks_until_completion() {
        let clock = SimClock::new();
        let waiter = clock.register("w");
        let setter = clock.register("s");
        let e = Event::new_queued(clock.clone(), "x");
        let e2 = e.clone();
        let t = std::thread::spawn(move || {
            setter.advance_ns(500);
            e2.complete(setter.now_ns());
        });
        e.wait(&waiter);
        assert_eq!(waiter.now_ns(), 500);
        t.join().expect("worker thread panicked");
    }

    #[test]
    fn user_event_mimics_command_event() {
        let clock = SimClock::new();
        let a = clock.register("a");
        let ue = UserEvent::new(clock.clone(), "clmpi send");
        let handle = ue.event();
        assert!(!handle.is_complete());
        a.advance_ns(100);
        ue.set_complete(a.now_ns())
            .expect("user event completes once");
        assert!(handle.is_complete());
        assert_eq!(handle.completion_time(), Some(100));
        assert!(ue.set_complete(101).is_err(), "double completion rejected");
    }

    #[test]
    fn callbacks_run_on_completion() {
        let clock = SimClock::new();
        let fired = Arc::new(simtime::plock::Mutex::new(false));
        let e = Event::new_queued(clock, "cb");
        let f2 = fired.clone();
        e.on_complete(move |s| {
            assert_eq!(s, CommandStatus::Complete);
            *f2.lock() = true;
        });
        assert!(!*fired.lock());
        e.complete(1);
        assert!(*fired.lock());
    }

    #[test]
    fn failed_event_releases_waiters_with_error() {
        let clock = SimClock::new();
        let a = clock.register("a");
        let ue = UserEvent::new(clock.clone(), "doomed");
        let handle = ue.event();
        a.advance_ns(50);
        ue.set_failed(a.now_ns(), -42)
            .expect("user event fails once");
        assert!(handle.is_failed());
        assert_eq!(handle.error_code(), Some(-42));
        match handle.wait_result(&a) {
            Err(crate::ClError::EventFailed { code, label }) => {
                assert_eq!(code, -42);
                assert_eq!(label, "doomed");
            }
            other => panic!("expected EventFailed, got {other:?}"),
        }
        // Further settling attempts are rejected.
        assert!(ue.set_complete(60).is_err());
        assert!(ue.set_failed(60, -1).is_err());
    }

    #[test]
    fn set_failed_rejects_non_negative_codes() {
        let clock = SimClock::new();
        let ue = UserEvent::new(clock, "x");
        assert!(ue.set_failed(0, 0).is_err());
        assert!(ue.set_failed(0, 3).is_err());
        assert!(ue.set_failed(0, -3).is_ok());
    }

    #[test]
    fn callbacks_observe_failure_status() {
        let clock = SimClock::new();
        let seen = Arc::new(simtime::plock::Mutex::new(None));
        let e = Event::new_queued(clock, "cb");
        let s2 = seen.clone();
        e.on_complete(move |s| *s2.lock() = Some(s));
        e.fail(5, -7);
        assert_eq!(*seen.lock(), Some(CommandStatus::Failed(-7)));
        // Late registration also sees the failed status.
        let late = Arc::new(simtime::plock::Mutex::new(None));
        let l2 = late.clone();
        e.on_complete(move |s| *l2.lock() = Some(s));
        assert_eq!(*late.lock(), Some(CommandStatus::Failed(-7)));
    }

    #[test]
    fn wait_all_waits_for_every_event() {
        let clock = SimClock::new();
        let a = clock.register("a");
        let e1 = Event::new_queued(clock.clone(), "1");
        let e2 = Event::new_queued(clock.clone(), "2");
        e1.complete(0);
        e2.complete(0);
        Event::wait_all(&[e1, e2], &a); // returns immediately
    }

    #[test]
    fn poll_wait_list_reports_pending_then_first_failure_in_list_order() {
        let clock = SimClock::new();
        let e1 = Event::new_queued(clock.clone(), "first");
        let e2 = Event::new_queued(clock.clone(), "second");
        let list = [e1.clone(), e2.clone()];
        assert_eq!(Event::poll_wait_list(&list), WaitListStatus::Pending);
        // The later list entry fails first in time — list order still wins.
        e2.fail(5, crate::status::CL_MPI_TRANSFER_ERROR);
        assert_eq!(Event::poll_wait_list(&list), WaitListStatus::Pending);
        e1.fail(9, -7);
        assert_eq!(
            Event::poll_wait_list(&list),
            WaitListStatus::Failed {
                code: -7,
                label: "first".into()
            }
        );
        assert_eq!(Event::poll_wait_list(&[]), WaitListStatus::Ready);
    }

    #[test]
    fn event_implements_completion() {
        use simtime::{Completion, CompletionState};
        let clock = SimClock::new();
        let ok = Event::new_queued(clock.clone(), "ok");
        let bad = Event::new_queued(clock.clone(), "bad");
        assert_eq!(ok.poll(0), CompletionState::Pending);
        ok.complete(42);
        use crate::status::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST as WAIT_LIST_ERR;
        bad.fail(43, WAIT_LIST_ERR);
        assert_eq!(ok.poll(100), CompletionState::Complete(42));
        assert_eq!(bad.poll(100), CompletionState::Failed(WAIT_LIST_ERR, 43));
    }
}
