//! Event objects: the dependency mechanism of the OpenCL execution model.
//!
//! Every enqueued command is bound to an [`Event`]; commands may name
//! other events in a *wait list* and only start once all of them complete.
//! [`UserEvent`]s are completable from application (or clMPI runtime)
//! code — the paper's implementation makes inter-node communication
//! commands return user events that "mimic event objects of standard
//! OpenCL commands" (§V-A); this module is exactly that mimicry.

use std::sync::Arc;

use simtime::{Actor, Monitor, SimClock, SimNs};

use crate::{ClError, ClResult};

/// Command execution status (`CL_QUEUED` … `CL_COMPLETE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandStatus {
    /// Enqueued, not yet seen by the executor.
    Queued,
    /// Picked up by the executor, waiting on its wait list.
    Submitted,
    /// Executing on the device.
    Running,
    /// Finished; timestamps final.
    Complete,
}

/// Profiling timestamps in virtual ns (`CL_PROFILING_COMMAND_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfilingInfo {
    /// When the command was enqueued.
    pub queued: SimNs,
    /// When the executor picked it up.
    pub submitted: SimNs,
    /// When execution began (wait list satisfied).
    pub started: SimNs,
    /// When execution finished.
    pub completed: SimNs,
}

struct EventState {
    status: CommandStatus,
    profiling: ProfilingInfo,
    #[allow(clippy::type_complexity)]
    callbacks: Vec<Box<dyn FnOnce(CommandStatus) + Send>>,
    label: String,
}

/// A command's status handle. Cheap to clone; all clones observe the same
/// state (like `cl_event` handles with retain/release).
#[derive(Clone)]
pub struct Event {
    core: Arc<Monitor<EventState>>,
}

impl Event {
    pub(crate) fn new_queued(clock: SimClock, label: impl Into<String>) -> Self {
        let queued = clock.now_ns();
        Event {
            core: Arc::new(Monitor::new(
                clock,
                EventState {
                    status: CommandStatus::Queued,
                    profiling: ProfilingInfo {
                        queued,
                        ..Default::default()
                    },
                    callbacks: Vec::new(),
                    label: label.into(),
                },
            )),
        }
    }

    /// Current status.
    pub fn status(&self) -> CommandStatus {
        self.core.peek(|st| st.status)
    }

    /// True once complete.
    pub fn is_complete(&self) -> bool {
        self.status() == CommandStatus::Complete
    }

    /// Profiling timestamps; `None` until complete (as in OpenCL, where
    /// querying before completion is undefined — we make it checkable).
    pub fn profiling(&self) -> Option<ProfilingInfo> {
        self.core.peek(|st| {
            (st.status == CommandStatus::Complete).then_some(st.profiling)
        })
    }

    /// Completion instant, if complete.
    pub fn completion_time(&self) -> Option<SimNs> {
        self.profiling().map(|p| p.completed)
    }

    /// Diagnostic label ("kernel jacobi", "recv-buffer from 3", …).
    pub fn label(&self) -> String {
        self.core.peek(|st| st.label.clone())
    }

    /// Block the calling actor until the command completes
    /// (`clWaitForEvents` with a single event).
    pub fn wait(&self, actor: &Actor) {
        self.core.wait_labeled(actor, "event wait", |st| {
            (st.status == CommandStatus::Complete).then_some(())
        });
    }

    /// Block until every event in `events` completes (`clWaitForEvents`).
    pub fn wait_all(events: &[Event], actor: &Actor) {
        for e in events {
            e.wait(actor);
        }
    }

    /// Register a completion callback (`clSetEventCallback` for
    /// `CL_COMPLETE`). Runs immediately if already complete; otherwise on
    /// the thread that completes the event.
    pub fn on_complete(&self, cb: impl FnOnce(CommandStatus) + Send + 'static) {
        let mut cb = Some(Box::new(cb) as Box<dyn FnOnce(CommandStatus) + Send>);
        let deferred = self.core.with(|st| {
            if st.status == CommandStatus::Complete {
                false
            } else {
                st.callbacks.push(cb.take().expect("callback present"));
                true
            }
        });
        if !deferred {
            // Completed before registration: OpenCL runs it immediately.
            (cb.take().expect("callback present"))(CommandStatus::Complete);
        }
    }

    pub(crate) fn mark_submitted(&self, at: SimNs) {
        self.core.with(|st| {
            debug_assert_eq!(st.status, CommandStatus::Queued);
            st.status = CommandStatus::Submitted;
            st.profiling.submitted = at;
        });
    }

    pub(crate) fn mark_running(&self, at: SimNs) {
        self.core.with(|st| {
            st.status = CommandStatus::Running;
            st.profiling.started = at;
        });
    }

    /// Complete the event at virtual instant `at` (callers have already
    /// advanced to `at`). Runs callbacks outside the lock.
    pub(crate) fn complete(&self, at: SimNs) {
        let cbs = self.core.with(|st| {
            debug_assert_ne!(st.status, CommandStatus::Complete, "double completion");
            if st.profiling.submitted == 0 {
                st.profiling.submitted = st.profiling.queued;
            }
            if st.profiling.started == 0 {
                st.profiling.started = st.profiling.submitted;
            }
            st.status = CommandStatus::Complete;
            st.profiling.completed = at;
            std::mem::take(&mut st.callbacks)
        });
        for cb in cbs {
            cb(CommandStatus::Complete);
        }
    }

}

/// A user event (`clCreateUserEvent`): an [`Event`] completable from
/// application code. The clMPI runtime returns these from its inter-node
/// communication commands.
pub struct UserEvent {
    event: Event,
}

impl UserEvent {
    /// Create an incomplete user event on `clock`.
    pub fn new(clock: SimClock, label: impl Into<String>) -> Self {
        UserEvent {
            event: Event::new_queued(clock, label),
        }
    }

    /// The underlying event handle to hand to wait lists.
    pub fn event(&self) -> Event {
        self.event.clone()
    }

    /// Complete the event now (`clSetUserEventStatus(CL_COMPLETE)`).
    /// Fails on double completion.
    pub fn set_complete(&self, at: SimNs) -> ClResult<()> {
        if self.event.is_complete() {
            return Err(ClError::InvalidOperation(
                "user event already complete".into(),
            ));
        }
        self.event.complete(at);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_profiling() {
        let clock = SimClock::new();
        let a = clock.register("t");
        a.advance_ns(10);
        let e = Event::new_queued(clock.clone(), "k");
        assert_eq!(e.status(), CommandStatus::Queued);
        assert!(e.profiling().is_none());
        e.mark_submitted(12);
        assert_eq!(e.status(), CommandStatus::Submitted);
        e.mark_running(20);
        e.complete(35);
        let p = e.profiling().expect("complete");
        assert_eq!(p.queued, 10);
        assert_eq!(p.submitted, 12);
        assert_eq!(p.started, 20);
        assert_eq!(p.completed, 35);
    }

    #[test]
    fn wait_blocks_until_completion() {
        let clock = SimClock::new();
        let waiter = clock.register("w");
        let setter = clock.register("s");
        let e = Event::new_queued(clock.clone(), "x");
        let e2 = e.clone();
        let t = std::thread::spawn(move || {
            setter.advance_ns(500);
            e2.complete(setter.now_ns());
        });
        e.wait(&waiter);
        assert_eq!(waiter.now_ns(), 500);
        t.join().unwrap();
    }

    #[test]
    fn user_event_mimics_command_event() {
        let clock = SimClock::new();
        let a = clock.register("a");
        let ue = UserEvent::new(clock.clone(), "clmpi send");
        let handle = ue.event();
        assert!(!handle.is_complete());
        a.advance_ns(100);
        ue.set_complete(a.now_ns()).unwrap();
        assert!(handle.is_complete());
        assert_eq!(handle.completion_time(), Some(100));
        assert!(ue.set_complete(101).is_err(), "double completion rejected");
    }

    #[test]
    fn callbacks_run_on_completion() {
        let clock = SimClock::new();
        let fired = Arc::new(parking_lot::Mutex::new(false));
        let e = Event::new_queued(clock, "cb");
        let f2 = fired.clone();
        e.on_complete(move |s| {
            assert_eq!(s, CommandStatus::Complete);
            *f2.lock() = true;
        });
        assert!(!*fired.lock());
        e.complete(1);
        assert!(*fired.lock());
    }

    #[test]
    fn wait_all_waits_for_every_event() {
        let clock = SimClock::new();
        let a = clock.register("a");
        let e1 = Event::new_queued(clock.clone(), "1");
        let e2 = Event::new_queued(clock.clone(), "2");
        e1.complete(0);
        e2.complete(0);
        Event::wait_all(&[e1, e2], &a); // returns immediately
    }
}
