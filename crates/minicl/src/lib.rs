//! # minicl — an OpenCL-style runtime on virtual time
//!
//! The substrate the clMPI extension plugs into. It reproduces the parts
//! of the OpenCL 1.1 execution model the paper's design depends on:
//!
//! * **Contexts** own devices and resources ([`Context`]).
//! * **Command queues** are in-order; each is driven by a real executor
//!   thread that dispatches commands one at a time ([`CommandQueue`]).
//! * **Events** carry a status machine (queued → submitted → running →
//!   complete) with profiling timestamps in virtual ns, support wait
//!   lists across queues, completion callbacks, and **user events** — the
//!   vehicle the paper uses to make inter-node communication commands
//!   mimic ordinary command events ([`Event`], [`UserEvent`]).
//! * **Buffers** are device-resident byte arrays with typed views and
//!   map/unmap ([`Buffer`]); host buffers may be pinned or pageable
//!   ([`HostBuffer`]), which changes PCIe transfer rates exactly as the
//!   paper's three transfer implementations exploit.
//! * **Kernels** are Rust closures over buffers; their *cost* in device
//!   time comes from the device model ([`DeviceSpec`]), so numerics are
//!   real while timing is simulated.
//!
//! Device presets reproduce Table I: [`DeviceSpec::tesla_c2070`]
//! (Cichlid) and [`DeviceSpec::tesla_c1060`] (RICC).

mod buffer;
mod context;
mod device;
pub mod error;
mod event;
mod queue;
pub mod status;

pub use buffer::{AlignedBytes, Buffer, HostBuffer};
pub use context::{Context, Device};
pub use device::{DeviceSpec, PcieModel};
pub use error::ClError;
pub use event::{CommandStatus, Event, ProfilingInfo, UserEvent, WaitListStatus};
pub use queue::CommandQueue;
pub use status::{CL_MPI_TRANSFER_ERROR, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST};

/// Result alias for fallible runtime calls.
pub type ClResult<T> = Result<T, ClError>;
