//! Shared negative event-status codes.
//!
//! These codes used to be defined independently in `minicl::event` (−14)
//! and `clmpi` (−1100); any crate matching on the *other* crate's code had
//! to restate the literal. They now live in one place, re-exported by
//! [`crate::error`], the crate root, and `clmpi`, so every layer of the
//! stack (queue executor, progress engine, application tests) names the
//! same constants.
//!
//! OpenCL encodes abnormal command termination as a **negative** event
//! execution status; both constants here follow that convention and are
//! valid arguments to `UserEvent::set_failed`.

/// Event status of a command that failed to execute: its wait list
/// contained a failed event (OpenCL's
/// `CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST`).
pub const EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST: i32 = -14;

/// Negative event status reported when an inter-node clMPI transfer fails
/// permanently (retry budget exhausted, receive timeout, or overflow).
/// Outside OpenCL's reserved range, as the paper's extension would define
/// its own error space.
pub const CL_MPI_TRANSFER_ERROR: i32 = -1100;
