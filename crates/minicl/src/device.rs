//! Device performance models (Table I GPUs).
//!
//! Kernels compute real results on the host CPU; their *duration* in
//! virtual time comes from these models. The stencil and map workloads in
//! this workspace are memory-bandwidth bound, so the primary knob is
//! `mem_bw_bps`; the PCIe model carries the pinned/pageable/mapped rate
//! split that the paper's three transfer implementations exercise.

use simtime::SimNs;

/// PCIe / host-interface cost model of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieModel {
    /// Per-transfer latency (ns): driver + DMA engine kickoff.
    pub latency_ns: SimNs,
    /// Staged copy rate from/to **pinned** host memory (bytes/s).
    pub pinned_bps: f64,
    /// Staged copy rate from/to **pageable** host memory (bytes/s) —
    /// lower, because the driver bounce-buffers.
    pub pageable_bps: f64,
    /// Zero-copy streaming rate through a **mapped** buffer (bytes/s).
    /// On older devices (C1060) this is far below the staged rate; the
    /// asymmetry is what makes the paper's best strategy system-dependent.
    pub mapped_bps: f64,
    /// Software setup cost of the pinned/staged path per transfer (ns):
    /// staging-buffer management and synchronization.
    pub pin_setup_ns: SimNs,
    /// Map/unmap bookkeeping per transfer (ns). Much cheaper than
    /// `pin_setup_ns` — the reason mapped wins for small messages on
    /// Cichlid (paper §V-B).
    pub map_setup_ns: SimNs,
}

impl PcieModel {
    /// Staged-copy duration for `bytes` (excluding strategy setup costs).
    pub fn staged_ns(&self, bytes: usize, pinned: bool) -> SimNs {
        let rate = if pinned {
            self.pinned_bps
        } else {
            self.pageable_bps
        };
        self.latency_ns + (bytes as f64 * 1e9 / rate).round() as SimNs
    }
}

/// Static performance description of a compute device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name (Table I).
    pub name: &'static str,
    /// Device memory bandwidth (bytes/s) — governs memory-bound kernels.
    pub mem_bw_bps: f64,
    /// Peak single-precision throughput (FLOP/s) — governs compute-bound
    /// kernels.
    pub peak_flops: f64,
    /// Fixed kernel launch overhead (ns).
    pub kernel_launch_ns: SimNs,
    /// Host-interface model.
    pub pcie: PcieModel,
}

impl DeviceSpec {
    /// NVIDIA Tesla C2070 (Fermi) — the Cichlid GPU.
    pub fn tesla_c2070() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C2070",
            mem_bw_bps: 144.0e9,
            peak_flops: 1.03e12,
            kernel_launch_ns: 7_000,
            pcie: PcieModel {
                latency_ns: 8_000,
                pinned_bps: 5.8e9,
                pageable_bps: 3.2e9,
                mapped_bps: 2.6e9,
                pin_setup_ns: 60_000,
                map_setup_ns: 10_000,
            },
        }
    }

    /// NVIDIA Tesla C1060 (GT200) — the RICC GPU. Mapped (zero-copy)
    /// streaming on this generation is poor, which is why the paper's
    /// runtime picks the pinned path on RICC.
    pub fn tesla_c1060() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C1060",
            mem_bw_bps: 102.0e9,
            peak_flops: 0.622e12,
            kernel_launch_ns: 9_000,
            pcie: PcieModel {
                latency_ns: 10_000,
                pinned_bps: 5.2e9,
                pageable_bps: 2.8e9,
                mapped_bps: 0.8e9,
                // GT200-generation zero-copy needs expensive per-transfer
                // mapping bookkeeping, while recycled pinned staging is
                // cheap — the reason the paper's runtime picks the pinned
                // path on RICC even for small messages.
                pin_setup_ns: 15_000,
                map_setup_ns: 50_000,
            },
        }
    }

    /// NVIDIA A30 (Ampere) — the CXL-pod study device: PCIe Gen4 host
    /// interface, much faster staging than the Fermi/GT200 parts, so the
    /// wire (NIC or CXL pool port) dominates end-to-end transfer cost.
    pub fn a30() -> Self {
        DeviceSpec {
            name: "NVIDIA A30",
            mem_bw_bps: 933.0e9,
            peak_flops: 10.3e12,
            kernel_launch_ns: 4_000,
            pcie: PcieModel {
                latency_ns: 2_000,
                pinned_bps: 24.0e9,
                pageable_bps: 11.0e9,
                mapped_bps: 18.0e9,
                pin_setup_ns: 25_000,
                map_setup_ns: 6_000,
            },
        }
    }

    /// Duration of a memory-bound kernel that moves `bytes` through device
    /// memory (reads + writes combined).
    pub fn membound_kernel_ns(&self, bytes: usize) -> SimNs {
        self.kernel_launch_ns + (bytes as f64 * 1e9 / self.mem_bw_bps).round() as SimNs
    }

    /// Duration of a compute-bound kernel of `flops` floating operations,
    /// at `efficiency` of peak (0 < efficiency <= 1).
    pub fn compute_kernel_ns(&self, flops: f64, efficiency: f64) -> SimNs {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
        self.kernel_launch_ns + (flops * 1e9 / (self.peak_flops * efficiency)).round() as SimNs
    }

    /// Duration of a stencil-style kernel over `points` grid points that
    /// touches `bytes_per_point` of device memory per point — the model
    /// used for the Himeno Jacobi kernel (memory bound on both GPUs).
    pub fn stencil_kernel_ns(&self, points: usize, bytes_per_point: usize) -> SimNs {
        self.membound_kernel_ns(points * bytes_per_point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_ordered() {
        let fermi = DeviceSpec::tesla_c2070();
        let gt200 = DeviceSpec::tesla_c1060();
        assert!(fermi.mem_bw_bps > gt200.mem_bw_bps);
        assert!(fermi.pcie.mapped_bps > gt200.pcie.mapped_bps * 2.0);
    }

    #[test]
    fn staged_rate_pinned_beats_pageable() {
        let p = DeviceSpec::tesla_c2070().pcie;
        let n = 1 << 20;
        assert!(p.staged_ns(n, true) < p.staged_ns(n, false));
    }

    #[test]
    fn membound_kernel_scales_linearly() {
        let d = DeviceSpec::tesla_c2070();
        let t1 = d.membound_kernel_ns(1 << 20) - d.kernel_launch_ns;
        let t4 = d.membound_kernel_ns(4 << 20) - d.kernel_launch_ns;
        assert!((t4 as f64 / t1 as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn compute_kernel_efficiency_bounds() {
        let d = DeviceSpec::tesla_c1060();
        let full = d.compute_kernel_ns(1e9, 1.0);
        let half = d.compute_kernel_ns(1e9, 0.5);
        assert!(half > full);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        DeviceSpec::tesla_c2070().compute_kernel_ns(1e9, 0.0);
    }
}
