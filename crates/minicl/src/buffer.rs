//! Device and host memory objects.
//!
//! Contents are real bytes (kernels compute actual results); the backing
//! store is 8-byte aligned so `f32`/`f64` views are sound without copies.

use simtime::plock::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{ClError, ClResult};

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// A byte array with 8-byte alignment, so typed float views are valid.
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Zero-filled storage of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte view.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: the Vec<u64> owns at least `len` initialized bytes and
        // u8 has no alignment requirement.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mutable byte view.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above; we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }

    /// `f32` view; panics unless the length is a multiple of 4.
    pub fn as_f32(&self) -> &[f32] {
        assert_eq!(self.len % 4, 0, "buffer length not a multiple of 4");
        // SAFETY: storage is 8-byte aligned (Vec<u64>), every bit pattern
        // is a valid f32, and the length is scaled.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<f32>(), self.len / 4) }
    }

    /// Mutable `f32` view; panics unless the length is a multiple of 4.
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        assert_eq!(self.len % 4, 0, "buffer length not a multiple of 4");
        // SAFETY: as above; we hold &mut self.
        unsafe {
            std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<f32>(), self.len / 4)
        }
    }

    /// `f64` view; panics unless the length is a multiple of 8.
    pub fn as_f64(&self) -> &[f64] {
        assert_eq!(self.len % 8, 0, "buffer length not a multiple of 8");
        // SAFETY: as above.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<f64>(), self.len / 8) }
    }

    /// Mutable `f64` view; panics unless the length is a multiple of 8.
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        assert_eq!(self.len % 8, 0, "buffer length not a multiple of 8");
        // SAFETY: as above; we hold &mut self.
        unsafe {
            std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<f64>(), self.len / 8)
        }
    }
}

/// A device memory object (`cl_mem`). Cheap to clone (shared contents).
///
/// Consistency discipline: contents are only touched by kernels and
/// transfer commands whose ordering the event graph establishes; the inner
/// mutex makes each access atomic, not ordered — ordering is the
/// application's job, exactly as in OpenCL.
#[derive(Clone)]
pub struct Buffer {
    id: u64,
    size: usize,
    data: Arc<Mutex<AlignedBytes>>,
}

impl Buffer {
    /// Allocate a zero-filled device buffer of `size` bytes.
    pub(crate) fn alloc(size: usize) -> Self {
        Buffer {
            id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed),
            size,
            data: Arc::new(Mutex::new(AlignedBytes::zeroed(size))),
        }
    }

    /// Stable identifier (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` over an immutable view of the contents.
    pub fn read<R>(&self, f: impl FnOnce(&AlignedBytes) -> R) -> R {
        f(&self.data.lock())
    }

    /// Run `f` over a mutable view of the contents.
    pub fn write<R>(&self, f: impl FnOnce(&mut AlignedBytes) -> R) -> R {
        f(&mut self.data.lock())
    }

    /// Copy `src` into the buffer at `offset`.
    pub fn store(&self, offset: usize, src: &[u8]) -> ClResult<()> {
        self.check_range(offset, src.len())?;
        self.data.lock().as_mut_slice()[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Copy `len` bytes starting at `offset` out of the buffer.
    pub fn load(&self, offset: usize, len: usize) -> ClResult<Vec<u8>> {
        self.check_range(offset, len)?;
        Ok(self.data.lock().as_slice()[offset..offset + len].to_vec())
    }

    /// Validate an (offset, len) range against the buffer size.
    pub fn check_range(&self, offset: usize, len: usize) -> ClResult<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(ClError::InvalidValue(format!(
                "range {offset}+{len} exceeds buffer of {} bytes",
                self.size
            )));
        }
        Ok(())
    }
}

/// A host memory allocation, pinned or pageable. PCIe transfers to/from
/// pinned host memory run at the pinned rate (see
/// [`crate::PcieModel::pinned_bps`]).
#[derive(Clone)]
pub struct HostBuffer {
    pinned: bool,
    data: Arc<Mutex<AlignedBytes>>,
    size: usize,
}

impl HostBuffer {
    /// Allocate pageable host memory.
    pub fn pageable(size: usize) -> Self {
        HostBuffer {
            pinned: false,
            data: Arc::new(Mutex::new(AlignedBytes::zeroed(size))),
            size,
        }
    }

    /// Allocate pinned (page-locked) host memory.
    pub fn pinned(size: usize) -> Self {
        HostBuffer {
            pinned: true,
            data: Arc::new(Mutex::new(AlignedBytes::zeroed(size))),
            size,
        }
    }

    /// Whether this allocation is pinned.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` over an immutable view.
    pub fn read<R>(&self, f: impl FnOnce(&AlignedBytes) -> R) -> R {
        f(&self.data.lock())
    }

    /// Run `f` over a mutable view.
    pub fn write<R>(&self, f: impl FnOnce(&mut AlignedBytes) -> R) -> R {
        f(&mut self.data.lock())
    }

    /// Fill from a byte slice (must fit).
    pub fn fill_from(&self, src: &[u8]) {
        assert!(src.len() <= self.size, "host buffer overflow");
        self.data.lock().as_mut_slice()[..src.len()].copy_from_slice(src);
    }

    /// Snapshot contents as a byte vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.lock().as_slice().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_round_to_words() {
        let b = AlignedBytes::zeroed(13);
        assert_eq!(b.len(), 13);
        assert_eq!(b.as_slice().len(), 13);
        assert!(b.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn f32_view_is_inplace() {
        let mut b = AlignedBytes::zeroed(16);
        b.as_f32_mut()[2] = 3.5;
        assert_eq!(b.as_f32()[2], 3.5);
        assert_eq!(&b.as_slice()[8..12], 3.5f32.to_ne_bytes());
    }

    #[test]
    fn f64_view_is_inplace() {
        let mut b = AlignedBytes::zeroed(24);
        b.as_f64_mut()[1] = -2.25;
        assert_eq!(b.as_f64()[1], -2.25);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn misaligned_f32_view_panics() {
        AlignedBytes::zeroed(7).as_f32();
    }

    #[test]
    fn buffer_store_load_roundtrip() {
        let b = Buffer::alloc(64);
        b.store(8, &[1, 2, 3, 4]).expect("store in range");
        assert_eq!(b.load(8, 4).expect("load in range"), vec![1, 2, 3, 4]);
        assert_eq!(b.load(0, 4).expect("load in range"), vec![0; 4]);
    }

    #[test]
    fn buffer_range_checks() {
        let b = Buffer::alloc(16);
        assert!(b.store(12, &[0; 8]).is_err());
        assert!(b.load(usize::MAX, 2).is_err());
        assert!(b.check_range(16, 0).is_ok());
    }

    #[test]
    fn buffer_clone_shares_contents() {
        let a = Buffer::alloc(8);
        let b = a.clone();
        a.store(0, &[9; 8]).expect("store in range");
        assert_eq!(b.load(0, 8).expect("load in range"), vec![9; 8]);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn host_buffer_pinned_flag() {
        assert!(HostBuffer::pinned(4).is_pinned());
        assert!(!HostBuffer::pageable(4).is_pinned());
    }

    #[test]
    fn host_buffer_fill_and_snapshot() {
        let h = HostBuffer::pageable(6);
        h.fill_from(&[5, 6, 7]);
        assert_eq!(h.to_vec(), vec![5, 6, 7, 0, 0, 0]);
    }
}
