//! Contexts and devices.

use std::sync::Arc;

use simnet::{Link, LinkSpec};
use simtime::SimClock;

use crate::{Buffer, CommandQueue, DeviceSpec, UserEvent};

struct DeviceInner {
    spec: DeviceSpec,
    index: usize,
    /// Host→device PCIe direction (serialized DMA engine).
    h2d: Link,
    /// Device→host PCIe direction.
    d2h: Link,
    /// The compute engine: kernels serialize here even when issued from
    /// several command queues — one device executes one kernel at a time
    /// (the concurrency these GPUs actually offer is compute/DMA overlap,
    /// which the separate PCIe timelines already model).
    compute: Link,
    /// The pack engine: the dedicated stream the runtime's datatype
    /// pack/unpack kernels run on (TEMPI-style), serialized among
    /// themselves but overlapping application kernels. Kept separate from
    /// `compute` so only the transfer engine's actor ever reserves it —
    /// two unordered actors sharing one FIFO timeline would make the
    /// schedule depend on wall-clock interleaving.
    pack: Link,
}

/// A compute device within a context. Cheap to clone.
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Static performance description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }

    /// Index within the context.
    pub fn index(&self) -> usize {
        self.inner.index
    }

    /// The host→device PCIe timeline (for transfer reservations).
    pub fn h2d_link(&self) -> &Link {
        &self.inner.h2d
    }

    /// The device→host PCIe timeline.
    pub fn d2h_link(&self) -> &Link {
        &self.inner.d2h
    }

    /// The compute-engine timeline (kernels serialize on it).
    pub fn compute_link(&self) -> &Link {
        &self.inner.compute
    }

    /// The pack-engine timeline (runtime datatype pack/unpack kernels).
    pub fn pack_link(&self) -> &Link {
        &self.inner.pack
    }
}

struct ContextInner {
    clock: SimClock,
    devices: Vec<Device>,
}

/// An OpenCL-style context: owns devices and creates resources.
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Context {
    /// Create a context over `specs` (one [`Device`] each), sharing the
    /// given virtual clock.
    pub fn new(clock: SimClock, specs: &[DeviceSpec]) -> Self {
        assert!(!specs.is_empty(), "context needs at least one device");
        let devices = specs
            .iter()
            .enumerate()
            .map(|(index, spec)| {
                let pcie_link = LinkSpec {
                    latency_ns: spec.pcie.latency_ns,
                    bandwidth_bps: spec.pcie.pinned_bps,
                    per_msg_overhead_ns: 0,
                };
                let engine = LinkSpec {
                    latency_ns: 0,
                    bandwidth_bps: 1.0,
                    per_msg_overhead_ns: 0,
                };
                Device {
                    inner: Arc::new(DeviceInner {
                        spec: *spec,
                        index,
                        h2d: Link::new(clock.clone(), pcie_link),
                        d2h: Link::new(clock.clone(), pcie_link),
                        compute: Link::new(clock.clone(), engine),
                        pack: Link::new(clock.clone(), engine),
                    }),
                }
            })
            .collect();
        Context {
            inner: Arc::new(ContextInner { clock, devices }),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Devices in this context.
    pub fn devices(&self) -> &[Device] {
        &self.inner.devices
    }

    /// Device by index (panics out of range).
    pub fn device(&self, index: usize) -> &Device {
        &self.inner.devices[index]
    }

    /// Allocate a zero-filled device buffer (`clCreateBuffer`).
    pub fn create_buffer(&self, size: usize) -> Buffer {
        Buffer::alloc(size)
    }

    /// Create an in-order command queue on device `device_index`
    /// (`clCreateCommandQueue`). Spawns the executor thread; the calling
    /// thread must belong to a registered actor (see
    /// [`simtime::SimClock::register`]'s ordering rule).
    pub fn create_queue(&self, device_index: usize, label: impl Into<String>) -> CommandQueue {
        CommandQueue::new(
            self.inner.clock.clone(),
            self.device(device_index).clone(),
            label.into(),
        )
    }

    /// Create a user event (`clCreateUserEvent`).
    pub fn create_user_event(&self, label: impl Into<String>) -> UserEvent {
        UserEvent::new(self.inner.clock.clone(), label)
    }
}
