//! Differential suite for the sharded discrete-event scheduler.
//!
//! The same [`SimActor`] machines run under both execution modes —
//! [`ExecMode::Threads`] (one OS thread per machine, the historical
//! oracle) and [`ExecMode::Events`] (sharded worker pool) — and every
//! virtual timestamp they observe must be identical. The workloads
//! exercise the full machine contract: alarm-driven wake-ups, channel
//! notification chains across shards, same-instant hand-offs, and
//! retirement.

use std::sync::Arc;

use simtime::{
    on_pool_worker, Actor, ExecMode, MachineStep, Monitor, SimActor, SimChannel, SimClock, SimNs,
    XorShift64,
};

/// One receipt: (node id, virtual instant, token value).
type Log = Arc<Monitor<Vec<(u64, SimNs, u64)>>>;

enum RingState {
    Waiting,
    Holding { token: u64, release_at: SimNs },
}

/// A ring node: receives the token, holds it for a seeded virtual delay,
/// forwards it to the next node. Termination is by token count, so every
/// node knows locally when it is done.
struct RingNode {
    id: u64,
    hops: u64,
    expected: u64,
    received: u64,
    rx: SimChannel<u64>,
    tx: SimChannel<u64>,
    rng: XorShift64,
    state: RingState,
    log: Log,
    done: Arc<Monitor<u64>>,
}

impl SimActor for RingNode {
    fn wait_label(&self) -> &'static str {
        "ring node"
    }

    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        loop {
            match self.state {
                RingState::Waiting => {
                    if self.received == self.expected {
                        self.done.with(|d| *d += 1);
                        return MachineStep::Done;
                    }
                    match self.rx.try_recv() {
                        Some(token) => {
                            self.log.with(|v| v.push((self.id, now, token)));
                            self.received += 1;
                            actor.clock().count_events(1);
                            // Delay 0 is legal: the token is forwarded
                            // within this same poll pass.
                            let delay = self.rng.gen_range_u64(0, 500_000);
                            self.state = RingState::Holding {
                                token,
                                release_at: now + delay,
                            };
                        }
                        None => return MachineStep::Pending(None),
                    }
                }
                RingState::Holding { token, release_at } => {
                    if now < release_at {
                        return MachineStep::Pending(Some(release_at));
                    }
                    if token + 1 < self.hops {
                        self.tx.send(token + 1);
                    }
                    self.state = RingState::Waiting;
                }
            }
        }
    }
}

/// Run one seeded token ring of `world` machines and return its
/// fingerprint: the receipt log (canonical token order), the final
/// virtual time, and the machine-transition count.
fn run_ring(mode: ExecMode, world: u64, seed: u64) -> (Vec<(u64, SimNs, u64)>, SimNs, u64) {
    let laps = 4u64;
    let hops = world * laps;
    let clock = SimClock::with_mode(mode);
    let main = clock.register("main");
    let log: Log = Arc::new(Monitor::new(clock.clone(), Vec::new()));
    let done = Arc::new(Monitor::new(clock.clone(), 0u64));
    let chans: Vec<SimChannel<u64>> = (0..world).map(|_| SimChannel::new(clock.clone())).collect();
    // Inject the token before any machine exists, so node 0's first poll
    // already sees it — no special casing in the machine.
    chans[0].send(0);
    let handles: Vec<_> = (0..world)
        .map(|id| {
            let node = RingNode {
                id,
                hops,
                expected: if id < hops {
                    (hops - id).div_ceil(world)
                } else {
                    0
                },
                received: 0,
                rx: chans[id as usize].clone(),
                tx: chans[((id + 1) % world) as usize].clone(),
                rng: XorShift64::new(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                state: RingState::Waiting,
                log: log.clone(),
                done: done.clone(),
            };
            clock.spawn_machine(id, format!("ring{id}"), Box::new(node))
        })
        .collect();
    done.wait(&main, |d| (*d == world).then_some(()));
    drop(main);
    for h in handles {
        h.reap();
    }
    let mut receipts = log.peek(|v| v.clone());
    receipts.sort_by_key(|&(_, _, token)| token);
    (receipts, clock.now_ns(), clock.events())
}

#[test]
fn seeded_ring_worlds_identical_across_modes() {
    for world in [2u64, 3, 5, 8, 13] {
        for seed in 0..16u64 {
            let (log_t, now_t, ev_t) = run_ring(ExecMode::Threads, world, seed);
            let (log_e, now_e, ev_e) = run_ring(ExecMode::Events, world, seed);
            assert_eq!(
                log_t, log_e,
                "receipt logs diverge at world={world} seed={seed}"
            );
            assert_eq!(
                now_t, now_e,
                "elapsed diverges at world={world} seed={seed}"
            );
            assert_eq!(
                ev_t, ev_e,
                "event counts diverge at world={world} seed={seed}"
            );
            assert_eq!(log_t.len() as u64, world * 4, "every token was received");
        }
    }
}

#[test]
fn ring_is_deterministic_within_event_mode() {
    let a = run_ring(ExecMode::Events, 5, 7);
    let b = run_ring(ExecMode::Events, 5, 7);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// Alarm-only machine: ticks `remaining` times, `period` apart, recording
/// each tick instant.
struct Ticker {
    id: u64,
    period: SimNs,
    remaining: u32,
    next: SimNs,
    log: Log,
    done: Arc<Monitor<u64>>,
}

impl SimActor for Ticker {
    fn wait_label(&self) -> &'static str {
        "ticker"
    }

    fn poll(&mut self, now: SimNs, _actor: &Actor) -> MachineStep {
        loop {
            if self.remaining == 0 {
                self.done.with(|d| *d += 1);
                return MachineStep::Done;
            }
            if now < self.next {
                return MachineStep::Pending(Some(self.next));
            }
            self.log.with(|v| v.push((self.id, now, 0)));
            self.remaining -= 1;
            self.next = now + self.period;
        }
    }
}

fn run_tickers(mode: ExecMode, world: u64) -> (Vec<(u64, SimNs, u64)>, SimNs) {
    let ticks = 5u32;
    let clock = SimClock::with_mode(mode);
    let main = clock.register("main");
    let log: Log = Arc::new(Monitor::new(clock.clone(), Vec::new()));
    let done = Arc::new(Monitor::new(clock.clone(), 0u64));
    let handles: Vec<_> = (0..world)
        .map(|id| {
            let t = Ticker {
                id,
                period: (id + 1) * 1_000,
                remaining: ticks,
                next: 0,
                log: log.clone(),
                done: done.clone(),
            };
            clock.spawn_machine(id, format!("tick{id}"), Box::new(t))
        })
        .collect();
    done.wait(&main, |d| (*d == world).then_some(()));
    drop(main);
    for h in handles {
        h.reap();
    }
    let mut l = log.peek(|v| v.clone());
    l.sort();
    (l, clock.now_ns())
}

#[test]
fn concurrent_tickers_overlap_not_serialize() {
    for world in [2u64, 3, 5, 8, 13] {
        let (log_t, now_t) = run_tickers(ExecMode::Threads, world);
        let (log_e, now_e) = run_tickers(ExecMode::Events, world);
        assert_eq!(log_t, log_e, "tick logs diverge at world={world}");
        assert_eq!(now_t, now_e);
        // Tickers overlap: the makespan is the slowest ticker's last tick
        // (4 periods after its first at t=0), not the sum of all periods.
        assert_eq!(now_t, world * 1_000 * 4);
    }
}

/// A machine that reports which execution context it runs in.
struct ContextProbe {
    out: Arc<Monitor<Option<bool>>>,
}

impl SimActor for ContextProbe {
    fn wait_label(&self) -> &'static str {
        "probe"
    }

    fn poll(&mut self, _now: SimNs, _actor: &Actor) -> MachineStep {
        self.out.with(|o| *o = Some(on_pool_worker()));
        MachineStep::Done
    }
}

#[test]
fn pool_worker_flag_matches_mode() {
    for (mode, expect) in [(ExecMode::Threads, false), (ExecMode::Events, true)] {
        let clock = SimClock::with_mode(mode);
        let main = clock.register("main");
        let out = Arc::new(Monitor::new(clock.clone(), None));
        let h = clock.spawn_machine(0, "probe", Box::new(ContextProbe { out: out.clone() }));
        out.wait(&main, |o| *o);
        assert_eq!(out.peek(|o| *o), Some(expect), "mode {mode:?}");
        assert!(!on_pool_worker(), "the main thread is never a pool worker");
        drop(main);
        h.reap();
    }
}

/// A machine that parks forever with no wake hint.
struct Stuck;

impl SimActor for Stuck {
    fn wait_label(&self) -> &'static str {
        "stuck machine"
    }

    fn poll(&mut self, _now: SimNs, _actor: &Actor) -> MachineStep {
        MachineStep::Pending(None)
    }
}

#[test]
fn event_mode_deadlock_report_names_shards() {
    use std::sync::Mutex as StdMutex;
    // The deadlock panic fires on whichever actor blocks last (the main
    // test actor or the shard worker), so capture the message through a
    // panic hook instead of relying on which thread unwinds with it.
    static CAPTURED: StdMutex<Option<String>> = StdMutex::new(None);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.to_string();
        if msg.contains("simtime: deadlock") {
            *CAPTURED.lock().unwrap() = Some(msg);
        } else {
            prev(info);
        }
    }));
    let result = std::panic::catch_unwind(|| {
        let clock = SimClock::with_mode(ExecMode::Events);
        let main = clock.register("main");
        let _h = clock.spawn_machine(3, "stuck", Box::new(Stuck));
        // Never satisfied: with the machine parked hint-less, nothing can
        // advance the clock — a deadlock by construction.
        main.wait_until(|| -> Option<()> { None })
    });
    let _ = std::panic::take_hook();
    assert!(result.is_err(), "the deadlock must panic");
    // The worker may take a moment to observe the poison and unwind.
    let report = {
        let mut tries = 0;
        loop {
            if let Some(r) = CAPTURED.lock().unwrap().clone() {
                break r;
            }
            tries += 1;
            assert!(tries < 500, "deadlock report never captured");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    };
    assert!(
        report.contains("shard "),
        "event-mode report lists per-shard state:\n{report}"
    );
    assert!(
        report.contains("stuck"),
        "report names the parked machine:\n{report}"
    );
}

#[test]
fn machines_spread_across_shards_by_hint() {
    // 16 tickers with distinct hints across the default 8 shards: all
    // complete and retire even when several share one worker.
    let (log, _) = run_tickers(ExecMode::Events, 16);
    assert_eq!(log.len(), 16 * 5);
}
