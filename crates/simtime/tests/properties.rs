//! Property-based tests of the virtual-clock invariants.

use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

use simtime::{SimBarrier, SimClock};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single actor's advances always sum exactly.
    #[test]
    fn serial_advances_sum_exactly(durations in proptest::collection::vec(0u64..1_000_000, 1..50)) {
        let clock = SimClock::new();
        let a = clock.register("solo");
        let mut expect = 0u64;
        for d in durations {
            a.advance_ns(d);
            expect += d;
            prop_assert_eq!(a.now_ns(), expect);
        }
    }

    /// N actors advancing concurrently finish at exactly their own sums,
    /// and the clock ends at the maximum — never the total.
    #[test]
    fn concurrent_advances_overlap_to_max(
        plans in proptest::collection::vec(
            proptest::collection::vec(1u64..100_000, 1..10),
            2..6,
        )
    ) {
        let clock = SimClock::new();
        let actors: Vec<_> = (0..plans.len())
            .map(|i| clock.register(format!("w{i}")))
            .collect();
        let handles: Vec<_> = actors
            .into_iter()
            .zip(plans.clone())
            .map(|(a, plan)| {
                thread::spawn(move || {
                    for d in plan {
                        a.advance_ns(d);
                    }
                    a.now_ns()
                })
            })
            .collect();
        let ends: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let sums: Vec<u64> = plans.iter().map(|p| p.iter().sum()).collect();
        prop_assert_eq!(&ends, &sums);
        prop_assert_eq!(clock.now_ns(), *sums.iter().max().unwrap());
    }

    /// Clock time is monotone across arbitrary alarm/advance interleaving.
    #[test]
    fn alarms_never_move_clock_backwards(
        alarms in proptest::collection::vec(0u64..500_000, 0..20),
        steps in proptest::collection::vec(1u64..100_000, 1..20),
    ) {
        let clock = SimClock::new();
        let a = clock.register("stepper");
        for t in alarms {
            clock.schedule_alarm(t);
        }
        let mut last = 0;
        for d in steps {
            a.advance_ns(d);
            let now = a.now_ns();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Barriers align every participant to at least the latest arrival,
    /// for arbitrary per-actor workloads, repeatedly.
    #[test]
    fn barrier_rounds_align(
        rounds in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, 3),
            1..6,
        )
    ) {
        let clock = SimClock::new();
        let bar = Arc::new(SimBarrier::new(clock.clone(), 3));
        let actors: Vec<_> = (0..3).map(|i| clock.register(format!("p{i}"))).collect();
        let rounds = Arc::new(rounds);
        let handles: Vec<_> = actors
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let bar = bar.clone();
                let rounds = rounds.clone();
                thread::spawn(move || {
                    let mut outs = Vec::new();
                    for r in rounds.iter() {
                        a.advance_ns(r[i]);
                        bar.wait(&a);
                        outs.push(a.now_ns());
                    }
                    outs
                })
            })
            .collect();
        let outs: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut floor = 0u64;
        for (ri, r) in rounds.iter().enumerate() {
            floor += *r.iter().max().unwrap();
            for out in &outs {
                // Everyone leaves round ri at >= the slowest arrival so far
                // (floor is exact because rounds synchronize).
                prop_assert!(out[ri] >= floor.min(out[ri]));
                prop_assert!(out[ri] <= floor, "no one leaves after the round bound");
            }
            let times: Vec<u64> = outs.iter().map(|o| o[ri]).collect();
            prop_assert_eq!(times[0], floor);
            prop_assert!(times.iter().all(|&t| t == times[0]), "aligned exit");
        }
    }

    /// Message passing via notify: a receiver observes each token at the
    /// sender's virtual send time, never later than the next send.
    #[test]
    fn token_stream_preserves_timestamps(gaps in proptest::collection::vec(1u64..10_000, 1..30)) {
        let clock = SimClock::new();
        let slot: Arc<parking_lot::Mutex<Option<u64>>> = Arc::new(parking_lot::Mutex::new(None));
        let s = clock.register("send");
        let r = clock.register("recv");
        let n = gaps.len();
        let s_slot = slot.clone();
        let sender = thread::spawn(move || {
            for g in gaps {
                s.advance_ns(g);
                // one-slot channel: wait for it to be empty
                s.wait_until(|| s_slot.lock().is_none().then_some(()));
                *s_slot.lock() = Some(s.now_ns());
                s.clock().notify();
            }
        });
        let mut last = 0u64;
        for _ in 0..n {
            let sent_at = r.wait_until(|| slot.lock().take());
            r.clock().notify();
            prop_assert!(sent_at >= last);
            prop_assert!(r.now_ns() >= sent_at);
            last = sent_at;
        }
        sender.join().unwrap();
    }
}
