//! Property-style tests of the virtual-clock invariants.
//!
//! Inputs are generated from a seeded [`XorShift64`] loop (many cases per
//! test), so each test is a deterministic, dependency-free property check:
//! the case number doubles as the replay seed.

use std::sync::Arc;
use std::thread;

use simtime::plock::Mutex;
use simtime::{SimBarrier, SimClock, XorShift64};

/// A single actor's advances always sum exactly.
#[test]
fn serial_advances_sum_exactly() {
    for case in 0..48u64 {
        let mut rng = XorShift64::new(0x5E41_0000 + case);
        let durations: Vec<u64> = (0..rng.gen_range_usize(1, 50))
            .map(|_| rng.gen_range_u64(0, 1_000_000))
            .collect();
        let clock = SimClock::new();
        let a = clock.register("solo");
        let mut expect = 0u64;
        for d in durations {
            a.advance_ns(d);
            expect += d;
            assert_eq!(a.now_ns(), expect, "case {case}");
        }
    }
}

/// N actors advancing concurrently finish at exactly their own sums, and
/// the clock ends at the maximum — never the total.
#[test]
fn concurrent_advances_overlap_to_max() {
    for case in 0..24u64 {
        let mut rng = XorShift64::new(0xC0_0000 + case);
        let plans: Vec<Vec<u64>> = (0..rng.gen_range_usize(2, 6))
            .map(|_| {
                (0..rng.gen_range_usize(1, 10))
                    .map(|_| rng.gen_range_u64(1, 100_000))
                    .collect()
            })
            .collect();
        let clock = SimClock::new();
        let actors: Vec<_> = (0..plans.len())
            .map(|i| clock.register(format!("w{i}")))
            .collect();
        let handles: Vec<_> = actors
            .into_iter()
            .zip(plans.clone())
            .map(|(a, plan)| {
                thread::spawn(move || {
                    for d in plan {
                        a.advance_ns(d);
                    }
                    a.now_ns()
                })
            })
            .collect();
        let ends: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let sums: Vec<u64> = plans.iter().map(|p| p.iter().sum()).collect();
        assert_eq!(ends, sums, "case {case}");
        assert_eq!(clock.now_ns(), *sums.iter().max().unwrap(), "case {case}");
    }
}

/// Clock time is monotone across arbitrary alarm/advance interleaving.
#[test]
fn alarms_never_move_clock_backwards() {
    for case in 0..48u64 {
        let mut rng = XorShift64::new(0xA1A2_0000 + case);
        let alarms: Vec<u64> = (0..rng.gen_range_usize(0, 20))
            .map(|_| rng.gen_range_u64(0, 500_000))
            .collect();
        let steps: Vec<u64> = (0..rng.gen_range_usize(1, 20))
            .map(|_| rng.gen_range_u64(1, 100_000))
            .collect();
        let clock = SimClock::new();
        let a = clock.register("stepper");
        for t in alarms {
            clock.schedule_alarm(t);
        }
        let mut last = 0;
        for d in steps {
            a.advance_ns(d);
            let now = a.now_ns();
            assert!(now >= last, "case {case}");
            last = now;
        }
    }
}

/// Barriers align every participant to exactly the latest arrival, for
/// arbitrary per-actor workloads, repeatedly.
#[test]
fn barrier_rounds_align() {
    for case in 0..16u64 {
        let mut rng = XorShift64::new(0xBA44_0000 + case);
        let rounds: Vec<Vec<u64>> = (0..rng.gen_range_usize(1, 6))
            .map(|_| (0..3).map(|_| rng.gen_range_u64(1, 50_000)).collect())
            .collect();
        let clock = SimClock::new();
        let bar = Arc::new(SimBarrier::new(clock.clone(), 3));
        let actors: Vec<_> = (0..3).map(|i| clock.register(format!("p{i}"))).collect();
        let rounds = Arc::new(rounds);
        let handles: Vec<_> = actors
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let bar = bar.clone();
                let rounds = rounds.clone();
                thread::spawn(move || {
                    let mut outs = Vec::new();
                    for r in rounds.iter() {
                        a.advance_ns(r[i]);
                        bar.wait(&a);
                        outs.push(a.now_ns());
                    }
                    outs
                })
            })
            .collect();
        let outs: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut floor = 0u64;
        for (ri, r) in rounds.iter().enumerate() {
            floor += *r.iter().max().unwrap();
            for out in &outs {
                assert!(
                    out[ri] <= floor,
                    "case {case}: no one leaves after the bound"
                );
            }
            let times: Vec<u64> = outs.iter().map(|o| o[ri]).collect();
            assert_eq!(times[0], floor, "case {case}");
            assert!(
                times.iter().all(|&t| t == times[0]),
                "case {case}: aligned exit"
            );
        }
    }
}

/// Message passing via notify: a receiver observes each token at the
/// sender's virtual send time, never later than the next send.
#[test]
fn token_stream_preserves_timestamps() {
    for case in 0..24u64 {
        let mut rng = XorShift64::new(0x707E_0000 + case);
        let gaps: Vec<u64> = (0..rng.gen_range_usize(1, 30))
            .map(|_| rng.gen_range_u64(1, 10_000))
            .collect();
        let clock = SimClock::new();
        let slot: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let s = clock.register("send");
        let r = clock.register("recv");
        let n = gaps.len();
        let s_slot = slot.clone();
        let sender = thread::spawn(move || {
            for g in gaps {
                s.advance_ns(g);
                // one-slot channel: wait for it to be empty
                s.wait_until(|| s_slot.lock().is_none().then_some(()));
                *s_slot.lock() = Some(s.now_ns());
                s.clock().notify();
            }
        });
        let mut last = 0u64;
        for _ in 0..n {
            let sent_at = r.wait_until(|| slot.lock().take());
            r.clock().notify();
            assert!(sent_at >= last, "case {case}");
            assert!(r.now_ns() >= sent_at, "case {case}");
            last = sent_at;
        }
        sender.join().unwrap();
    }
}
