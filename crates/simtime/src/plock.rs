//! Thin, dependency-free locking primitives over `std::sync`.
//!
//! The workspace originally used `parking_lot`, whose `lock()` returns the
//! guard directly and whose `Condvar::wait` re-acquires through a `&mut`
//! guard. These wrappers keep that ergonomic surface on top of
//! `std::sync`, so the whole tree builds with zero external crates.
//! Poisoning is deliberately swallowed (`into_inner`): the virtual clock
//! has its own poison protocol ([`crate::SimClock::is_poisoned`]) and a
//! secondary panic from a poisoned std lock would only obscure the
//! original failure.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion with a `parking_lot`-style `lock()` (no `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly. A lock poisoned by
    /// a panicking holder is recovered, not propagated.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking; `None` if held elsewhere.
    /// A lock poisoned by a panicking holder is recovered, as in
    /// [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it out
/// and back while the caller keeps a `&mut` borrow — mirroring
/// `parking_lot`'s wait-through-reference API.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable whose `wait` takes the guard by `&mut`, like
/// `parking_lot`.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded lock and block until notified; the
    /// lock is re-acquired (through the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_guards_mutation() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_through_reference() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().expect("worker thread panicked");
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "value survives a panicking holder");
    }
}
