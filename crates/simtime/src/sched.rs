//! The sharded discrete-event scheduler: resumable actor state machines.
//!
//! ### Two execution modes, one machine contract
//!
//! Long-lived *service* actors (the clMPI progress engine, the OpenCL
//! queue executors) used to each own an OS thread parked in one big
//! predicate wait. That is faithful but tops out at a few hundred actors:
//! every clock notification wakes every thread, and a 1,024-rank world
//! needs thousands of threads doing nothing but re-evaluating predicates.
//!
//! This module turns those actors into **resumable state machines**: a
//! [`SimActor`] exposes an explicit [`SimActor::poll`]/[`SimActor::on_wake`]
//! step that runs at a frozen virtual instant and *parks* with an optional
//! wake hint instead of blocking. [`SimClock::spawn_machine`] then places
//! the machine according to the clock's [`ExecMode`]:
//!
//! * [`ExecMode::Threads`] — the **oracle**: one OS thread per machine,
//!   driven by `run_on_thread`. This is byte-for-byte the historical
//!   thread-per-actor semantics (the machine's whole life happens inside
//!   one labeled predicate wait).
//! * [`ExecMode::Events`] — the **event core**: machines are distributed
//!   over a fixed set of shards (`hint % SIM_SHARDS`), and each shard is
//!   served by a single worker thread registered as one clock actor. The
//!   worker polls every resident machine at each frozen instant; between
//!   instants it is one blocked actor, so the conservative-advance
//!   invariant (`runnable`/`pending_wakes`/`recheck_pending` bookkeeping,
//!   alarms, deadlock detection) is untouched.
//!
//! Because the *same machine code* runs under both modes, the virtual
//! timings and observability fingerprints must be identical — the
//! differential suite (`tests/scheduler.rs` and the clMPI world-level
//! matrix) enforces exactly that.
//!
//! ### The sharding rule
//!
//! A machine's shard is `hint % shards` where the hint is chosen by the
//! spawner (the clMPI runtime uses the MPI rank; minicl hashes the queue
//! label). Shard assignment affects only *which worker thread* polls a
//! machine, never the virtual instants at which it progresses: machines
//! communicate exclusively through clock-notifying monitors, and every
//! poll pass runs at a frozen instant, so the fixpoint the shard reaches
//! is the same one the thread-per-actor oracle reaches.

use std::cell::Cell;
use std::thread::JoinHandle;

use crate::clock::{Actor, SimClock};
use crate::plock::Mutex;
use crate::SimNs;

/// Verdict of one [`SimActor::poll`]/[`SimActor::on_wake`] step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStep {
    /// The machine cannot progress further at this instant. `Some(t)`
    /// requests a wake-up at the strictly-future instant `t` (scheduled
    /// as a thread-less clock alarm); `None` relies on cross-actor
    /// notifications alone. A machine that could settle now must keep
    /// stepping internally instead of parking.
    Pending(Option<SimNs>),
    /// The machine finished; the scheduler retires it.
    Done,
}

/// A resumable actor state machine, executed by [`SimClock::spawn_machine`].
///
/// `poll` runs at a frozen virtual instant and must never block: the
/// machine advances its internal state as far as it can (to a fixpoint)
/// and then parks. All cross-machine communication goes through the
/// clock-notifying primitives in [`crate::sync`], which is what guarantees
/// a parked machine is re-polled whenever anything it may wait on changes.
pub trait SimActor: Send {
    /// Label shown in deadlock diagnostics while the machine is parked.
    fn wait_label(&self) -> &'static str;

    /// Advance as far as possible at virtual instant `now`. `actor` is the
    /// executing worker's clock actor: machines may use it for non-blocking
    /// calls but must never park or sleep it.
    fn poll(&mut self, now: SimNs, actor: &Actor) -> MachineStep;

    /// Called instead of [`SimActor::poll`] when a wake hint the machine
    /// asked for has come due. The default forwards to `poll`; machines
    /// with a cheaper timer-expiry path may override it.
    fn on_wake(&mut self, now: SimNs, actor: &Actor) -> MachineStep {
        self.poll(now, actor)
    }
}

/// How a [`SimClock`] executes spawned machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One OS thread per machine (the historical model; differential
    /// oracle for the event core).
    Threads,
    /// Sharded worker pool over per-shard machine queues.
    Events,
}

impl ExecMode {
    /// Read the mode from `SIM_EXEC_MODE` (`threads` \[default\] or
    /// `events`). Unknown values panic: a typo must not silently fall
    /// back to the oracle and void a scale run.
    pub fn from_env() -> Self {
        match std::env::var("SIM_EXEC_MODE") {
            Ok(v) if v == "events" || v == "event" => ExecMode::Events,
            Ok(v) if v == "threads" || v == "thread" || v.is_empty() => ExecMode::Threads,
            Ok(v) => panic!("SIM_EXEC_MODE={v:?}: expected \"threads\" or \"events\""),
            Err(_) => ExecMode::Threads,
        }
    }
}

/// Default shard count for [`ExecMode::Events`], overridable via
/// `SIM_SHARDS`. Fixed (not host-derived) so two hosts running the same
/// scenario use the same machine placement.
const DEFAULT_SHARDS: usize = 8;

/// Number of shards for a new pool: `SIM_SHARDS` or [`DEFAULT_SHARDS`].
pub(crate) fn shard_count_from_env() -> usize {
    match std::env::var("SIM_SHARDS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| panic!("SIM_SHARDS={v:?}: expected a positive integer")),
        Err(_) => DEFAULT_SHARDS,
    }
}

std::thread_local! {
    /// Set for the lifetime of a shard worker thread. Lets drop paths that
    /// must not block the scheduler (e.g. the clMPI runtime's self-drain
    /// guard) recognize they are running *on* the pool.
    static ON_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is an event-mode shard worker.
pub fn on_pool_worker() -> bool {
    ON_POOL_WORKER.with(|f| f.get())
}

/// One spawned machine plus its runner-side alarm bookkeeping.
pub(crate) struct Slot {
    pub(crate) label: String,
    /// Wake hints already scheduled as clock alarms, so repeated parks at
    /// the same target do not flood the alarm heap.
    pub(crate) alarms: Vec<SimNs>,
    body: Box<dyn SimActor>,
}

impl Slot {
    pub(crate) fn new(label: String, body: Box<dyn SimActor>) -> Self {
        Slot {
            label,
            alarms: Vec::new(),
            body,
        }
    }
}

/// Drive one machine at the frozen instant `now`. Returns `true` when the
/// machine finished. Shared verbatim between the thread-mode runner and
/// the shard workers — this function *is* the mode-equivalence argument.
fn step_slot(slot: &mut Slot, now: SimNs, actor: &Actor, clock: &SimClock) -> bool {
    let due = slot.alarms.iter().any(|&t| t <= now);
    slot.alarms.retain(|&t| t > now);
    let step = if due {
        slot.body.on_wake(now, actor)
    } else {
        slot.body.poll(now, actor)
    };
    match step {
        MachineStep::Done => true,
        MachineStep::Pending(hint) => {
            if let Some(t) = hint {
                debug_assert!(t > now, "machines must progress, not park, when due");
                if t > now && !slot.alarms.contains(&t) {
                    clock.schedule_alarm(t);
                    slot.alarms.push(t);
                }
            }
            false
        }
    }
}

/// Thread-mode runner: the machine's whole life inside one predicate
/// wait, exactly like the hand-written service loops it replaces.
pub(crate) fn run_on_thread(actor: Actor, body: Box<dyn SimActor>) {
    let clock = actor.clock().clone();
    let label = body.wait_label();
    let mut slot = Slot::new(String::new(), body);
    actor.wait_until_labeled(label, || {
        let now = clock.now_ns();
        step_slot(&mut slot, now, &actor, &clock).then_some(())
    });
}

/// State of one shard: machines waiting to be adopted plus machines
/// resident on the worker. Guarded by its own mutex so spawners never
/// contend on the clock lock, and so the deadlock reporter can inspect
/// shard queues (via `try_lock`) while holding the clock lock.
#[derive(Default)]
pub(crate) struct ShardState {
    /// Machines handed to the shard, not yet polled.
    pub(crate) incoming: Vec<Slot>,
    /// Machines the worker is actively polling.
    pub(crate) resident: Vec<Slot>,
    /// Whether a worker thread currently owns this shard. Workers retire
    /// when their shard drains; the flag makes the next spawn revive one.
    pub(crate) running: bool,
}

/// The event-mode worker pool: a fixed array of shards. Held by the clock
/// (`ClockInner`), but deliberately clock-free itself — shard workers
/// reach it through their own `SimClock` clones.
pub(crate) struct SchedPool {
    pub(crate) shards: Vec<Mutex<ShardState>>,
}

impl SchedPool {
    pub(crate) fn new(shards: usize) -> Self {
        SchedPool {
            shards: (0..shards)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
        }
    }
}

/// The shard worker loop: one registered clock actor serving every
/// machine of one shard. Each predicate evaluation is one frozen-instant
/// pass over the resident machines; between passes the worker is a single
/// blocked actor whose scheduled alarms are eligible to drive the clock.
/// The worker retires (clearing `running`) once the shard drains.
pub(crate) fn shard_worker(actor: Actor, clock: SimClock, shard: usize) {
    ON_POOL_WORKER.with(|f| f.set(true));
    actor.wait_until_labeled("sched shard", || {
        let mut st = clock.shard(shard).lock();
        let now = clock.now_ns();
        // Adopt machines spawned since the last pass. They are polled at
        // this very instant: the spawner is still runnable, so the clock
        // cannot have advanced past the spawn instant.
        let mut newly = std::mem::take(&mut st.incoming);
        st.resident.append(&mut newly);
        let mut i = 0;
        while i < st.resident.len() {
            if step_slot(&mut st.resident[i], now, &actor, &clock) {
                st.resident.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Machines progressing mid-pass notify the clock themselves
        // (monitor mutations bump `gen`), which makes the surrounding
        // `wait_until` re-evaluate this predicate — that re-pass, not an
        // inner loop, is what drives same-instant cross-machine chains,
        // exactly as notify does for separate threads in oracle mode.
        if st.resident.is_empty() && st.incoming.is_empty() {
            st.running = false;
            return Some(());
        }
        None
    });
}

/// Handle to a spawned machine: how to reap it and how to recognize its
/// executing thread. In event mode there is nothing to join — the machine
/// retires inside its shard worker when it reports [`MachineStep::Done`].
pub struct MachineHandle {
    inner: HandleInner,
}

enum HandleInner {
    Thread {
        join: Option<JoinHandle<()>>,
        id: std::thread::ThreadId,
    },
    Event,
}

impl MachineHandle {
    pub(crate) fn thread(join: JoinHandle<()>) -> Self {
        let id = join.thread().id();
        MachineHandle {
            inner: HandleInner::Thread {
                join: Some(join),
                id,
            },
        }
    }

    pub(crate) fn event() -> Self {
        MachineHandle {
            inner: HandleInner::Event,
        }
    }

    /// True when called from the thread that executes this machine: its
    /// dedicated thread in thread mode, any pool worker in event mode
    /// (machines share workers, so per-machine attribution is
    /// impossible — and drop paths only need "am I on the scheduler?").
    pub fn on_worker_thread(&self) -> bool {
        match &self.inner {
            HandleInner::Thread { id, .. } => std::thread::current().id() == *id,
            HandleInner::Event => on_pool_worker(),
        }
    }

    /// Reap the machine's thread, if it has one and the caller is neither
    /// that thread nor panicking. Event-mode machines retire on their own.
    pub fn reap(mut self) {
        if let HandleInner::Thread { join, id } = &mut self.inner {
            if std::thread::current().id() != *id && !std::thread::panicking() {
                if let Some(h) = join.take() {
                    let _ = h.join();
                }
            }
        }
    }
}
