//! The shared completion abstraction of the progress-engine design.
//!
//! Every layer of the workspace has objects that "finish later in virtual
//! time": minimpi requests, minicl events, clmpi chunked transfers. A
//! progress engine that polls them needs one common, **non-blocking**
//! view of their lifecycle — that view is [`Completion`]. Implementations
//! exist in `minicl` (for `Event`) and `minimpi` (for `Request`); the
//! clmpi engine registers state machines built from them.
//!
//! The contract mirrors the clock's own wake-up rules:
//!
//! * [`Completion::poll`] must never block and must never advance the
//!   clock; it may consult shared state (`Monitor::peek`/`try_now`).
//! * A `Pending` result must be accompanied by *some* future wake-up: an
//!   alarm already scheduled (e.g. a message's arrival), or a state
//!   mutation that will go through [`crate::Monitor::with`] and therefore
//!   [`crate::SimClock::notify`]. [`Completion::wake_hint`] exposes the
//!   known instant when there is one, so pollers can park on an alarm
//!   instead of spinning.

use crate::{Actor, SimNs};

/// Lifecycle snapshot of an asynchronous operation, as seen at one
/// virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionState {
    /// Not finished at the polled instant.
    Pending,
    /// Finished successfully at the contained instant (≤ the polled one).
    Complete(SimNs),
    /// Terminated abnormally with a (negative) status code at the
    /// contained instant.
    Failed(i32, SimNs),
}

impl CompletionState {
    /// True once the state can never change again.
    pub fn is_settled(self) -> bool {
        !matches!(self, CompletionState::Pending)
    }

    /// The settling instant, if settled.
    pub fn settled_at(self) -> Option<SimNs> {
        match self {
            CompletionState::Pending => None,
            CompletionState::Complete(at) | CompletionState::Failed(_, at) => Some(at),
        }
    }

    /// The error code, if failed.
    pub fn error_code(self) -> Option<i32> {
        match self {
            CompletionState::Failed(code, _) => Some(code),
            _ => None,
        }
    }
}

/// A non-blocking, poll-based view of an in-flight operation.
pub trait Completion {
    /// Snapshot the state at virtual instant `now`. Must not block and
    /// must not mutate observable cross-actor state.
    fn poll(&self, now: SimNs) -> CompletionState;

    /// The known future instant at which a `Pending` poll will flip to a
    /// settled state, if the implementation already knows it (e.g. an
    /// eager send's injection end, a matched message's arrival). `None`
    /// means "unknown — wait for a notify".
    fn wake_hint(&self, _now: SimNs) -> Option<SimNs> {
        None
    }
}

/// Block `actor` until `c` settles, waking on clock notifies and on the
/// completion's own [`Completion::wake_hint`] alarms. The blocking
/// convenience over the poll-based contract — engines use [`Completion::poll`]
/// directly and never call this on a data path.
pub fn block_on(actor: &Actor, c: &dyn Completion) -> CompletionState {
    let clock = actor.clock().clone();
    actor.wait_until_labeled("completion", || {
        let now = actor.now_ns();
        let st = c.poll(now);
        if st.is_settled() {
            return Some(st);
        }
        if let Some(at) = c.wake_hint(now) {
            clock.schedule_alarm(at);
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Monitor, SimClock};
    use std::sync::Arc;

    struct TimerDone {
        at: SimNs,
        slot: Arc<Monitor<Option<SimNs>>>,
    }

    impl Completion for TimerDone {
        fn poll(&self, now: SimNs) -> CompletionState {
            if self.slot.peek(|s| s.is_some()) || now >= self.at {
                CompletionState::Complete(self.at)
            } else {
                CompletionState::Pending
            }
        }
        fn wake_hint(&self, _now: SimNs) -> Option<SimNs> {
            Some(self.at)
        }
    }

    #[test]
    fn block_on_wakes_at_the_hinted_instant() {
        let clock = SimClock::new();
        let a = clock.register("poller");
        let c = TimerDone {
            at: 7_500,
            slot: Arc::new(Monitor::new(clock.clone(), None)),
        };
        assert_eq!(c.poll(a.now_ns()), CompletionState::Pending);
        let st = block_on(&a, &c);
        assert_eq!(st, CompletionState::Complete(7_500));
        assert_eq!(a.now_ns(), 7_500, "woken exactly at the hint");
    }

    #[test]
    fn state_accessors() {
        assert!(!CompletionState::Pending.is_settled());
        assert_eq!(CompletionState::Complete(3).settled_at(), Some(3));
        assert_eq!(CompletionState::Failed(-42, 9).settled_at(), Some(9));
        assert_eq!(CompletionState::Failed(-42, 9).error_code(), Some(-42));
        assert_eq!(CompletionState::Complete(3).error_code(), None);
    }
}
