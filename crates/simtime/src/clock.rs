//! The virtual clock and actor registration.
//!
//! See the crate docs for the model. Implementation notes:
//!
//! * A single `Mutex<ClockState>` + `Condvar` coordinates everything. The
//!   scale of this workspace (tens of actors, thousands of events per run)
//!   does not warrant anything finer-grained, and a single monitor keeps
//!   the advancement invariant easy to audit.
//! * `runnable` counts actors currently executing user code. Whenever it
//!   (together with `pending_wakes`) reaches zero, the decrementing thread
//!   advances the clock to the earliest pending target (sleeper or alarm).
//! * `pending_wakes` closes the race between "the clock advanced to time t,
//!   waking k sleepers" and "those k threads have not been scheduled by the
//!   OS yet": until every due sleeper has resumed, the clock must not move
//!   again.
//! * A generation counter (`gen`) implements lost-wakeup-free predicate
//!   waiting: [`Actor::wait_until`] snapshots `gen`, evaluates the
//!   predicate *outside* the clock lock, and only blocks if `gen` is
//!   unchanged. Every cross-actor state change bumps `gen` via
//!   [`SimClock::notify`].

use crate::plock::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::sched::{self, ExecMode, MachineHandle, SchedPool, ShardState, SimActor};
use crate::SimNs;

/// What an actor is doing right now; shown in deadlock diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorStatus {
    /// Executing user code (counts towards `runnable`).
    Running,
    /// Sleeping in [`Actor::advance`] until the given virtual instant.
    Sleeping(SimNs),
    /// Blocked in [`Actor::wait_until`] on the described predicate.
    Blocked(&'static str),
}

struct ActorInfo {
    label: String,
    status: ActorStatus,
}

#[derive(Default)]
struct ClockState {
    now: SimNs,
    /// Bumped by [`SimClock::notify`] and by alarm firings.
    gen: u64,
    /// Actors currently executing user code.
    runnable: usize,
    /// Sleepers the clock has advanced to, that have not yet resumed.
    pending_wakes: usize,
    /// Blocked waiters that have been notified (gen bumped) but have not
    /// yet been scheduled to re-evaluate their predicates. While nonzero
    /// the clock must not advance and a deadlock must not be declared.
    recheck_pending: usize,
    /// Actors blocked in `wait_until` (for deadlock detection only).
    blocked: usize,
    /// (wake_time, unique_seq) per sleeping actor.
    sleepers: BinaryHeap<Reverse<(SimNs, u64)>>,
    /// Thread-less wake-up targets (e.g. "a message becomes visible at t").
    alarms: BinaryHeap<Reverse<SimNs>>,
    next_seq: u64,
    next_actor: u64,
    /// Registered actors by id. A `BTreeMap` so that any iteration (the
    /// deadlock report) is in deterministic id order by construction.
    actors: BTreeMap<u64, ActorInfo>,
    /// Set when a registered actor panics or a deadlock is detected, so
    /// every other actor unblocks and fails fast instead of hanging.
    poisoned: bool,
}

struct ClockInner {
    state: Mutex<ClockState>,
    cv: Condvar,
    /// How spawned machines execute ([`SimClock::spawn_machine`]).
    mode: ExecMode,
    /// Event-mode shard pool (empty queues in thread mode).
    pool: SchedPool,
    /// Machine state transitions observed by the scheduler cores, for the
    /// simulator self-throughput metric (events/sec). Deterministic for a
    /// fixed scenario: only actual transitions count, never idle re-polls.
    events: AtomicU64,
}

impl ClockInner {
    /// Advance the clock if every actor is quiescent. Must be called by any
    /// path that decrements `runnable` (possibly) to zero.
    fn maybe_advance(&self, st: &mut ClockState) {
        // Loop: an alarm may fire at an instant where no sleeper is due and
        // no waiter is blocked (e.g. a message arrives while its receiver
        // is off sleeping past it); the clock must then keep advancing to
        // the next target, because no other thread will re-drive it.
        loop {
            if st.runnable > 0 || st.pending_wakes > 0 || st.recheck_pending > 0 {
                return;
            }
            let next_sleep = st.sleepers.peek().map(|Reverse((t, _))| *t);
            // Alarms exist to re-check blocked predicate waiters. With
            // nobody blocked they must not *drive* the advance — a stale
            // alarm (e.g. a recv timeout satisfied early) would otherwise
            // drag the clock forward after the run's real work ended. They
            // stay queued: a sleeper may still wake and block on a
            // predicate whose wake-up is one of these alarms.
            let next_alarm = if st.blocked > 0 {
                st.alarms.peek().map(|Reverse(t)| *t)
            } else {
                None
            };
            let target = match (next_sleep, next_alarm) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    if st.blocked > 0 {
                        let report = self.render_actors(st);
                        st.poisoned = true;
                        self.cv.notify_all();
                        panic!(
                            "simtime: deadlock — all {} blocked actor(s) wait on predicates and \
                             no sleeper or alarm can advance the clock past t={}:\n{report}",
                            st.blocked, st.now
                        );
                    }
                    return; // all actors exited; nothing to do
                }
            };
            debug_assert!(target >= st.now, "clock would move backwards");
            st.now = target;
            while matches!(st.sleepers.peek(), Some(Reverse((t, _))) if *t <= target) {
                st.sleepers.pop();
                st.pending_wakes += 1;
            }
            let mut alarm_fired = false;
            while matches!(st.alarms.peek(), Some(Reverse(t)) if *t <= target) {
                st.alarms.pop();
                alarm_fired = true;
            }
            if alarm_fired {
                st.gen += 1;
                st.recheck_pending = st.blocked;
            }
            self.cv.notify_all();
            if st.pending_wakes > 0 || st.recheck_pending > 0 {
                return; // woken threads will drive further progress
            }
            // Only alarms fired and nobody was listening: advance further.
        }
    }

    fn render_actors(&self, st: &ClockState) -> String {
        let mut lines: Vec<String> = st
            .actors
            .values()
            .map(|a| format!("  {:<24} {:?}", a.label, a.status))
            .collect();
        lines.sort();
        if self.mode == ExecMode::Events {
            // Per-shard view: which machines each worker holds and the
            // earliest wake hint it has armed. `try_lock` because this
            // runs under the clock lock; at deadlock time every worker is
            // parked outside its shard lock, so contention means a bug
            // elsewhere and is reported rather than deadlocking the
            // reporter.
            for (i, shard) in self.pool.shards.iter().enumerate() {
                let Some(s) = shard.try_lock() else {
                    lines.push(format!("  shard {i}: <locked — worker mid-pass?>"));
                    continue;
                };
                if s.resident.is_empty() && s.incoming.is_empty() && !s.running {
                    continue;
                }
                let labels: Vec<&str> = s
                    .resident
                    .iter()
                    .chain(s.incoming.iter())
                    .map(|m| m.label.as_str())
                    .collect();
                let earliest = s
                    .resident
                    .iter()
                    .chain(s.incoming.iter())
                    .flat_map(|m| m.alarms.iter().copied())
                    .min();
                lines.push(format!(
                    "  shard {i}: {} resident + {} queued machine(s) [{}], earliest alarm {}",
                    s.resident.len(),
                    s.incoming.len(),
                    labels.join(", "),
                    match earliest {
                        Some(t) => format!("t={t}"),
                        None => "none".into(),
                    },
                ));
            }
        }
        lines.join("\n")
    }
}

/// A shared virtual clock. Cheap to clone (it is an `Arc` internally).
#[derive(Clone)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClock {
    /// Create a new clock at virtual time zero with no registered actors.
    /// The execution mode for spawned machines comes from `SIM_EXEC_MODE`
    /// ([`ExecMode::from_env`]); use [`SimClock::with_mode`] to pin it.
    pub fn new() -> Self {
        Self::with_mode(ExecMode::from_env())
    }

    /// Create a new clock with an explicit machine execution mode.
    pub fn with_mode(mode: ExecMode) -> Self {
        SimClock {
            inner: Arc::new(ClockInner {
                state: Mutex::new(ClockState::default()),
                cv: Condvar::new(),
                mode,
                pool: SchedPool::new(sched::shard_count_from_env()),
                events: AtomicU64::new(0),
            }),
        }
    }

    /// How spawned machines execute on this clock.
    pub fn exec_mode(&self) -> ExecMode {
        self.inner.mode
    }

    /// Add `n` to the machine-transition counter (scheduler cores only).
    pub fn count_events(&self, n: u64) {
        self.inner.events.fetch_add(n, Ordering::Relaxed);
    }

    /// Machine state transitions observed so far (simulator
    /// self-throughput metric; deterministic for a fixed scenario).
    pub fn events(&self) -> u64 {
        self.inner.events.load(Ordering::Relaxed)
    }

    /// Access one event-mode shard (shard workers and diagnostics).
    pub(crate) fn shard(&self, i: usize) -> &Mutex<ShardState> {
        &self.inner.pool.shards[i]
    }

    /// Block (in real time) until the event-mode scheduler is fully
    /// quiescent: every shard's machine queues are empty and its worker
    /// has retired. A no-op in thread mode, where machines are joined by
    /// their owners' drop paths.
    ///
    /// Shard workers process machine shutdowns *asynchronously* after the
    /// spawning actors have exited: a queue's `Shutdown` transition and an
    /// engine's trailing drain — including their [`SimClock::count_events`]
    /// contributions and any final alarm-driven advance — may run after
    /// the owners dropped their handles. A reader that wants the complete
    /// [`SimClock::events`] total or the final [`SimClock::now_ns`] must
    /// quiesce first. Acquiring each shard lock orders the workers' last
    /// counted pass before the caller's subsequent reads.
    ///
    /// Preconditions: every spawned machine has been asked to shut down
    /// (its owner dropped), and the caller holds no registered actor —
    /// retiring machines may still need the clock to advance (trailing
    /// device reservations), which a runnable caller would stall.
    pub fn quiesce_machines(&self) {
        if self.exec_mode() != ExecMode::Events {
            return;
        }
        loop {
            let drained = self.inner.pool.shards.iter().all(|s| {
                let st = s.lock();
                st.resident.is_empty() && st.incoming.is_empty() && !st.running
            });
            if drained {
                return;
            }
            // Workers retire on their own (shutdown notifications are
            // already in flight, and blocked workers still drive the
            // clock through their scheduled alarms); the wait is a few
            // final shard passes, so yielding the OS slice is enough.
            std::thread::yield_now();
        }
    }

    /// Spawn a resumable machine according to this clock's [`ExecMode`].
    ///
    /// The caller must be a running clock actor (the registration
    /// ordering rule): the machine's executing actor — its own thread's
    /// in thread mode, its shard worker's in event mode — is registered
    /// here, before any thread spawns. The machine's first poll happens
    /// at the caller's current virtual instant.
    ///
    /// `hint` selects the event-mode shard (`hint % shards`); it must be
    /// a host-independent value (a rank, a label hash) so machine
    /// placement is reproducible. Machines must never spawn further
    /// machines from inside `poll` — the executing shard holds its own
    /// lock across the pass.
    pub fn spawn_machine(
        &self,
        hint: u64,
        label: impl Into<String>,
        body: Box<dyn SimActor>,
    ) -> MachineHandle {
        let label = label.into();
        match self.exec_mode() {
            ExecMode::Threads => {
                let actor = self.register(label.clone());
                let handle = std::thread::Builder::new()
                    .name(label)
                    .spawn(move || sched::run_on_thread(actor, body))
                    .expect("spawn machine thread");
                MachineHandle::thread(handle)
            }
            ExecMode::Events => {
                let shards = self.inner.pool.shards.len();
                let shard = (hint % shards as u64) as usize;
                let needs_worker = {
                    let mut st = self.shard(shard).lock();
                    st.incoming.push(sched::Slot::new(label, body));
                    !std::mem::replace(&mut st.running, true)
                };
                if needs_worker {
                    let actor = self.register(format!("sched:shard{shard}"));
                    let clock = self.clone();
                    std::thread::Builder::new()
                        .name(format!("sim-shard{shard}"))
                        .spawn(move || sched::shard_worker(actor, clock, shard))
                        .expect("spawn shard worker");
                }
                // An already-parked worker re-polls only on notification.
                self.notify();
                MachineHandle::event()
            }
        }
    }

    /// Register a new actor. The returned handle **must** live on exactly
    /// one thread at a time.
    ///
    /// **Registration ordering rule:** an actor must be registered while at
    /// least one already-registered actor (or the registering thread, if it
    /// holds an actor) is still runnable — in practice: register *all*
    /// top-level actors before spawning any of their threads, and have
    /// running actors register their children before starting them.
    /// Otherwise the clock may advance before the newcomer is accounted
    /// for.
    pub fn register(&self, label: impl Into<String>) -> Actor {
        let mut st = self.inner.state.lock();
        let id = st.next_actor;
        st.next_actor += 1;
        st.runnable += 1;
        st.actors.insert(
            id,
            ActorInfo {
                label: label.into(),
                status: ActorStatus::Running,
            },
        );
        Actor {
            clock: self.clone(),
            id,
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> SimNs {
        self.inner.state.lock().now
    }

    /// Announce that cross-actor state changed: every blocked actor will
    /// re-evaluate its predicate. Called automatically by [`crate::sync`].
    pub fn notify(&self) {
        let mut st = self.inner.state.lock();
        st.gen += 1;
        st.recheck_pending = st.blocked;
        self.inner.cv.notify_all();
    }

    /// Schedule a thread-less wake-up: at virtual time `at`, blocked actors
    /// re-evaluate their predicates. Use this when an *event in the future*
    /// (e.g. a message arrival) may unblock a waiter, but no thread will be
    /// sleeping until then. If `at` is not in the future this is just
    /// [`SimClock::notify`].
    pub fn schedule_alarm(&self, at: SimNs) {
        let mut st = self.inner.state.lock();
        if at <= st.now {
            st.gen += 1;
            st.recheck_pending = st.blocked;
            self.inner.cv.notify_all();
        } else {
            st.alarms.push(Reverse(at));
        }
    }

    /// Number of currently registered actors (diagnostics / tests).
    pub fn actor_count(&self) -> usize {
        self.inner.state.lock().actors.len()
    }

    /// True once the clock has been poisoned by a panicking actor or a
    /// detected deadlock.
    pub fn is_poisoned(&self) -> bool {
        self.inner.state.lock().poisoned
    }

    fn check_poison(st: &ClockState) {
        if st.poisoned {
            panic!("simtime: clock poisoned by a panicking actor or detected deadlock");
        }
    }
}

/// A participant in virtual time. Obtain via [`SimClock::register`].
///
/// Dropping an `Actor` deregisters it; if the owning thread is panicking,
/// the clock is poisoned so every other actor fails fast.
pub struct Actor {
    clock: SimClock,
    id: u64,
}

impl Actor {
    /// The clock this actor is registered with.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> SimNs {
        self.clock.now_ns()
    }

    /// Spend `d` of virtual time (simulated computation or I/O).
    pub fn advance(&self, d: Duration) {
        self.advance_ns(crate::dur_ns(d));
    }

    /// Spend `ns` virtual nanoseconds.
    pub fn advance_ns(&self, ns: SimNs) {
        if ns == 0 {
            return;
        }
        let inner = &self.clock.inner;
        let mut st = inner.state.lock();
        SimClock::check_poison(&st);
        let wake = st.now + ns;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.sleepers.push(Reverse((wake, seq)));
        st.runnable -= 1;
        if let Some(a) = st.actors.get_mut(&self.id) {
            a.status = ActorStatus::Sleeping(wake);
        }
        inner.maybe_advance(&mut st);
        while st.now < wake && !st.poisoned {
            inner.cv.wait(&mut st);
        }
        if st.poisoned {
            // Our sleeper entry may or may not have been consumed; the run
            // is aborting anyway.
            panic!("simtime: clock poisoned while sleeping");
        }
        st.pending_wakes -= 1;
        st.runnable += 1;
        if let Some(a) = st.actors.get_mut(&self.id) {
            a.status = ActorStatus::Running;
        }
    }

    /// Advance to absolute virtual time `t` (no-op if already past it).
    pub fn advance_until(&self, t: SimNs) {
        let now = self.now_ns();
        if t > now {
            self.advance_ns(t - now);
        }
    }

    /// Block until `pred` returns `Some`, re-evaluating whenever any actor
    /// calls [`SimClock::notify`] (directly or through [`crate::sync`]) or
    /// an alarm fires. The predicate is evaluated **without** the clock
    /// lock held, so it may freely take other locks.
    pub fn wait_until<T>(&self, pred: impl FnMut() -> Option<T>) -> T {
        self.wait_until_labeled("<predicate>", pred)
    }

    /// [`Actor::wait_until`] with a label shown in deadlock diagnostics.
    pub fn wait_until_labeled<T>(
        &self,
        label: &'static str,
        mut pred: impl FnMut() -> Option<T>,
    ) -> T {
        let inner = &self.clock.inner;
        loop {
            let gen = {
                let st = inner.state.lock();
                SimClock::check_poison(&st);
                st.gen
            };
            if let Some(v) = pred() {
                return v;
            }
            let mut st = inner.state.lock();
            SimClock::check_poison(&st);
            if st.gen != gen {
                continue; // something changed while we evaluated; recheck
            }
            st.runnable -= 1;
            st.blocked += 1;
            if let Some(a) = st.actors.get_mut(&self.id) {
                a.status = ActorStatus::Blocked(label);
            }
            inner.maybe_advance(&mut st);
            while st.gen == gen && !st.poisoned {
                inner.cv.wait(&mut st);
            }
            st.recheck_pending = st.recheck_pending.saturating_sub(1);
            st.blocked -= 1;
            st.runnable += 1;
            if let Some(a) = st.actors.get_mut(&self.id) {
                a.status = ActorStatus::Running;
            }
            SimClock::check_poison(&st);
        }
    }
}

impl Drop for Actor {
    fn drop(&mut self) {
        let inner = &self.clock.inner;
        let mut st = inner.state.lock();
        // An actor normally drops while Running; during a panic unwind it
        // may drop while Blocked (or Sleeping, whose counter lives in the
        // sleeper heap / pending_wakes and no longer matters once
        // poisoned). Adjust the counter its status actually holds.
        if let Some(info) = st.actors.remove(&self.id) {
            match info.status {
                ActorStatus::Running => st.runnable -= 1,
                ActorStatus::Blocked(_) => st.blocked -= 1,
                ActorStatus::Sleeping(_) => {}
            }
        }
        if std::thread::panicking() {
            st.poisoned = true;
            st.gen += 1;
            inner.cv.notify_all();
        } else if !st.poisoned {
            inner.maybe_advance(&mut st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn clock_starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.actor_count(), 0);
    }

    #[test]
    fn single_actor_advance_moves_clock_exactly() {
        let c = SimClock::new();
        let a = c.register("a");
        a.advance_ns(1234);
        assert_eq!(a.now_ns(), 1234);
        a.advance_ns(1);
        assert_eq!(c.now_ns(), 1235);
    }

    #[test]
    fn advance_zero_is_noop() {
        let c = SimClock::new();
        let a = c.register("a");
        a.advance_ns(0);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn advance_until_is_absolute_and_idempotent() {
        let c = SimClock::new();
        let a = c.register("a");
        a.advance_until(500);
        assert_eq!(a.now_ns(), 500);
        a.advance_until(100); // already past: no-op
        assert_eq!(a.now_ns(), 500);
    }

    #[test]
    fn parallel_advances_overlap_to_max() {
        let c = SimClock::new();
        let durations = [300u64, 700, 500];
        // Register every actor before spawning any thread (see `register`).
        let actors: Vec<_> = (0..durations.len())
            .map(|i| c.register(format!("w{i}")))
            .collect();
        let handles: Vec<_> = actors
            .into_iter()
            .zip(durations)
            .map(|(actor, d)| {
                thread::spawn(move || {
                    actor.advance_ns(d);
                    actor.now_ns()
                })
            })
            .collect();
        let ends: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        assert_eq!(ends, vec![300, 700, 500]);
        assert_eq!(c.now_ns(), 700);
    }

    #[test]
    fn serialized_advances_sum() {
        let c = SimClock::new();
        let a = c.register("a");
        for _ in 0..10 {
            a.advance_ns(10);
        }
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn wait_until_sees_notification() {
        let c = SimClock::new();
        let flag = Arc::new(Mutex::new(false));
        let a = c.register("waiter");
        let b = c.register("setter");
        let f2 = flag.clone();
        let setter = thread::spawn(move || {
            b.advance_ns(1000);
            *f2.lock() = true;
            b.clock().notify();
        });
        let f3 = flag.clone();
        a.wait_until(move || if *f3.lock() { Some(()) } else { None });
        assert_eq!(a.now_ns(), 1000);
        setter.join().expect("worker thread panicked");
    }

    #[test]
    fn alarm_unblocks_predicate_waiter() {
        let c = SimClock::new();
        let a = c.register("waiter");
        c.schedule_alarm(5_000);
        let clock = c.clone();
        // Predicate: "has the clock reached 5000?" — only an alarm can get
        // it there, since no thread sleeps.
        a.wait_until(move || (clock.now_ns() >= 5_000).then_some(()));
        assert_eq!(c.now_ns(), 5_000);
    }

    #[test]
    fn stale_alarm_does_not_drag_final_time() {
        // An alarm scheduled for a wake-up that turned out unnecessary
        // (e.g. a timeout satisfied early) must not push virtual time
        // forward once every actor has finished its work.
        let c = SimClock::new();
        let a = c.register("worker");
        c.schedule_alarm(1_000_000_000);
        a.advance_ns(500);
        drop(a);
        assert_eq!(c.now_ns(), 500);
    }

    #[test]
    fn two_sleepers_same_instant_both_wake() {
        let c = SimClock::new();
        let actors: Vec<_> = (0..2).map(|i| c.register(format!("s{i}"))).collect();
        let h: Vec<_> = actors
            .into_iter()
            .map(|a| {
                thread::spawn(move || {
                    a.advance_ns(42);
                    a.advance_ns(8);
                    a.now_ns()
                })
            })
            .collect();
        for t in h {
            assert_eq!(t.join().expect("worker thread panicked"), 50);
        }
        assert_eq!(c.now_ns(), 50);
    }

    #[test]
    fn message_passing_has_no_premature_advance() {
        // A sends at t=10 to B who is blocked; B must observe at t=10, not
        // after A's later sleep to t=100.
        let c = SimClock::new();
        let mailbox: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let a = c.register("sender");
        let b = c.register("receiver");
        let m1 = mailbox.clone();
        let sender = thread::spawn(move || {
            a.advance_ns(10);
            *m1.lock() = Some(a.now_ns());
            a.clock().notify();
            a.advance_ns(90);
        });
        let m2 = mailbox.clone();
        let got = b.wait_until(move || m2.lock().take());
        assert_eq!(got, 10);
        assert_eq!(b.now_ns(), 10); // B observed the message at send time
                                    // Deregister before joining: the sender still owes 90 ns of virtual
                                    // time, and a join while holding a runnable actor would stall the
                                    // clock (os-level wait the clock cannot see).
        drop(b);
        sender.join().expect("worker thread panicked");
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let c = SimClock::new();
        let a = c.register("stuck");
        a.wait_until(|| None::<()>);
    }

    #[test]
    fn drop_deregisters_and_lets_clock_advance() {
        let c = SimClock::new();
        let a = c.register("a");
        let b = c.register("b");
        let t = thread::spawn(move || {
            drop(b); // b leaves; a must be able to advance alone
        });
        t.join().expect("worker thread panicked");
        a.advance_ns(7);
        assert_eq!(c.now_ns(), 7);
        assert_eq!(c.actor_count(), 1);
    }

    #[test]
    fn panicking_actor_poisons_clock() {
        let c = SimClock::new();
        let a = c.register("panicker");
        let t = thread::spawn(move || {
            let _a = a;
            panic!("boom");
        });
        assert!(t.join().is_err());
        assert!(c.is_poisoned());
    }

    #[test]
    fn gen_based_wait_has_no_lost_wakeup() {
        // Hammer the notify/wait path: 100 tokens passed one at a time.
        let c = SimClock::new();
        let slot: Arc<Mutex<Option<u32>>> = Arc::new(Mutex::new(None));
        let a = c.register("producer");
        let b = c.register("consumer");
        let s1 = slot.clone();
        let prod = thread::spawn(move || {
            for i in 0..100u32 {
                a.advance_ns(1);
                a.wait_until(|| s1.lock().is_none().then_some(()));
                *s1.lock() = Some(i);
                a.clock().notify();
            }
        });
        let s2 = slot.clone();
        let cons = thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..100 {
                let v = b.wait_until(|| s2.lock().take());
                b.clock().notify(); // slot freed
                got.push(v);
            }
            got
        });
        prod.join().expect("worker thread panicked");
        let got = cons.join().expect("worker thread panicked");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(c.now_ns(), 100);
    }
}
