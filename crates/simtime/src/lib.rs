//! # simtime — a conservative virtual-time engine
//!
//! Every simulated activity in this workspace (MPI ranks, OpenCL command
//! queue executors, clMPI communication threads) runs on a **real OS
//! thread**, but time is **virtual**. The [`SimClock`] only advances when
//! every registered [`Actor`] is quiescent — either sleeping until a known
//! virtual instant ([`Actor::advance`]) or blocked on a predicate
//! ([`Actor::wait_until`]). The clock then jumps to the earliest pending
//! wake-up target.
//!
//! This gives the two properties the clMPI reproduction needs:
//!
//! 1. **Overlap is real.** Two actors that each `advance(10ms)` in the same
//!    window cost 10 ms of virtual time, not 20 ms; serialized, they cost
//!    20 ms. Computation/communication overlap therefore falls out of the
//!    concurrency structure of the program under test, exactly as on real
//!    hardware.
//! 2. **Timing is deterministic** for a fixed dependency structure; the
//!    virtual timestamps of operations do not depend on host load.
//!
//! ## Contract
//!
//! Any mutation of state that another actor may be blocked on **must** be
//! followed by [`SimClock::notify`]. The synchronization primitives in
//! [`sync`] ([`Monitor`], [`SimChannel`], [`SimBarrier`]) uphold this
//! automatically; use them instead of raw locks for cross-actor state.
//!
//! ## Example
//!
//! ```
//! use simtime::SimClock;
//! use std::time::Duration;
//!
//! let clock = SimClock::new();
//! let a = clock.register("worker-a");
//! let b = clock.register("worker-b");
//! let ta = std::thread::spawn(move || { a.advance(Duration::from_millis(10)); a.now_ns() });
//! let tb = std::thread::spawn(move || { b.advance(Duration::from_millis(4)); b.now_ns() });
//! assert_eq!(ta.join().unwrap(), 10_000_000);
//! assert_eq!(tb.join().unwrap(), 4_000_000);
//! // Overlapped: the clock reached max(10ms, 4ms), not the sum.
//! assert_eq!(clock.now_ns(), 10_000_000);
//! ```

mod clock;
pub mod plock;
pub mod progress;
pub mod rng;
pub mod sched;
pub mod sync;
pub mod trace;

pub use clock::{Actor, ActorStatus, SimClock};
pub use progress::{Completion, CompletionState};
pub use rng::XorShift64;
pub use sched::{on_pool_worker, ExecMode, MachineHandle, MachineStep, SimActor};
pub use sync::{Monitor, SimBarrier, SimChannel};
pub use trace::{OpSpan, Span, Trace};

/// Virtual nanoseconds since simulation start.
pub type SimNs = u64;

/// Convert a [`std::time::Duration`] to virtual nanoseconds (saturating).
pub fn dur_ns(d: std::time::Duration) -> SimNs {
    d.as_nanos().min(u64::MAX as u128) as SimNs
}

/// Pretty-print a virtual timestamp/duration for logs and harness output.
pub fn fmt_ns(ns: SimNs) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
