//! Activity tracing: record `(lane, label, start, end)` spans in virtual
//! time and render them as ASCII Gantt charts. Used to reproduce the
//! paper's Figure 4 timing diagrams from actual runs.

use crate::plock::Mutex;
use std::sync::Arc;

use crate::SimNs;

/// One recorded activity interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which timeline row the span belongs to (e.g. "host", "gpu0", "net").
    pub lane: String,
    /// Short description (e.g. "kernel A", "MPI_Sendrecv").
    pub label: String,
    /// Start, virtual ns.
    pub start: SimNs,
    /// End, virtual ns (`end >= start`).
    pub end: SimNs,
}

/// A shareable collector of [`Span`]s. Cloning shares the underlying store.
#[derive(Clone, Default, Debug)]
pub struct Trace {
    spans: Arc<Mutex<Vec<Span>>>,
}

impl Trace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval.
    pub fn record(
        &self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start: SimNs,
        end: SimNs,
    ) {
        let (start, end) = if end >= start {
            (start, end)
        } else {
            (end, start)
        };
        self.spans.lock().push(Span {
            lane: lane.into(),
            label: label.into(),
            start,
            end,
        });
    }

    /// Snapshot of all recorded spans, sorted by (lane, start).
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.spans.lock().clone();
        v.sort_by(|a, b| a.lane.cmp(&b.lane).then(a.start.cmp(&b.start)));
        v
    }

    /// Remove all recorded spans.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Latest `end` across all spans (0 if empty).
    pub fn horizon(&self) -> SimNs {
        self.spans.lock().iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Render an ASCII Gantt chart `width` characters wide. Lanes are
    /// ordered by first appearance; overlapping spans in a lane stack onto
    /// extra rows.
    pub fn render_ascii(&self, width: usize) -> String {
        let spans = self.spans.lock().clone();
        if spans.is_empty() {
            return String::from("(empty trace)\n");
        }
        // `spans` is non-empty (checked above); 0 is unreachable, not a
        // default — this keeps the render path panic-free.
        let t0 = spans.iter().map(|s| s.start).min().unwrap_or(0);
        let t1 = spans.iter().map(|s| s.end).max().unwrap_or(0).max(t0 + 1);
        let scale = |t: SimNs| -> usize {
            (((t - t0) as f64 / (t1 - t0) as f64) * (width.max(2) - 1) as f64).round() as usize
        };
        // Preserve lane order of first appearance.
        let mut lanes: Vec<String> = Vec::new();
        for s in &spans {
            if !lanes.contains(&s.lane) {
                lanes.push(s.lane.clone());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {} .. {} ({} total)\n",
            crate::fmt_ns(t0),
            crate::fmt_ns(t1),
            crate::fmt_ns(t1 - t0)
        ));
        for lane in &lanes {
            // Rows within a lane: greedy placement avoiding overlap.
            let mut rows: Vec<Vec<&Span>> = Vec::new();
            let mut lane_spans: Vec<&Span> = spans.iter().filter(|s| &s.lane == lane).collect();
            lane_spans.sort_by_key(|s| s.start);
            for s in lane_spans {
                let row = rows
                    .iter_mut()
                    .find(|r| r.last().is_none_or(|p| p.end <= s.start));
                match row {
                    Some(r) => r.push(s),
                    None => rows.push(vec![s]),
                }
            }
            for (ri, row) in rows.iter().enumerate() {
                let name = if ri == 0 { lane.as_str() } else { "" };
                let mut line: Vec<char> = vec![' '; width];
                for s in row {
                    let a = scale(s.start);
                    let b = scale(s.end).max(a + 1).min(width);
                    for (k, c) in line.iter_mut().enumerate().take(b).skip(a) {
                        let li = k - a;
                        *c = if li == 0 {
                            '['
                        } else if k == b - 1 {
                            ']'
                        } else {
                            s.label.chars().nth(li - 1).unwrap_or('=')
                        };
                    }
                }
                out.push_str(&format!(
                    "{name:>12} |{}|\n",
                    line.iter().collect::<String>()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts_spans() {
        let t = Trace::new();
        t.record("gpu", "k2", 50, 80);
        t.record("gpu", "k1", 0, 40);
        t.record("host", "send", 10, 30);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].lane, "gpu");
        assert_eq!(spans[0].label, "k1");
        assert_eq!(t.horizon(), 80);
    }

    #[test]
    fn swapped_endpoints_are_normalized() {
        let t = Trace::new();
        t.record("l", "x", 30, 10);
        let s = &t.spans()[0];
        assert!(s.start <= s.end);
    }

    #[test]
    fn ascii_render_contains_lanes() {
        let t = Trace::new();
        t.record("host", "compute", 0, 100);
        t.record("net", "xfer", 50, 150);
        let s = t.render_ascii(60);
        assert!(s.contains("host"));
        assert!(s.contains("net"));
        assert!(s.contains("timeline"));
    }

    #[test]
    fn overlapping_spans_stack_rows() {
        let t = Trace::new();
        t.record("q", "a", 0, 100);
        t.record("q", "b", 50, 150);
        let s = t.render_ascii(40);
        // Two rows for the same lane: lane name printed once, two bars.
        assert_eq!(s.matches('|').count(), 4);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(Trace::new().render_ascii(40), "(empty trace)\n");
    }

    #[test]
    fn clear_empties() {
        let t = Trace::new();
        t.record("l", "x", 0, 1);
        t.clear();
        assert!(t.spans().is_empty());
    }
}
