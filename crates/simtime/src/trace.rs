//! Activity tracing: record `(lane, label, start, end)` spans in virtual
//! time and render them as ASCII Gantt charts, plus a **structured**
//! operation store ([`OpSpan`]) with stable ids and causal parent links
//! that the clMPI observability layer (`clmpi::obs`) exports as Chrome
//! `trace_events` JSON and machine-readable summaries. Used to reproduce
//! the paper's Figure 4 timing diagrams from actual runs.

use crate::plock::Mutex;
use std::sync::Arc;

use crate::SimNs;

/// One recorded activity interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which timeline row the span belongs to (e.g. "host", "gpu0", "net").
    pub lane: String,
    /// Short description (e.g. "kernel A", "MPI_Sendrecv").
    pub label: String,
    /// Start, virtual ns.
    pub start: SimNs,
    /// End, virtual ns (`end >= start`).
    pub end: SimNs,
}

/// One structured operation interval: a [`Span`] with identity.
///
/// Where [`Span`] is a free-form Gantt bar, an `OpSpan` carries a stable
/// `id` (unique within a run, allocated per rank so the numbering does
/// not depend on cross-rank thread interleaving), an optional causal
/// `parent` (a retry is a child of its chunk's operation; a staging hop
/// is a child of its transfer), and enough metadata — category, byte
/// count, peer rank, wire tag, success flag — for an exporter to
/// reconstruct the paper's Fig. 4 relationships quantitatively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpan {
    /// Stable id, unique within the run.
    pub id: u64,
    /// Causal parent (`None` for top-level operations).
    pub parent: Option<u64>,
    /// Owning rank.
    pub rank: u32,
    /// Timeline track, e.g. `r0.host`, `r0.net`, `r0.dev`.
    pub track: String,
    /// Human-readable name, e.g. `send→1#7`.
    pub name: String,
    /// Machine-readable category, e.g. `op.send`, `chunk`, `retry`,
    /// `stage.d2h`.
    pub cat: String,
    /// Start, virtual ns.
    pub start: SimNs,
    /// End, virtual ns (`end >= start` after normalization).
    pub end: SimNs,
    /// Payload bytes attributed to the span (0 if not applicable).
    pub bytes: u64,
    /// Whether the operation succeeded (always true for non-terminal
    /// spans like retries and stages).
    pub ok: bool,
    /// Peer rank of a transfer span, if any.
    pub peer: Option<u32>,
    /// Wire tag of a transfer span, if any.
    pub tag: Option<i32>,
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<Span>,
    ops: Vec<OpSpan>,
    /// How many recorded spans arrived with `end < start` and were
    /// silently normalized. A non-zero value means some producer computed
    /// a causally impossible interval — the swap used to mask such bugs;
    /// now it is counted and exported (`clmpi::obs` summary).
    reversed: u64,
}

/// A shareable collector of [`Span`]s and [`OpSpan`]s. Cloning shares the
/// underlying store.
#[derive(Clone, Default, Debug)]
pub struct Trace {
    inner: Arc<Mutex<TraceInner>>,
}

impl Trace {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval. Reversed endpoints (`end < start`) are
    /// normalized by swapping — and counted in [`Trace::reversed_spans`],
    /// because a reversed interval is a causality bug in the producer,
    /// not a rendering nuisance.
    pub fn record(
        &self,
        lane: impl Into<String>,
        label: impl Into<String>,
        start: SimNs,
        end: SimNs,
    ) {
        let mut inner = self.inner.lock();
        let (start, end) = if end >= start {
            (start, end)
        } else {
            inner.reversed += 1;
            (end, start)
        };
        inner.spans.push(Span {
            lane: lane.into(),
            label: label.into(),
            start,
            end,
        });
    }

    /// Record one structured operation span. Reversed endpoints are
    /// normalized and counted exactly as in [`Trace::record`].
    pub fn record_op(&self, mut op: OpSpan) {
        let mut inner = self.inner.lock();
        if op.end < op.start {
            inner.reversed += 1;
            std::mem::swap(&mut op.start, &mut op.end);
        }
        inner.ops.push(op);
    }

    /// How many recorded spans (plain or structured) arrived with
    /// `end < start` and were normalized. Deterministic producers must
    /// keep this at zero; tests assert it.
    pub fn reversed_spans(&self) -> u64 {
        self.inner.lock().reversed
    }

    /// Snapshot of all recorded spans, sorted by (lane, start).
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.inner.lock().spans.clone();
        v.sort_by(|a, b| a.lane.cmp(&b.lane).then(a.start.cmp(&b.start)));
        v
    }

    /// Snapshot of all structured operation spans, sorted by id — a total
    /// deterministic order (ids are unique), independent of the real-time
    /// interleaving of the recording threads.
    pub fn ops(&self) -> Vec<OpSpan> {
        let mut v = self.inner.lock().ops.clone();
        v.sort_by_key(|o| o.id);
        v
    }

    /// Remove all recorded spans (plain and structured) and reset the
    /// reversed-span counter.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.ops.clear();
        inner.reversed = 0;
    }

    /// Latest `end` across all spans, plain and structured (0 if empty).
    pub fn horizon(&self) -> SimNs {
        let inner = self.inner.lock();
        let plain = inner.spans.iter().map(|s| s.end).max().unwrap_or(0);
        let ops = inner.ops.iter().map(|o| o.end).max().unwrap_or(0);
        plain.max(ops)
    }

    /// Render an ASCII Gantt chart `width` characters wide. Lanes are
    /// ordered by first activity in virtual time (ties by name), so the
    /// chart does not depend on which recording thread reached the trace
    /// first; overlapping spans in a lane stack onto extra rows.
    pub fn render_ascii(&self, width: usize) -> String {
        let spans = self.inner.lock().spans.clone();
        if spans.is_empty() {
            return String::from("(empty trace)\n");
        }
        // `spans` is non-empty (checked above); 0 is unreachable, not a
        // default — this keeps the render path panic-free.
        let t0 = spans.iter().map(|s| s.start).min().unwrap_or(0);
        let t1 = spans.iter().map(|s| s.end).max().unwrap_or(0).max(t0 + 1);
        let scale = |t: SimNs| -> usize {
            (((t - t0) as f64 / (t1 - t0) as f64) * (width.max(2) - 1) as f64).round() as usize
        };
        // Lane order: earliest span start, ties by lane name — a pure
        // function of the recorded spans, never of arrival order.
        let mut lanes: Vec<(SimNs, String)> = Vec::new();
        for s in &spans {
            match lanes.iter_mut().find(|(_, l)| l == &s.lane) {
                Some(e) => e.0 = e.0.min(s.start),
                None => lanes.push((s.start, s.lane.clone())),
            }
        }
        lanes.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let lanes: Vec<String> = lanes.into_iter().map(|(_, l)| l).collect();
        let mut out = String::new();
        out.push_str(&format!(
            "timeline: {} .. {} ({} total)\n",
            crate::fmt_ns(t0),
            crate::fmt_ns(t1),
            crate::fmt_ns(t1 - t0)
        ));
        for lane in &lanes {
            // Rows within a lane: greedy placement avoiding overlap.
            let mut rows: Vec<Vec<&Span>> = Vec::new();
            let mut lane_spans: Vec<&Span> = spans.iter().filter(|s| &s.lane == lane).collect();
            lane_spans.sort_by(|a, b| {
                a.start
                    .cmp(&b.start)
                    .then(a.end.cmp(&b.end))
                    .then(a.label.cmp(&b.label))
            });
            for s in lane_spans {
                let row = rows
                    .iter_mut()
                    .find(|r| r.last().is_none_or(|p| p.end <= s.start));
                match row {
                    Some(r) => r.push(s),
                    None => rows.push(vec![s]),
                }
            }
            for (ri, row) in rows.iter().enumerate() {
                let name = if ri == 0 { lane.as_str() } else { "" };
                let mut line: Vec<char> = vec![' '; width];
                for s in row {
                    let a = scale(s.start);
                    let b = scale(s.end).max(a + 1).min(width);
                    for (k, c) in line.iter_mut().enumerate().take(b).skip(a) {
                        let li = k - a;
                        *c = if li == 0 {
                            '['
                        } else if k == b - 1 {
                            ']'
                        } else {
                            s.label.chars().nth(li - 1).unwrap_or('=')
                        };
                    }
                }
                out.push_str(&format!(
                    "{name:>12} |{}|\n",
                    line.iter().collect::<String>()
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: u64, track: &str, start: SimNs, end: SimNs) -> OpSpan {
        OpSpan {
            id,
            parent: None,
            rank: 0,
            track: track.into(),
            name: format!("op{id}"),
            cat: "op.test".into(),
            start,
            end,
            bytes: 0,
            ok: true,
            peer: None,
            tag: None,
        }
    }

    #[test]
    fn records_and_sorts_spans() {
        let t = Trace::new();
        t.record("gpu", "k2", 50, 80);
        t.record("gpu", "k1", 0, 40);
        t.record("host", "send", 10, 30);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].lane, "gpu");
        assert_eq!(spans[0].label, "k1");
        assert_eq!(t.horizon(), 80);
    }

    #[test]
    fn swapped_endpoints_are_normalized_and_flagged() {
        let t = Trace::new();
        assert_eq!(t.reversed_spans(), 0);
        t.record("l", "x", 30, 10);
        let s = &t.spans()[0];
        assert!(s.start <= s.end);
        // The swap no longer masks the producer bug: it is counted.
        assert_eq!(t.reversed_spans(), 1);
        // Well-formed spans leave the counter untouched.
        t.record("l", "y", 10, 30);
        assert_eq!(t.reversed_spans(), 1);
    }

    #[test]
    fn reversed_op_spans_are_flagged_too() {
        let t = Trace::new();
        t.record_op(op(1, "r0.host", 500, 100));
        assert_eq!(t.reversed_spans(), 1);
        let ops = t.ops();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].start <= ops[0].end);
        assert_eq!((ops[0].start, ops[0].end), (100, 500));
    }

    #[test]
    fn ops_sort_by_id_not_insertion_order() {
        let t = Trace::new();
        t.record_op(op(7, "r0.net", 10, 20));
        t.record_op(op(3, "r0.host", 0, 30));
        let ops = t.ops();
        assert_eq!(ops[0].id, 3);
        assert_eq!(ops[1].id, 7);
        assert_eq!(t.horizon(), 30);
    }

    #[test]
    fn ascii_render_contains_lanes() {
        let t = Trace::new();
        t.record("host", "compute", 0, 100);
        t.record("net", "xfer", 50, 150);
        let s = t.render_ascii(60);
        assert!(s.contains("host"));
        assert!(s.contains("net"));
        assert!(s.contains("timeline"));
    }

    #[test]
    fn overlapping_spans_stack_rows() {
        let t = Trace::new();
        t.record("q", "a", 0, 100);
        t.record("q", "b", 50, 150);
        let s = t.render_ascii(40);
        // Two rows for the same lane: lane name printed once, two bars.
        assert_eq!(s.matches('|').count(), 4);
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(Trace::new().render_ascii(40), "(empty trace)\n");
    }

    #[test]
    fn clear_empties() {
        let t = Trace::new();
        t.record("l", "x", 0, 1);
        t.record_op(op(1, "r0.host", 5, 2));
        t.clear();
        assert!(t.spans().is_empty());
        assert!(t.ops().is_empty());
        assert_eq!(t.reversed_spans(), 0);
    }
}
