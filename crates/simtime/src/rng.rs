//! A small, seeded, deterministic PRNG (xorshift64*).
//!
//! Used by the fault injector (`simnet`'s `FaultPlan`) and by the
//! seeded-loop property tests, replacing the external `rand` crate. The
//! stream is a pure function of the seed, so any run that records its seed
//! is exactly replayable — a requirement for deterministic fault
//! injection in virtual time.

/// Deterministic xorshift64* generator.
///
/// Not cryptographic; statistically plenty for fault sampling, jitter and
/// test-input generation.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed. Any seed is accepted; zero (which
    /// would trap plain xorshift in a fixed point) is remapped through a
    /// splitmix64 scramble like every other seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble: decorrelates adjacent seeds (1, 2, 3, ...).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 {
            state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` (single precision).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `u64` in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "gen_range_u64: empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork an independent child stream (e.g. one per link) whose output
    /// is decorrelated from this stream and from other children.
    pub fn fork(&mut self, salt: u64) -> XorShift64 {
        XorShift64::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = XorShift64::new(11);
        for _ in 0..10_000 {
            let v = r.gen_range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn bernoulli_rate_roughly_matches() {
        let mut r = XorShift64::new(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.01)).count();
        assert!((500..1500).contains(&hits), "1% of 100k ≈ 1000, got {hits}");
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut root = XorShift64::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
