//! Clock-aware synchronization primitives.
//!
//! These wrap shared state so that every mutation notifies the clock
//! (upholding the crate-level contract) and every wait participates in
//! virtual-time accounting instead of holding the clock hostage.

use crate::plock::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::{Actor, SimClock};

/// A monitor: shared mutable state whose mutations wake blocked actors.
///
/// `Monitor<T>` is the building block for everything cross-actor in this
/// workspace (mailboxes, event statuses, link timelines). Use
/// [`Monitor::with`] for mutations, [`Monitor::peek`] for pure reads, and
/// [`Monitor::wait`] to block an actor until the state satisfies a
/// predicate.
pub struct Monitor<T> {
    clock: SimClock,
    state: Mutex<T>,
}

impl<T> Monitor<T> {
    /// Create a monitor bound to `clock` holding `value`.
    pub fn new(clock: SimClock, value: T) -> Self {
        Monitor {
            clock,
            state: Mutex::new(value),
        }
    }

    /// The clock this monitor notifies.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Mutate the state and wake every blocked actor to re-evaluate.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let r = f(&mut self.state.lock());
        self.clock.notify();
        r
    }

    /// Read the state without notifying (must not mutate observable state).
    pub fn peek<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.state.lock())
    }

    /// Block `actor` until `f` returns `Some`. `f` may mutate the state
    /// when it succeeds (e.g. pop a queue entry); other actors are notified
    /// after a successful return, since the state changed.
    pub fn wait<R>(&self, actor: &Actor, mut f: impl FnMut(&mut T) -> Option<R>) -> R {
        let r = actor.wait_until_labeled("monitor", || f(&mut self.state.lock()));
        // The successful predicate may have mutated state others wait on.
        self.clock.notify();
        r
    }

    /// Like [`Monitor::wait`] with a diagnostic label for deadlock reports.
    pub fn wait_labeled<R>(
        &self,
        actor: &Actor,
        label: &'static str,
        mut f: impl FnMut(&mut T) -> Option<R>,
    ) -> R {
        let r = actor.wait_until_labeled(label, || f(&mut self.state.lock()));
        self.clock.notify();
        r
    }

    /// Try the predicate once without blocking.
    pub fn try_now<R>(&self, mut f: impl FnMut(&mut T) -> Option<R>) -> Option<R> {
        let r = f(&mut self.state.lock());
        if r.is_some() {
            self.clock.notify();
        }
        r
    }
}

/// An unbounded multi-producer multi-consumer channel in virtual time.
///
/// `send` is instantaneous in virtual time (it models handing a value to a
/// scheduler, not a network transfer — see `simnet` for timed transfers).
pub struct SimChannel<T> {
    inner: Arc<Monitor<ChannelState<T>>>,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders_closed: bool,
}

impl<T> Clone for SimChannel<T> {
    fn clone(&self) -> Self {
        SimChannel {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Send> SimChannel<T> {
    /// Create an empty channel bound to `clock`.
    pub fn new(clock: SimClock) -> Self {
        SimChannel {
            inner: Arc::new(Monitor::new(
                clock,
                ChannelState {
                    queue: VecDeque::new(),
                    senders_closed: false,
                },
            )),
        }
    }

    /// Enqueue a value and wake receivers.
    pub fn send(&self, v: T) {
        self.inner.with(|st| st.queue.push_back(v));
    }

    /// Close the channel: receivers drain the queue then get `None`.
    pub fn close(&self) {
        self.inner.with(|st| st.senders_closed = true);
    }

    /// Blocking receive; `None` once closed and drained.
    pub fn recv(&self, actor: &Actor) -> Option<T> {
        self.inner.wait_labeled(actor, "channel recv", |st| {
            if let Some(v) = st.queue.pop_front() {
                Some(Some(v))
            } else if st.senders_closed {
                Some(None)
            } else {
                None
            }
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.try_now(|st| st.queue.pop_front())
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner.peek(|st| st.queue.len())
    }

    /// True if no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A reusable barrier for `n` actors in virtual time.
pub struct SimBarrier {
    inner: Monitor<BarrierState>,
    n: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl SimBarrier {
    /// Barrier for `n` participants (panics if `n == 0`).
    pub fn new(clock: SimClock, n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SimBarrier {
            inner: Monitor::new(
                clock,
                BarrierState {
                    arrived: 0,
                    generation: 0,
                },
            ),
            n,
        }
    }

    /// Wait until all `n` participants arrive. Returns `true` for exactly
    /// one (the last) participant per generation, like `std::sync::Barrier`.
    pub fn wait(&self, actor: &Actor) -> bool {
        let (my_gen, leader) = self.inner.with(|st| {
            st.arrived += 1;
            if st.arrived == self.n {
                st.arrived = 0;
                st.generation += 1;
                (st.generation, true)
            } else {
                (st.generation + 1, false)
            }
        });
        if leader {
            return true;
        }
        self.inner.wait_labeled(actor, "barrier", |st| {
            (st.generation >= my_gen).then_some(())
        });
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn channel_fifo_order() {
        let clock = SimClock::new();
        let ch = SimChannel::new(clock.clone());
        let a = clock.register("recv");
        for i in 0..5 {
            ch.send(i);
        }
        for i in 0..5 {
            assert_eq!(ch.recv(&a), Some(i));
        }
        assert_eq!(ch.try_recv(), None);
    }

    #[test]
    fn channel_close_drains_then_none() {
        let clock = SimClock::new();
        let ch = SimChannel::new(clock.clone());
        let a = clock.register("recv");
        ch.send(1);
        ch.close();
        assert_eq!(ch.recv(&a), Some(1));
        assert_eq!(ch.recv(&a), None);
    }

    #[test]
    fn channel_blocking_recv_wakes_on_send() {
        let clock = SimClock::new();
        let ch = SimChannel::new(clock.clone());
        let r = clock.register("recv");
        let s = clock.register("send");
        let ch2 = ch.clone();
        let sender = thread::spawn(move || {
            s.advance_ns(250);
            ch2.send(99);
        });
        assert_eq!(ch.recv(&r), Some(99));
        assert_eq!(r.now_ns(), 250);
        sender.join().expect("worker thread panicked");
    }

    #[test]
    fn barrier_synchronizes_virtual_times() {
        let clock = SimClock::new();
        let bar = Arc::new(SimBarrier::new(clock.clone(), 3));
        let actors: Vec<_> = (0..3).map(|i| clock.register(format!("p{i}"))).collect();
        let h: Vec<_> = actors
            .into_iter()
            .zip([10u64, 20, 30])
            .map(|(actor, d)| {
                let bar = bar.clone();
                thread::spawn(move || {
                    actor.advance_ns(d);
                    bar.wait(&actor);
                    // All leave the barrier at the last arrival's time or
                    // later (a waiter cannot run before the leader posted).
                    actor.now_ns()
                })
            })
            .collect();
        let times: Vec<u64> = h
            .into_iter()
            .map(|t| t.join().expect("worker thread panicked"))
            .collect();
        // Leader arrives at 30; everyone observes >= their own arrival and
        // the clock never exceeded 30 (no spurious advancement).
        assert!(times.iter().all(|&t| t <= 30));
        assert_eq!(clock.now_ns(), 30);
    }

    #[test]
    fn barrier_is_reusable() {
        let clock = SimClock::new();
        let bar = Arc::new(SimBarrier::new(clock.clone(), 2));
        let a = clock.register("a");
        let bar2 = bar.clone();
        let b = clock.register("b");
        let t = thread::spawn(move || {
            for _ in 0..10 {
                bar2.wait(&b);
            }
        });
        for _ in 0..10 {
            bar.wait(&a);
        }
        t.join().expect("worker thread panicked");
    }

    #[test]
    fn barrier_reports_one_leader() {
        let clock = SimClock::new();
        let bar = Arc::new(SimBarrier::new(clock.clone(), 4));
        let actors: Vec<_> = (0..4).map(|i| clock.register(format!("p{i}"))).collect();
        let h: Vec<_> = actors
            .into_iter()
            .map(|actor| {
                let bar = bar.clone();
                thread::spawn(move || bar.wait(&actor) as usize)
            })
            .collect();
        let leaders: usize = h
            .into_iter()
            .map(|t| t.join().expect("worker thread panicked"))
            .sum();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn monitor_wait_pops_exactly_once() {
        let clock = SimClock::new();
        let m = Arc::new(Monitor::new(clock.clone(), vec![1, 2, 3]));
        let a = clock.register("a");
        let v = m.wait(&a, |st| st.pop());
        assert_eq!(v, 3);
        assert_eq!(m.peek(|st| st.len()), 2);
    }
}
