//! The sectional coagulation model: physics shared by the reference and
//! distributed implementations.

/// Integration step for the explicit Euler update.
pub const DT: f32 = 1e-3;

/// Model parameters and state.
#[derive(Clone)]
pub struct NanoModel {
    /// Number of size sections (paper setup: `K = 3240`, making the
    /// coefficient matrix `K²·4 B ≈ 42 MB`).
    pub sections: usize,
    /// Base collision kernel, row-major `K × K` (constant part).
    pub coeff_base: Vec<f32>,
    /// Section concentrations.
    pub n: Vec<f32>,
}

impl NanoModel {
    /// Build the model: a smooth synthetic Brownian-like collision kernel
    /// `β(i,j) ~ (i+j+2)/(i·j+1)` scaled into f32 range, and an initial
    /// concentration spectrum concentrated in the smallest sections.
    pub fn new(sections: usize) -> Self {
        let mut coeff_base = vec![0.0f32; sections * sections];
        for i in 0..sections {
            for j in 0..sections {
                coeff_base[i * sections + j] =
                    ((i + j + 2) as f32) / ((i * j + 1) as f32).sqrt() * 1e-3;
            }
        }
        let n = (0..sections)
            .map(|i| 1.0f32 / ((i + 1) as f32 * (i + 1) as f32))
            .collect();
        NanoModel {
            sections,
            coeff_base,
            n,
        }
    }

    /// Per-step temperature scaling of the collision kernel — the reason
    /// the coefficients must be redistributed every step, as in the
    /// paper's application.
    pub fn theta(step: usize) -> f32 {
        1.0 + 0.01 * (step as f32 + 1.0)
    }

    /// The scaled coefficient rows `[r0, r1)` for `step`, row-major.
    pub fn scaled_rows(&self, step: usize, r0: usize, r1: usize) -> Vec<f32> {
        let th = Self::theta(step);
        self.coeff_base[r0 * self.sections..r1 * self.sections]
            .iter()
            .map(|&c| c * th)
            .collect()
    }

    /// Host-side nucleation/condensation: a cheap serial update of the
    /// smallest sections (stands in for the "other phenomena" the paper's
    /// host thread computes).
    pub fn host_phase(&mut self, step: usize) {
        let th = Self::theta(step);
        let k = self.sections.min(16);
        for i in 0..k {
            // nucleation feeds the smallest sections, condensation drains
            // them slightly into the next one.
            let nuc = 1e-4 / (i + 1) as f32 * th;
            self.n[i] += nuc;
            if i + 1 < self.sections {
                let cond = self.n[i] * 1e-3;
                self.n[i] -= cond;
                self.n[i + 1] += cond * 0.5;
            }
        }
    }

    /// Apply a computed coagulation rate vector.
    pub fn integrate(&mut self, dn: &[f32]) {
        assert_eq!(dn.len(), self.sections);
        for (n, d) in self.n.iter_mut().zip(dn) {
            *n = (*n + DT * d).max(0.0);
        }
    }
}

/// Coagulation rates for rows `[r0, r1)`: the discrete Smoluchowski
/// equation with kernel rows `coeff` (already temperature-scaled, local
/// row-major of width `n.len()`):
///
/// `dN_i = ½ Σ_{j≤i} β_{i,j} N_j N_{i−j}  −  N_i Σ_j β_{i,j} N_j`
///
/// This loop (gain triangular + loss full row) is the `O(K²)` kernel the
/// devices execute; identical code runs in the reference, so distributed
/// results are bitwise comparable.
pub fn coagulation_step(coeff: &[f32], n: &[f32], r0: usize, r1: usize, out: &mut [f32]) {
    let k = n.len();
    assert_eq!(coeff.len(), (r1 - r0) * k, "coefficient rows shape");
    assert_eq!(out.len(), r1 - r0);
    for i in r0..r1 {
        let row = &coeff[(i - r0) * k..(i - r0 + 1) * k];
        let mut gain = 0.0f32;
        for j in 0..=i {
            gain += row[j] * n[j] * n[i - j];
        }
        let mut loss = 0.0f32;
        for j in 0..k {
            loss += row[j] * n[j];
        }
        out[i - r0] = 0.5 * gain - n[i] * loss;
    }
}

/// Number of pair interactions evaluated for rows `[r0, r1)` (gain
/// triangle + full loss rows) — drives the device-time model.
pub fn pair_count(k: usize, r0: usize, r1: usize) -> usize {
    let gain: usize = (r0..r1).map(|i| i + 1).sum();
    gain + (r1 - r0) * k
}

/// Run the whole simulation single-threaded (the validation oracle).
/// Returns the final concentration vector.
pub fn reference_simulation(sections: usize, steps: usize) -> Vec<f32> {
    let mut m = NanoModel::new(sections);
    let mut dn = vec![0.0f32; sections];
    for step in 0..steps {
        m.host_phase(step);
        let rows = m.scaled_rows(step, 0, sections);
        coagulation_step(&rows, &m.n, 0, sections, &mut dn);
        m.integrate(&dn);
    }
    m.n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_initialization_is_positive_and_decreasing() {
        let m = NanoModel::new(64);
        assert!(m.n.iter().all(|&x| x > 0.0));
        assert!(m.n[0] > m.n[10]);
        assert_eq!(m.coeff_base.len(), 64 * 64);
    }

    #[test]
    fn theta_scales_rows() {
        let m = NanoModel::new(8);
        let r = m.scaled_rows(4, 2, 3);
        let expect: Vec<f32> = m.coeff_base[16..24]
            .iter()
            .map(|&c| c * NanoModel::theta(4))
            .collect();
        assert_eq!(r, expect);
    }

    #[test]
    fn coagulation_conserves_sign_structure() {
        let m = NanoModel::new(32);
        let rows = m.scaled_rows(0, 0, 32);
        let mut dn = vec![0.0f32; 32];
        coagulation_step(&rows, &m.n, 0, 32, &mut dn);
        // Smallest section only loses (no gain pairs besides 0+0).
        assert!(dn[31].abs() < dn[0].abs() * 1e3, "rates finite");
        assert!(dn.iter().any(|&d| d < 0.0), "loss exists");
    }

    #[test]
    fn block_decomposition_matches_full_run() {
        let m = NanoModel::new(48);
        let rows_full = m.scaled_rows(1, 0, 48);
        let mut full = vec![0.0f32; 48];
        coagulation_step(&rows_full, &m.n, 0, 48, &mut full);
        let mut blocked = vec![0.0f32; 48];
        for (r0, r1) in [(0usize, 16usize), (16, 40), (40, 48)] {
            let rows = m.scaled_rows(1, r0, r1);
            coagulation_step(&rows, &m.n, r0, r1, &mut blocked[r0..r1]);
        }
        assert_eq!(full, blocked, "row blocking is exact");
    }

    #[test]
    fn pair_count_totals() {
        let k = 10;
        let total = pair_count(k, 0, k);
        assert_eq!(total, (1..=k).sum::<usize>() + k * k);
        let split = pair_count(k, 0, 4) + pair_count(k, 4, 10);
        assert_eq!(split, total);
    }

    #[test]
    fn reference_simulation_is_deterministic_and_finite() {
        let a = reference_simulation(64, 5);
        let b = reference_simulation(64, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.is_finite() && *x >= 0.0));
    }
}
