//! # nanopowder — the paper's practical application (§V-D)
//!
//! A sectional model of binary-alloy nanopowder growth in thermal plasma
//! synthesis \[15\]. The structure mirrors the paper's parallelization:
//!
//! * Nucleation/condensation and global state live on **one host thread**
//!   (rank 0) — the serial phase.
//! * The **coagulation** routine (≈90% of the original serial runtime) is
//!   the parallel phase: the discrete Smoluchowski update over `K` size
//!   sections, `O(K²)` pair interactions per step, row-decomposed across
//!   ranks and executed on each rank's device.
//! * Every step, rank 0 distributes freshly-updated **coefficient data of
//!   ~42 MB** (the `K × K` collision-kernel matrix, temperature-scaled
//!   per step) plus the section concentrations to all ranks. This is the
//!   exposed communication Fig. 10 is about.
//!
//! Three implementations:
//!
//! * [`NanoVariant::Baseline`] — `MPI_Isend`/`MPI_Recv` into pageable
//!   host memory, then a blocking `clEnqueueWriteBuffer` ("just uses
//!   MPI_Isend and MPI_Recv for coefficient data distribution").
//! * [`NanoVariant::ClMpi`] — one `clEnqueueBcastBuffer`
//!   ([`clmpi::ClMpi::enqueue_bcast_buffer`]) per step: the coefficient
//!   matrix travels root → ranks as a pipelined store-and-forward
//!   broadcast of device buffers, and the coagulation kernel is
//!   event-chained to it.
//! * [`NanoVariant::ClMpiFanout`] — the paper's original shape:
//!   `MPI_Isend` with `MPI_CL_MEM` ([`clmpi::ClMpi::isend_cl`]) +
//!   `clEnqueueRecvBuffer` per rank, pipelined per transfer but
//!   serialized across destinations on rank 0's NIC.
//!
//! The distributed runs are validated bitwise against
//! [`reference_simulation`].

mod model;
mod run;

pub use model::{coagulation_step, reference_simulation, NanoModel};
pub use run::{run_nanopowder, run_nanopowder_mode, NanoConfig, NanoResult, NanoVariant};
