//! Distributed nanopowder simulation: baseline vs clMPI distribution.

use std::sync::Arc;

use clmpi::{ClMpi, SystemConfig};
use minicl::HostBuffer;
use minimpi::datatype::{bytes_to_f32, f32_as_bytes};
use minimpi::{run_world_faulty_mode, FaultPlan, Process, Tag};
use simtime::plock::Mutex;
use simtime::ExecMode;
use simtime::SimNs;

use crate::model::{coagulation_step, pair_count, NanoModel};

const TAG_N: Tag = 200; // concentration broadcast
const TAG_C: Tag = 201; // coefficient block distribution
const TAG_DN: Tag = 202; // rate gather

/// Virtual time of the serial host phase (nucleation, condensation, and
/// the rest of the host-resident physics) per step. Calibrated so the
/// host-resident physics is ~10% of the serial step — the paper reports
/// that coagulation is "about 90% of the total execution time of the
/// original code".
pub const HOST_PHASE_NS: SimNs = 40_000_000;

/// Arithmetic per pair interaction charged to the device: collision
/// kernel application plus the sectional redistribution of collision
/// products (interpolation weights across target sections).
pub const FLOPS_PER_PAIR: f64 = 600.0;

/// Device efficiency for this irregular, indirectly-indexed kernel — a
/// few percent of peak on the GT200 generation. Together with
/// [`FLOPS_PER_PAIR`] this puts the K=3240 coagulation at ≈380 ms/step on
/// one Tesla C1060, making it ~90% of the serial step as in the paper.
pub const COAG_EFFICIENCY: f64 = 0.04;

/// Which distribution implementation to run (paper §V-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NanoVariant {
    /// Plain `MPI_Isend`/`MPI_Recv` into pageable host memory, then a
    /// blocking `clEnqueueWriteBuffer`.
    Baseline,
    /// `clEnqueueBcastBuffer`: one pipelined device-buffer broadcast per
    /// step (ring/tree store-and-forward), kernel event-chained to it.
    ClMpi,
    /// The pre-collective clMPI shape: per-rank `MPI_Isend(MPI_CL_MEM)` +
    /// `clEnqueueRecvBuffer` fan-out, serialized on rank 0's NIC. Kept as
    /// a named variant so benches can show what the broadcast buys.
    ClMpiFanout,
}

impl NanoVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NanoVariant::Baseline => "baseline",
            NanoVariant::ClMpi => "clMPI",
            NanoVariant::ClMpiFanout => "clMPI-fanout",
        }
    }
}

/// Parameters of one simulation run.
#[derive(Clone)]
pub struct NanoConfig {
    /// Size sections; `sections² × 4 B` is the per-step coefficient
    /// volume (3240 → ≈42 MB as in the paper).
    pub sections: usize,
    /// Simulation steps.
    pub steps: usize,
    /// System preset (the paper evaluates on RICC).
    pub sys: SystemConfig,
    /// Ranks; must divide `sections` (the paper required a divisor of 40).
    pub nodes: usize,
}

/// Measured output.
#[derive(Debug, Clone)]
pub struct NanoResult {
    /// Average virtual time per simulation step.
    pub step_ns: SimNs,
    /// Total virtual time of the timed loop.
    pub total_ns: SimNs,
    /// Final concentration vector (rank 0's state) for validation.
    pub final_n: Vec<f32>,
    /// Scheduler machine transitions over the whole run (simulator
    /// self-throughput numerator; mode-independent).
    pub sched_events: u64,
}

/// Run `variant` under `cfg`.
pub fn run_nanopowder(variant: NanoVariant, cfg: NanoConfig) -> NanoResult {
    run_nanopowder_mode(variant, cfg, ExecMode::from_env())
}

/// [`run_nanopowder`] with an explicit executor mode for the in-world
/// machines, overriding the `SIM_EXEC_MODE` default.
pub fn run_nanopowder_mode(variant: NanoVariant, cfg: NanoConfig, mode: ExecMode) -> NanoResult {
    assert!(
        cfg.sections.is_multiple_of(cfg.nodes),
        "nodes ({}) must divide sections ({})",
        cfg.nodes,
        cfg.sections
    );
    let cluster = cfg.sys.cluster.clone();
    let nodes = cfg.nodes;
    let steps = cfg.steps;
    let cfg = Arc::new(cfg);
    let res = run_world_faulty_mode(
        cluster,
        nodes,
        FaultPlan::none(),
        mode,
        move |p: Process| rank_main(variant, &cfg, p),
    );
    let total_ns = res
        .outputs
        .iter()
        .map(|(t, _)| *t)
        .max()
        .unwrap_or(1)
        .max(1);
    let final_n = res.outputs[0].1.clone().expect("rank 0 returns state");
    NanoResult {
        step_ns: total_ns / steps as u64,
        total_ns,
        final_n,
        sched_events: res.events,
    }
}

type RankOut = (SimNs, Option<Vec<f32>>);

fn rank_main(variant: NanoVariant, cfg: &NanoConfig, p: Process) -> RankOut {
    let rank = p.rank();
    let nodes = cfg.nodes;
    let k = cfg.sections;
    let rows = k / nodes;
    let (r0, r1) = (rank * rows, (rank + 1) * rows);
    // The application distributes the FULL coefficient matrix to every
    // node each step (the paper's exposed 42 MB/step/node transfer); the
    // kernel then indexes its own row block.
    let full_bytes = k * k * 4;

    let rt = ClMpi::new(&p, cfg.sys.clone());
    let ctx = rt.context().clone();
    let q = ctx.create_queue(0, format!("r{rank}q"));
    let c_dev = ctx.create_buffer(full_bytes);
    let n_dev = ctx.create_buffer(k * 4);
    let dn_dev = ctx.create_buffer(rows * 4);
    let n_stage = HostBuffer::pinned(k * 4);
    let dn_stage = HostBuffer::pinned(rows * 4);
    // Baseline stages coefficients through pageable memory (the naive
    // pattern); the collective path pins its staging buffer once, as the
    // real application would, to seed the device-resident broadcast.
    let c_stage = match variant {
        NanoVariant::ClMpi => HostBuffer::pinned(full_bytes),
        _ => HostBuffer::pageable(full_bytes),
    };

    // Rank 0 owns the model; workers only hold per-step snapshots.
    let mut model = (rank == 0).then(|| NanoModel::new(k));
    // Workers need the base kernel too — in the real application each
    // node has the code but the *scaled per-step coefficients* must come
    // from the host thread; only rank 0 computes them here.

    let kernel_cost = {
        let pairs = pair_count(k, r0, r1);
        ctx.device(0)
            .spec()
            .compute_kernel_ns(pairs as f64 * FLOPS_PER_PAIR, COAG_EFFICIENCY)
    };

    p.comm.barrier(&p.actor);
    let t0 = p.actor.now_ns();
    for step in 0..cfg.steps {
        // --- Host phase + distribution (rank 0) ---
        let mut c_write = None;
        if let Some(m) = model.as_mut() {
            m.host_phase(step);
            p.actor.advance_ns(HOST_PHASE_NS);
            let n_bytes = f32_as_bytes(&m.n).to_vec();
            for r in 1..nodes {
                let _ = p.comm.isend(&p.actor, r, TAG_N, &n_bytes);
            }
            let full = m.scaled_rows(step, 0, k);
            let bytes = f32_as_bytes(&full);
            match variant {
                NanoVariant::Baseline => {
                    for r in 0..nodes {
                        let _ = p.comm.isend(&p.actor, r, TAG_C, bytes);
                    }
                }
                NanoVariant::ClMpiFanout => {
                    for r in 0..nodes {
                        let _ = rt.isend_cl(&p.actor, r, TAG_C, bytes);
                    }
                }
                NanoVariant::ClMpi => {
                    // Stage into the root's own device buffer once; the
                    // broadcast below fans it out chunk-pipelined.
                    c_stage.fill_from(bytes);
                    c_write = Some(
                        q.enqueue_write_buffer(
                            &p.actor,
                            &c_dev,
                            false,
                            0,
                            full_bytes,
                            &c_stage,
                            0,
                            &[],
                        )
                        .expect("stage coefficients"),
                    );
                }
            }
        }
        // --- Worker phase (every rank, including 0) ---
        let n_local: Vec<f32> = if rank == 0 {
            model.as_ref().expect("rank 0 model").n.clone()
        } else {
            bytes_to_f32(&p.comm.recv(&p.actor, Some(0), Some(TAG_N)).data)
        };
        n_stage.fill_from(f32_as_bytes(&n_local));
        let e_n = q
            .enqueue_write_buffer(&p.actor, &n_dev, false, 0, k * 4, &n_stage, 0, &[])
            .expect("write concentrations");
        let e_c = match variant {
            NanoVariant::Baseline => {
                // Blocking recv to pageable host memory, then a blocking
                // staged write — the conventional pattern.
                let got = p.comm.recv(&p.actor, Some(0), Some(TAG_C));
                assert_eq!(got.data.len(), full_bytes);
                c_stage.fill_from(&got.data);
                q.enqueue_write_buffer(&p.actor, &c_dev, false, 0, full_bytes, &c_stage, 0, &[])
                    .expect("write coefficients")
            }
            NanoVariant::ClMpiFanout => rt
                .enqueue_recv_buffer(&q, &c_dev, false, 0, full_bytes, 0, TAG_C, &[], &p.actor)
                .expect("recv coefficients"),
            NanoVariant::ClMpi => {
                let wl: Vec<_> = c_write.take().into_iter().collect();
                rt.enqueue_bcast_buffer(&q, &c_dev, 0, full_bytes, 0, TAG_C, &wl, &p.actor)
                    .expect("broadcast coefficients")
            }
        };
        // Coagulation kernel, gated on its inputs.
        let dn_shared = Arc::new(Mutex::new(vec![0.0f32; rows]));
        let (c2, n2, d2, dns) = (
            c_dev.clone(),
            n_dev.clone(),
            dn_dev.clone(),
            dn_shared.clone(),
        );
        let e_k = q.enqueue_kernel("coagulation", kernel_cost, &[e_n, e_c], move || {
            let mut out = vec![0.0f32; r1 - r0];
            // Read in place (consistent lock order: coefficients, then
            // concentrations) — no 42 MB clone per step.
            c2.read(|cb| {
                n2.read(|nb| {
                    let full = cb.as_f32();
                    coagulation_step(&full[r0 * k..r1 * k], nb.as_f32(), r0, r1, &mut out);
                })
            });
            d2.store(0, f32_as_bytes(&out)).expect("dn fits");
            *dns.lock() = out;
        });
        // Read rates back (blocking, after the kernel) and gather.
        q.enqueue_read_buffer(&p.actor, &dn_dev, true, 0, rows * 4, &dn_stage, 0, &[e_k])
            .expect("read rates");
        if rank == 0 {
            let m = model.as_mut().expect("rank 0 model");
            let mut dn_all = vec![0.0f32; k];
            dn_all[r0..r1].copy_from_slice(&dn_shared.lock());
            for _ in 1..nodes {
                let got = p.comm.recv(&p.actor, None, Some(TAG_DN));
                let src = got.status.source;
                dn_all[src * rows..(src + 1) * rows].copy_from_slice(&bytes_to_f32(&got.data));
            }
            m.integrate(&dn_all);
        } else {
            p.comm.send(&p.actor, 0, TAG_DN, &dn_stage.to_vec());
        }
    }
    rt.shutdown(&p.actor);
    p.comm.barrier(&p.actor);
    let total = p.actor.now_ns() - t0;
    (total, model.map(|m| m.n))
}
