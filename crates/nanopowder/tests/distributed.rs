//! Distributed-vs-reference validation and performance-shape checks.

use clmpi::SystemConfig;
use nanopowder::{reference_simulation, run_nanopowder, NanoConfig, NanoResult, NanoVariant};

fn cfg(nodes: usize, sections: usize, steps: usize) -> NanoConfig {
    NanoConfig {
        sections,
        steps,
        sys: SystemConfig::ricc(),
        nodes,
    }
}

fn run(variant: NanoVariant, nodes: usize) -> NanoResult {
    run_nanopowder(variant, cfg(nodes, 48, 4))
}

#[test]
fn baseline_matches_reference_single_node() {
    let res = run(NanoVariant::Baseline, 1);
    assert_eq!(res.final_n, reference_simulation(48, 4));
}

#[test]
fn baseline_matches_reference_four_nodes() {
    let res = run(NanoVariant::Baseline, 4);
    assert_eq!(res.final_n, reference_simulation(48, 4));
}

#[test]
fn clmpi_matches_reference_two_nodes() {
    let res = run(NanoVariant::ClMpi, 2);
    assert_eq!(res.final_n, reference_simulation(48, 4));
}

#[test]
fn clmpi_matches_reference_six_nodes() {
    let res = run(NanoVariant::ClMpi, 6);
    assert_eq!(res.final_n, reference_simulation(48, 4));
}

#[test]
fn variants_agree_with_each_other() {
    let a = run(NanoVariant::Baseline, 3);
    let b = run(NanoVariant::ClMpi, 3);
    assert_eq!(a.final_n, b.final_n, "physics independent of transport");
}

#[test]
fn clmpi_distribution_is_faster_with_large_coefficients() {
    // With a realistically-sized coefficient volume the pipelined
    // MPI_CL_MEM path must beat recv-then-write (Fig. 10's gap).
    // sections=720 → ~2 MB of coefficients at 4 nodes per rank per step.
    let c = NanoConfig {
        sections: 720,
        steps: 2,
        sys: SystemConfig::ricc(),
        nodes: 4,
    };
    let base = run_nanopowder(NanoVariant::Baseline, c.clone());
    let cl = run_nanopowder(NanoVariant::ClMpi, c);
    assert!(
        cl.total_ns < base.total_ns,
        "clMPI {} < baseline {}",
        cl.total_ns,
        base.total_ns
    );
}

#[test]
fn step_time_scales_down_with_nodes_then_flattens() {
    // Needs a section count at which coagulation dominates the 8 ms
    // serial host phase, or there is nothing to parallelize.
    let t1 = run_nanopowder(NanoVariant::ClMpi, cfg(1, 1680, 2)).step_ns;
    let t4 = run_nanopowder(NanoVariant::ClMpi, cfg(4, 1680, 2)).step_ns;
    assert!(t4 < t1, "parallel speedup: {t4} vs {t1}");
}

#[test]
#[should_panic(expected = "must divide")]
fn indivisible_decomposition_rejected() {
    run_nanopowder(NanoVariant::Baseline, cfg(7, 48, 1));
}
