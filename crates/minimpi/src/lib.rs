//! # minimpi — an MPI subset on the simulated fabric
//!
//! The clMPI paper implements its extension *on top of* MPI (Open MPI 1.6,
//! `MPI_THREAD_MULTIPLE`). This crate is that substrate: an MPI-shaped
//! message-passing library whose ranks are threads of one process, whose
//! wire is [`simnet`], and whose time is [`simtime`] virtual time.
//!
//! Supported (the subset the paper's codes use, plus the common core):
//!
//! * SPMD launch: [`run_world`] starts `n` ranks, each on its own thread
//!   with its own clock [`simtime::Actor`].
//! * Point-to-point: [`Comm::send`]/[`Comm::recv`] (blocking),
//!   [`Comm::isend`]/[`Comm::irecv`] (non-blocking, [`Request`]-based),
//!   [`Comm::sendrecv`], wildcard source/tag, **non-overtaking** matching
//!   in posted order on both sides.
//! * Requests: [`Request::wait`], [`Request::test`], [`wait_all`].
//! * One-sided: [`Win`] windows (`Win_create`, `Put`/`Get`/`Accumulate`,
//!   fence and passive-target lock/unlock epochs) routed through the
//!   fabric's RMA transport — loopback, NIC, or a CXL pool port.
//! * Collectives: [`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::gather`].
//! * Thread safety: every call takes the calling thread's [`simtime::Actor`]
//!   explicitly; any number of threads per rank may communicate
//!   concurrently (the `MPI_THREAD_MULTIPLE` the paper requires for its
//!   internal communication thread).
//!
//! Deliberate deviations from real MPI, documented for reviewers:
//!
//! * Buffers are byte slices; typed helpers live in [`datatype`]. A
//!   [`Datatype`] tag travels with each message so the clMPI runtime can
//!   implement the paper's `MPI_CL_MEM` protocol.
//! * Sends are *buffered* (eager): `isend` snapshots the payload and
//!   reserves fabric capacity immediately; the request completes at
//!   injection end. This matches DMA-capable NICs and is what lets
//!   communication progress with no host thread involvement — the property
//!   clMPI builds on.
//! * `irecv` returns the payload from `wait` instead of writing through a
//!   held `&mut` borrow (Rust aliasing); `recv`/`recv_into` copy into a
//!   caller buffer.

pub mod collectives;
pub mod datatype;
mod ft;
mod launch;
mod p2p;
pub mod rma;
mod world;

pub use collectives::ReduceOp;
pub use datatype::{CommittedType, Datatype, DatatypeError, DerivedType};
pub use launch::{
    run_world, run_world_faulty, run_world_faulty_mode, run_world_sized, WorldResult,
};
pub use p2p::{wait_all, wait_any, MpiError, RecvResult, Request, Status};
pub use rma::{RmaHandle, RmaPoll, RmaRoute, Win, RMA_PATIENCE_NS, RMA_TAG_BASE};
pub use world::{Comm, Process, World, ANY_SOURCE, ANY_TAG, MAX_USER_TAG};

// Fault-plan types come from the fabric layer; re-exported so apps can
// build failure scenarios without depending on `simnet` directly.
pub use simnet::{DropReason, FaultCounts, FaultPlan, FaultPlanError, NodeDownWindow};

/// Rank index within a world.
pub type Rank = usize;
/// Message tag. User tags must lie in `0..=MAX_USER_TAG`; higher values are
/// reserved for collectives and the clMPI runtime.
pub type Tag = i32;
