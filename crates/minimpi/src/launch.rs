//! SPMD launcher: run `n` ranks as threads over a simulated cluster.

use simnet::{ClusterSpec, FaultCounts, FaultPlan};
use simtime::{ExecMode, SimClock, SimNs, Trace};

use crate::world::{Process, World};

/// Everything a finished world run produces.
pub struct WorldResult<R> {
    /// Per-rank return values, indexed by rank.
    pub outputs: Vec<R>,
    /// Final virtual time when the last rank finished.
    pub elapsed_ns: SimNs,
    /// The activity trace recorded during the run.
    pub trace: Trace,
    /// Fault counters accumulated by the fabric (all zero when the run
    /// used a [`FaultPlan::none`] plan).
    pub fault_counts: FaultCounts,
    /// Machine state transitions counted by the scheduler cores (clMPI
    /// engines, command-queue executors) — the simulator self-throughput
    /// numerator. Deterministic for a fixed scenario and identical in
    /// both executor modes.
    pub events: u64,
}

/// Run `f` on every rank of a world sized to the full cluster preset.
pub fn run_world<R, F>(spec: ClusterSpec, f: F) -> WorldResult<R>
where
    R: Send + 'static,
    F: Fn(Process) -> R + Send + Sync + 'static,
{
    let nodes = spec.nodes;
    run_world_sized(spec, nodes, f)
}

/// Run `f` on `nodes` ranks over `spec`'s interconnect. Each rank runs on
/// its own OS thread with its own virtual-time actor; the returned
/// [`WorldResult::elapsed_ns`] is the virtual makespan of the slowest rank.
///
/// Panics in any rank poison the clock and propagate to the caller.
pub fn run_world_sized<R, F>(spec: ClusterSpec, nodes: usize, f: F) -> WorldResult<R>
where
    R: Send + 'static,
    F: Fn(Process) -> R + Send + Sync + 'static,
{
    run_world_faulty(spec, nodes, FaultPlan::none(), f)
}

/// [`run_world_sized`] with a fault plan attached to the fabric: messages
/// may be dropped, delayed, or blocked by link-down windows, all
/// deterministically from `plan.seed`. [`FaultPlan::none`] reproduces
/// [`run_world_sized`] bit-identically.
pub fn run_world_faulty<R, F>(
    spec: ClusterSpec,
    nodes: usize,
    plan: FaultPlan,
    f: F,
) -> WorldResult<R>
where
    R: Send + 'static,
    F: Fn(Process) -> R + Send + Sync + 'static,
{
    run_world_faulty_mode(spec, nodes, plan, ExecMode::from_env(), f)
}

/// [`run_world_faulty`] with an explicit executor mode for the auxiliary
/// machines (clMPI engines, command-queue executors), overriding the
/// `SIM_EXEC_MODE` environment default. Rank bodies always run on their
/// own OS threads; the mode only selects how machines spawned *inside*
/// the world execute. Both modes produce identical virtual timings —
/// [`ExecMode::Threads`] serves as the differential oracle for
/// [`ExecMode::Events`].
pub fn run_world_faulty_mode<R, F>(
    spec: ClusterSpec,
    nodes: usize,
    plan: FaultPlan,
    mode: ExecMode,
    f: F,
) -> WorldResult<R>
where
    R: Send + 'static,
    F: Fn(Process) -> R + Send + Sync + 'static,
{
    let clock = SimClock::with_mode(mode);
    let world = World::with_faults(clock.clone(), spec, nodes, plan);
    let trace = world.trace().clone();
    // Register every rank's actor before spawning any thread (see
    // `SimClock::register` for the ordering rule).
    let processes: Vec<Process> = (0..nodes)
        .map(|r| Process {
            comm: world.comm(r),
            actor: clock.register(format!("rank{r}")),
        })
        .collect();
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = processes
        .into_iter()
        .enumerate()
        .map(|(r, proc_)| {
            let f = f.clone();
            std::thread::Builder::new()
                .name(format!("rank{r}"))
                .spawn(move || f(proc_))
                .expect("spawn rank thread")
        })
        .collect();
    let outputs: Vec<R> = handles
        .into_iter()
        .map(|h| {
            let name = h.thread().name().unwrap_or("<unnamed rank>").to_owned();
            h.join().unwrap_or_else(|payload| {
                // Re-raise the rank's own panic payload so the original
                // assertion message (not a generic wrapper) reaches the
                // harness; the thread name says which rank died.
                eprintln!("minimpi: {name} panicked; propagating its panic");
                std::panic::resume_unwind(payload)
            })
        })
        .collect();
    // Event mode: the ranks' drop paths only *signal* their machines
    // (queue shutdowns, engine drains) — the shard workers process those
    // final transitions asynchronously. Wait for every shard to drain and
    // retire before reading the clock, or `events`/`elapsed_ns` would be
    // timing-dependent where the thread-mode oracle (which joins machine
    // threads inside the rank bodies) is complete. No-op in thread mode.
    clock.quiesce_machines();
    // Grant any deferred sends still in the arbiter (fire-and-forget
    // isends nobody waited on), single-threaded and in canonical order,
    // so their trace spans and fault counters land deterministically.
    world.drain_deferred();
    WorldResult {
        elapsed_ns: clock.now_ns(),
        outputs,
        trace,
        fault_counts: world.fault_counts(),
        events: clock.events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::ReduceOp;
    use crate::{ANY_SOURCE, ANY_TAG};

    #[test]
    fn world_launch_returns_per_rank_outputs() {
        let res = run_world_sized(ClusterSpec::cichlid(), 4, |p| p.rank() * 10);
        assert_eq!(res.outputs, vec![0, 10, 20, 30]);
    }

    #[test]
    fn ping_pong_roundtrip_and_timing() {
        let res = run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            let payload = vec![p.rank() as u8; 1024];
            if p.rank() == 0 {
                p.comm.send(&p.actor, 1, 7, &payload);
                let back = p.comm.recv(&p.actor, Some(1), Some(8));
                assert_eq!(back.data, vec![1u8; 1024]);
            } else {
                let got = p.comm.recv(&p.actor, Some(0), Some(7));
                assert_eq!(got.data, vec![0u8; 1024]);
                p.comm.send(&p.actor, 0, 8, &payload);
            }
            p.actor.now_ns()
        });
        // Two messages, each at least latency + overhead on GbE.
        let spec = ClusterSpec::cichlid();
        let one_way = spec.link.message_ns(1024);
        assert!(res.elapsed_ns >= 2 * one_way);
        assert!(res.elapsed_ns < 4 * one_way, "no spurious serialization");
    }

    #[test]
    fn wildcard_receive_sees_all_sources() {
        let res = run_world_sized(ClusterSpec::cichlid(), 4, |p| {
            if p.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..3 {
                    let r = p.comm.recv(&p.actor, ANY_SOURCE, ANY_TAG);
                    sum += r.data[0] as u64;
                    assert_eq!(r.status.len, 1);
                }
                sum
            } else {
                p.comm.send(&p.actor, 0, p.rank() as i32, &[p.rank() as u8]);
                0
            }
        });
        assert_eq!(res.outputs[0], 1 + 2 + 3);
    }

    #[test]
    fn non_overtaking_same_signature() {
        let res = run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            if p.rank() == 0 {
                // Same (src, tag): must be received in send order even
                // though the first is much larger (arrives later).
                let big = vec![1u8; 1 << 20];
                let small = vec![2u8; 8];
                let r1 = p.comm.isend(&p.actor, 1, 5, &big);
                let r2 = p.comm.isend(&p.actor, 1, 5, &small);
                r1.wait(&p.actor);
                r2.wait(&p.actor);
                0
            } else {
                let first = p.comm.recv(&p.actor, Some(0), Some(5));
                let second = p.comm.recv(&p.actor, Some(0), Some(5));
                assert_eq!(first.data[0], 1, "big message matched first");
                assert_eq!(second.data[0], 2);
                1
            }
        });
        assert_eq!(res.outputs, vec![0, 1]);
    }

    #[test]
    fn isend_overlaps_with_compute() {
        // A rank that isends 8 MB and computes 50 ms should finish in
        // ~max(send, compute), not the sum.
        let spec = ClusterSpec::cichlid();
        let send_ns = spec.link.injection_ns(8 << 20);
        assert!(
            send_ns > 50_000_000,
            "test premise: send slower than compute"
        );
        let res = run_world_sized(spec, 2, |p| {
            if p.rank() == 0 {
                let data = vec![0u8; 8 << 20];
                let req = p.comm.isend(&p.actor, 1, 1, &data);
                p.host_compute_ns(50_000_000); // overlapped compute
                req.wait(&p.actor);
            } else {
                p.comm.recv(&p.actor, Some(0), Some(1));
            }
            p.actor.now_ns()
        });
        let sender_end = res.outputs[0];
        assert!(sender_end >= send_ns);
        assert!(
            sender_end < send_ns + 10_000_000,
            "compute fully overlapped with the send: {} vs {}",
            sender_end,
            send_ns
        );
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let res = run_world_sized(ClusterSpec::ricc(), 2, |p| {
            let peer = 1 - p.rank();
            let mine = vec![p.rank() as u8 + 10; 4096];
            let got = p
                .comm
                .sendrecv(&p.actor, peer, 3, &mine, Some(peer), Some(3));
            got.data[0]
        });
        assert_eq!(res.outputs, vec![11, 10]);
    }

    #[test]
    fn barrier_aligns_ranks() {
        let res = run_world_sized(ClusterSpec::ricc(), 8, |p| {
            p.host_compute_ns((p.rank() as u64 + 1) * 1_000_000);
            p.comm.barrier(&p.actor);
            p.actor.now_ns()
        });
        // No rank may leave before the slowest (8 ms) rank arrived —
        // exactly what the 3 dissemination rounds transitively enforce.
        let t0 = res.outputs[0];
        assert!(res.outputs.iter().all(|&t| t >= 8_000_000));
        // All ranks leave within a few empty-message round-trips of each
        // other: ⌈log₂ 8⌉ = 3 rounds, no single-rank release point.
        assert!(res.outputs.iter().all(|&t| t.abs_diff(t0) < 5_000_000));
    }

    #[test]
    fn barrier_has_no_rank0_serialization_point() {
        // With n ranks the old flat gather-release put 2(n − 1) messages
        // on rank 0's NIC; dissemination spreads ⌈log₂ n⌉ rounds evenly,
        // so the exit time must grow sublinearly in n. Compare the
        // barrier cost itself at n = 4 vs n = 32 from a common start.
        let cost = |n: usize| {
            let res = run_world_sized(ClusterSpec::ricc(), n, |p| {
                let t0 = p.actor.now_ns();
                p.comm.barrier(&p.actor);
                p.actor.now_ns() - t0
            });
            res.outputs.into_iter().max().unwrap()
        };
        let c4 = cost(4);
        let c32 = cost(32);
        // log₂ 32 / log₂ 4 = 2.5 rounds ratio; flat would be ~31/3 ≈ 10×.
        assert!(
            c32 < c4 * 5,
            "dissemination barrier must scale ~log n: {c32} vs {c4}"
        );
    }

    #[test]
    fn bcast_delivers_to_all_from_any_root() {
        for root in [0usize, 2] {
            let res = run_world_sized(ClusterSpec::ricc(), 5, move |p| {
                let data = (p.rank() == root).then(|| vec![9u8, 8, 7]);
                p.comm.bcast(&p.actor, root, data.as_deref())
            });
            for out in res.outputs {
                assert_eq!(out, vec![9, 8, 7]);
            }
        }
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        let res = run_world_sized(ClusterSpec::ricc(), 6, |p| {
            let v = vec![p.rank() as f64, 1.0];
            let r = p.comm.reduce(&p.actor, 0, ReduceOp::Sum, &v);
            let a = p.comm.allreduce(&p.actor, ReduceOp::Max, &v);
            (r, a)
        });
        let (root_sum, _) = &res.outputs[0];
        assert_eq!(root_sum.as_deref(), Some(&[15.0, 6.0][..]));
        for (i, (_, amax)) in res.outputs.iter().enumerate() {
            assert_eq!(amax, &[5.0, 1.0], "rank {i} allreduce result");
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let res = run_world_sized(ClusterSpec::ricc(), 4, |p| {
            let chunks =
                (p.rank() == 1).then(|| (0..4).map(|r| vec![r as u8; r + 1]).collect::<Vec<_>>());
            p.comm.scatter(&p.actor, 1, chunks.as_deref())
        });
        for (r, out) in res.outputs.iter().enumerate() {
            assert_eq!(out, &vec![r as u8; r + 1]);
        }
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let res = run_world_sized(ClusterSpec::ricc(), 3, |p| {
            p.comm
                .allgather(&p.actor, &vec![p.rank() as u8; p.rank() + 2])
        });
        let expect: Vec<Vec<u8>> = (0..3).map(|r| vec![r as u8; r + 2]).collect();
        for out in res.outputs {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn wait_any_returns_earliest_completion() {
        let res = run_world_sized(ClusterSpec::cichlid(), 3, |p| {
            if p.rank() == 0 {
                // Two receives: rank 2 sends immediately, rank 1 late.
                let r1 = p.comm.irecv(&p.actor, Some(1), Some(1));
                let r2 = p.comm.irecv(&p.actor, Some(2), Some(2));
                let (idx, res, rest) = crate::wait_any(vec![r1, r2], &p.actor);
                assert_eq!(idx, 1, "rank 2's message lands first");
                assert_eq!(res.expect("recv").data, vec![2]);
                let (idx2, res2, rest2) = crate::wait_any(rest, &p.actor);
                assert_eq!(idx2, 0);
                assert_eq!(res2.expect("recv").data, vec![1]);
                assert!(rest2.is_empty());
            } else if p.rank() == 1 {
                p.host_compute_ns(5_000_000);
                p.comm.send(&p.actor, 0, 1, &[1]);
            } else {
                p.comm.send(&p.actor, 0, 2, &[2]);
            }
        });
        assert_eq!(res.outputs.len(), 3);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let res = run_world_sized(ClusterSpec::ricc(), 4, |p| {
            p.comm.gather(&p.actor, 0, &[p.rank() as u8])
        });
        let gathered = res.outputs[0].as_ref().expect("root output");
        assert_eq!(gathered, &vec![vec![0u8], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn split_creates_isolated_subcommunicators() {
        // 6 ranks → even/odd halves. Traffic in one child never matches
        // receives in the other, and local ranks are dense.
        let res = run_world_sized(ClusterSpec::ricc(), 6, |p| {
            let color = (p.rank() % 2) as i32;
            let sub = p
                .comm
                .split(&p.actor, Some(color), p.rank() as i32)
                .expect("colored ranks get a communicator");
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), p.rank() / 2, "sorted by key = world rank");
            // Ring within the sub-communicator, same tag in both halves.
            let next = (sub.rank() + 1) % sub.size();
            let prev = (sub.rank() + sub.size() - 1) % sub.size();
            let got = sub.sendrecv(
                &p.actor,
                next,
                7,
                &[sub.rank() as u8 + 10 * color as u8],
                Some(prev),
                Some(7),
            );
            assert_eq!(got.status.source, prev, "status reports local rank");
            got.data[0]
        });
        // Each rank received from its sub-ring predecessor with the
        // half's own marker — no cross-talk between contexts.
        for (world_rank, v) in res.outputs.iter().enumerate() {
            let color = (world_rank % 2) as u8;
            let local = world_rank / 2;
            let prev = (local + 2) % 3;
            assert_eq!(*v, prev as u8 + 10 * color, "rank {world_rank}");
        }
    }

    #[test]
    fn split_undefined_color_yields_none() {
        let res = run_world_sized(ClusterSpec::ricc(), 4, |p| {
            let color = (p.rank() < 2).then_some(0);
            let sub = p.comm.split(&p.actor, color, 0);
            match (&sub, p.rank()) {
                (Some(c), 0 | 1) => assert_eq!(c.size(), 2),
                (None, 2 | 3) => {}
                other => panic!("unexpected split outcome: {:?}", other.1),
            }
            sub.is_some()
        });
        assert_eq!(res.outputs, vec![true, true, false, false]);
    }

    #[test]
    fn split_extreme_color_is_not_undefined() {
        // Regression: `Some(i32::MIN)` used to collide with the internal
        // `None` sentinel and silently drop the rank from every child.
        let res = run_world_sized(ClusterSpec::ricc(), 4, |p| {
            let color = if p.rank() < 2 { Some(i32::MIN) } else { None };
            let sub = p.comm.split(&p.actor, color, p.rank() as i32);
            match (&sub, p.rank()) {
                (Some(c), 0 | 1) => {
                    assert_eq!(c.size(), 2, "i32::MIN is a real color");
                    assert_eq!(c.rank(), p.rank());
                }
                (None, 2 | 3) => {}
                other => panic!("unexpected split outcome for rank {}", other.1),
            }
            sub.is_some()
        });
        assert_eq!(res.outputs, vec![true, true, false, false]);
    }

    #[test]
    fn split_collectives_work_within_child() {
        let res = run_world_sized(ClusterSpec::ricc(), 6, |p| {
            let color = (p.rank() / 3) as i32; // {0,1,2} and {3,4,5}
            let sub = p.comm.split(&p.actor, Some(color), 0).expect("member");
            let v = vec![p.rank() as f64];
            let sum = sub.allreduce(&p.actor, ReduceOp::Sum, &v);
            sum[0]
        });
        assert_eq!(res.outputs, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
    }

    #[test]
    fn test_polls_without_blocking() {
        let res = run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            if p.rank() == 0 {
                p.comm.send(&p.actor, 1, 2, &[42]);
                0
            } else {
                let mut req = p.comm.irecv(&p.actor, Some(0), Some(2));
                let mut polls = 0u32;
                loop {
                    match req.test(&p.actor) {
                        Some(Some(r)) => {
                            assert_eq!(r.data, vec![42]);
                            break;
                        }
                        Some(None) => unreachable!("recv request yields payload"),
                        None => {
                            polls += 1;
                            p.host_compute_ns(10_000); // poll loop does work
                        }
                    }
                }
                polls
            }
        });
        assert!(res.outputs[1] > 0, "message was genuinely in flight");
    }

    #[test]
    fn fault_free_plan_reproduces_default_run_exactly() {
        let job = |p: Process| {
            let peer = 1 - p.rank();
            let got = p.comm.sendrecv(
                &p.actor,
                peer,
                3,
                &vec![p.rank() as u8; 8192],
                Some(peer),
                Some(3),
            );
            (got.data[0], p.actor.now_ns())
        };
        let a = run_world_sized(ClusterSpec::cichlid(), 2, job);
        let b = run_world_faulty(ClusterSpec::cichlid(), 2, FaultPlan::none(), job);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(b.fault_counts, FaultCounts::default());
    }

    #[test]
    fn dropped_send_is_observed_by_sender_and_times_out_receiver() {
        // Drop probability 1.0: every data message is lost.
        let plan = FaultPlan::drops(42, 1.0);
        let res = run_world_faulty(ClusterSpec::cichlid(), 2, plan, |p| {
            if p.rank() == 0 {
                let req = p.comm.isend(&p.actor, 1, 7, &[1u8; 1024]);
                let delivered = req.wait_delivered(&p.actor);
                req.wait(&p.actor);
                u64::from(delivered)
            } else {
                match p.comm.recv_timeout(&p.actor, Some(0), Some(7), 5_000_000) {
                    Err(crate::MpiError::Timeout { waited_ns }) => waited_ns,
                    other => panic!("expected timeout, got {other:?}"),
                }
            }
        });
        assert_eq!(res.outputs[0], 0, "sender saw the loss");
        assert_eq!(res.outputs[1], 5_000_000, "receiver timed out");
        assert_eq!(res.fault_counts.dropped(), 1);
        assert!(
            res.trace.spans().iter().any(|s| s.lane == "net.fault"),
            "drop recorded in the trace"
        );
    }

    #[test]
    fn same_fault_seed_same_run() {
        let job = |p: Process| {
            if p.rank() == 0 {
                let mut delivered = 0u64;
                for i in 0..50 {
                    let req = p.comm.isend(&p.actor, 1, 5, &[i as u8; 4096]);
                    delivered += u64::from(req.wait_delivered(&p.actor));
                    req.wait(&p.actor);
                }
                delivered
            } else {
                let mut got = 0u64;
                while p
                    .comm
                    .recv_timeout(&p.actor, Some(0), Some(5), 20_000_000)
                    .is_ok()
                {
                    got += 1;
                }
                got
            }
        };
        let plan = FaultPlan::drops(7, 0.3).with_jitter(50_000);
        let a = run_world_faulty(ClusterSpec::cichlid(), 2, plan.clone(), job);
        let b = run_world_faulty(ClusterSpec::cichlid(), 2, plan, job);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.fault_counts, b.fault_counts);
        assert_eq!(
            a.outputs[0], a.outputs[1],
            "every delivered message was received"
        );
        assert!(a.outputs[0] < 50, "a 30% plan dropped something");
    }

    #[test]
    fn tag_floor_spares_control_traffic() {
        // Floor above every user/collective tag: barriers stay reliable
        // even under a 100% drop plan for data tags.
        let plan = FaultPlan::drops(9, 1.0).with_tag_floor(1 << 22);
        let res = run_world_faulty(ClusterSpec::ricc(), 4, plan, |p| {
            p.comm.barrier(&p.actor);
            p.comm.send(&p.actor, (p.rank() + 1) % 4, 2, &[1]);
            p.comm.recv(&p.actor, None, Some(2)).data[0]
        });
        assert_eq!(res.outputs, vec![1, 1, 1, 1]);
        assert_eq!(res.fault_counts.dropped(), 0);
    }

    #[test]
    fn cancel_withdraws_unmatched_recv() {
        let res = run_world_faulty(ClusterSpec::cichlid(), 2, FaultPlan::none(), |p| {
            if p.rank() == 0 {
                // Never-matching receive: cancellable.
                let req = p.comm.irecv(&p.actor, Some(1), Some(99));
                let cancelled = req.cancel();
                // A real message on another tag still flows normally.
                let got = p.comm.recv(&p.actor, Some(1), Some(1));
                (cancelled, got.data.len())
            } else {
                p.comm.send(&p.actor, 0, 1, &[5u8; 16]);
                (false, 0)
            }
        });
        assert_eq!(res.outputs[0], (true, 16));
    }

    #[test]
    fn wait_timeout_returns_payload_when_in_time() {
        let res = run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            if p.rank() == 0 {
                p.comm.send(&p.actor, 1, 4, &[9u8; 256]);
                0
            } else {
                let req = p.comm.irecv(&p.actor, Some(0), Some(4));
                let r = req
                    .wait_timeout(&p.actor, 1_000_000_000)
                    .expect("arrives well before the deadline")
                    .expect("recv yields payload");
                r.data.len() as u64
            }
        });
        assert_eq!(res.outputs[1], 256);
    }

    #[test]
    #[should_panic(expected = "message of 128 bytes truncated into 16-byte buffer")]
    fn recv_into_truncation_panics() {
        run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            if p.rank() == 0 {
                p.comm.send(&p.actor, 1, 1, &[0u8; 128]);
            } else {
                let mut small = [0u8; 16];
                p.comm.recv_into(&p.actor, Some(0), Some(1), &mut small);
            }
        });
    }
}
