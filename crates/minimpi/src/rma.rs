//! One-sided communication: MPI windows over the fabric's RMA transport.
//!
//! An MPI-3 subset shaped like the paper's natural next step past
//! two-sided transfers: [`Win`] (`MPI_Win_create`), [`Win::put`],
//! [`Win::get`], [`Win::accumulate`], with **fence** epochs
//! (`MPI_Win_fence`) and **passive-target** exclusive lock/unlock epochs
//! (`MPI_Win_lock`/`unlock`). Epoch ordering is validated: an access
//! outside any epoch, a nested lock, or an unlock without a lock returns
//! the documented [`MpiError`] instead of corrupting memory or hanging.
//!
//! ## Transport
//!
//! Window traffic bypasses the two-sided matching path entirely: each op
//! claims fabric time through [`simnet::Fabric::reserve_rma`], which
//! routes the `(origin, target)` node pair by fabric class — shared-memory
//! loopback, the NIC tx/rx pair, or (on CXL-pooled clusters) the pool's
//! single load/store timeline. Reservations go through the deferred
//! arbiter, so same-instant claims on a shared pool port are granted in
//! canonical `(earliest, src, dst, tag, seq)` order and runs are
//! byte-deterministic in both exec modes.
//!
//! ## Faults
//!
//! NIC-routed ops compose with the full [`crate::FaultPlan`] (random drops
//! are retransmitted with exponential virtual-time backoff); the CXL
//! load/store path has no packets to drop, but a scheduled node death
//! still poisons ops touching the dead node's memory
//! ([`MpiError::ProcFailed`]). Epoch-closing calls carry a patience
//! deadline whenever a fault plan is attached, classifying expiry against
//! the plan's ground truth instead of wedging.
//!
//! ## Memory model
//!
//! All ranks are threads of one process, so a window is literally shared
//! memory: per-rank byte segments behind [`Monitor`]s. An op's effect is
//! applied when the arbiter grants its reservation (canonical order), and
//! its completion instant is the transfer's arrival; epoch-closing calls
//! wait for those instants, which is where MPI's "visible after
//! synchronization" rule comes from in this model.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use simnet::{DropReason, FabricClass, FaultOutcome, Reservation};
use simtime::plock::Mutex;
use simtime::{Actor, Monitor, SimNs};

use crate::collectives::ReduceOp;
use crate::datatype::{f64_as_bytes, try_bytes_to_f64};
use crate::p2p::MpiError;
use crate::world::Comm;
use crate::Rank;

/// Base of the tag space window traffic flows under. Above
/// `MAX_USER_TAG` and the collective spaces, and above the clMPI data
/// plane's fault-plan tag floor, so drop plans scoped to the data plane
/// hit RMA traffic exactly like two-sided transfers.
pub const RMA_TAG_BASE: i32 = 1 << 23;

/// Retransmit budget for a dropped one-sided transfer.
const MAX_RMA_ATTEMPTS: u32 = 30;

/// Patience for epoch-closing synchronization when a fault plan is
/// attached (virtual ns); expiry is classified against the plan.
pub const RMA_PATIENCE_NS: SimNs = 5_000_000_000;

/// Exponential virtual-time backoff before retransmitting attempt
/// `attempt` (0-based), capped at 50 ms.
fn backoff_ns(attempt: u32) -> SimNs {
    (200_000u64 << attempt.min(8)).min(50_000_000)
}

/// How a one-sided op claims wire time. The default class-routing is what
/// `MPI_Put` semantics imply; the forced-NIC variants exist for the clMPI
/// layer's strategy sweeps, which lower the *same* put over the two-sided
/// wire path (staged or fused) to compare against the RMA transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaRoute {
    /// Class-routed by node pair: loopback, CXL pool port, or NIC.
    Auto,
    /// Force the NIC tx/rx pair at the byte rate (staged two-sided
    /// emulation; a loopback pair still takes loopback).
    Nic,
    /// Force the NIC pair for an explicit wire duration (fused map-stream
    /// emulation: the claim covers `max(injection, PCIe stream)`).
    NicDuration(SimNs),
}

/// Per-target passive lock: the holder plus a queue of `(request instant,
/// requester)` pairs, granted in `(instant, rank)` order once the clock
/// has strictly passed the request instant (same-instant requests from
/// racing OS threads resolve canonically, not by thread order).
#[derive(Default, Clone)]
struct LockState {
    holder: Option<Rank>,
    queue: Vec<(SimNs, Rank)>,
}

/// Shared control state of one window (all ranks).
struct WinCtrl {
    /// Exposed bytes per (local) rank.
    sizes: Vec<usize>,
    /// Completed fence-arrival count per rank.
    fence_gen: Vec<u64>,
    /// Virtual instant of each rank's latest fence arrival.
    fence_at: Vec<SimNs>,
    locks: Vec<LockState>,
}

/// The cross-rank shared state of a window: per-rank memory segments plus
/// the synchronization control block. Lives in the world's window
/// registry; every rank's [`Win`] handle points at the same instance.
pub struct WinShared {
    segments: Vec<Arc<Monitor<Vec<u8>>>>,
    ctrl: Arc<Monitor<WinCtrl>>,
}

impl WinShared {
    fn new(clock: simtime::SimClock, n: usize) -> Self {
        WinShared {
            segments: (0..n)
                .map(|_| Arc::new(Monitor::new(clock.clone(), Vec::new())))
                .collect(),
            ctrl: Arc::new(Monitor::new(
                clock,
                WinCtrl {
                    sizes: vec![0; n],
                    fence_gen: vec![0; n],
                    fence_at: vec![0; n],
                    locks: vec![LockState::default(); n],
                },
            )),
        }
    }

    /// Grant due lock requests in canonical order. Only call when
    /// [`WinCtrl`] is already being mutated (see `grants_due`).
    fn grant_locks(c: &mut WinCtrl, now: SimNs) {
        for l in &mut c.locks {
            if l.holder.is_none() {
                if let Some(&best) = l.queue.iter().filter(|(t, _)| *t < now).min() {
                    l.queue.retain(|&e| e != best);
                    l.holder = Some(best.1);
                }
            }
        }
    }

    /// True if `grant_locks` would change anything at `now` (checked
    /// read-only first, so wait predicates do not notify on every poll).
    fn grants_due(c: &WinCtrl, now: SimNs) -> bool {
        c.locks
            .iter()
            .any(|l| l.holder.is_none() && l.queue.iter().any(|(t, _)| *t < now))
    }
}

/// Per-handle (per-rank) epoch state.
struct LocalEpoch {
    /// True once a fence has opened the window for active-target access.
    fence_open: bool,
    /// Targets this rank currently holds passive locks on.
    locked: BTreeSet<Rank>,
    /// Ops issued in the current epoch, settled by the next closing call.
    pending: Vec<RmaHandle>,
    /// First op failure observed this epoch (reported by the closing call).
    epoch_err: Option<MpiError>,
}

/// A one-sided communication window (`MPI_Win`): this rank's handle onto
/// the collectively created shared state. Clones share the rank's epoch
/// state (thread-multiple semantics, like [`Comm`]).
#[derive(Clone)]
pub struct Win {
    comm: Comm,
    shared: Arc<WinShared>,
    epoch: Arc<Mutex<LocalEpoch>>,
}

enum RmaKind {
    Put,
    Get,
    Acc(ReduceOp),
}

impl RmaKind {
    fn tag(&self) -> i32 {
        RMA_TAG_BASE
            + match self {
                RmaKind::Put => 0,
                RmaKind::Get => 1,
                RmaKind::Acc(_) => 2,
            }
    }
}

enum RmaSlot {
    InFlight,
    Dropped { reason: DropReason, at: SimNs },
    Done { at: SimNs, data: Option<Vec<u8>> },
    Failed { err: MpiError, at: SimNs },
}

struct RmaInner {
    comm: Comm,
    shared: Arc<WinShared>,
    kind: RmaKind,
    /// Communicator-local target rank.
    target: Rank,
    /// Global (fabric) node ids of origin and target.
    gsrc: Rank,
    gdst: Rank,
    offset: usize,
    /// Payload (empty for Get).
    payload: Vec<u8>,
    /// Wire bytes (payload length, or requested length for Get).
    len: usize,
    route: RmaRoute,
    posted_at: SimNs,
    attempts: AtomicU32,
    slot: Monitor<RmaSlot>,
}

/// Result of polling an in-flight one-sided op.
pub enum RmaPoll {
    /// Still in flight (or awaiting a retransmit grant).
    Pending,
    /// Transfer complete; effect applied, visible from instant `at`.
    Done {
        /// Completion (arrival) instant.
        at: SimNs,
    },
    /// Transfer failed terminally.
    Failed {
        /// The classified error.
        err: MpiError,
        /// Instant the failure was established.
        at: SimNs,
    },
}

/// Handle to an in-flight `Put`/`Get`/`Accumulate`. Cheap to clone; the
/// issuing epoch's closing call settles it, or callers may
/// [`RmaHandle::wait`] individually.
#[derive(Clone)]
pub struct RmaHandle {
    inner: Arc<RmaInner>,
}

impl RmaInner {
    /// Grant callback: decide the transfer's fate at its reserved start,
    /// apply the memory effect on delivery, and publish the outcome. Runs
    /// under the arbiter's grant lock, in canonical order.
    fn granted(&self, res: Reservation) {
        let w = &self.comm.world().inner;
        // Class-routed ops take the RMA fault model (a CXL load/store has
        // no packets to drop); forced-NIC emulations are wire messages and
        // compose with the full plan like any two-sided transfer.
        let decision = match self.route {
            RmaRoute::Auto => {
                w.fabric
                    .rma_fault_decision(self.gsrc, self.gdst, self.kind.tag(), res.start)
            }
            _ => w
                .fabric
                .fault_decision(self.gsrc, self.gdst, self.kind.tag(), res.start),
        };
        match decision {
            FaultOutcome::Deliver { extra_latency_ns } => {
                let arrival = res.arrival + extra_latency_ns;
                let data = self.apply();
                self.slot.with(|s| *s = RmaSlot::Done { at: arrival, data });
                w.clock.schedule_alarm(arrival);
            }
            FaultOutcome::Drop(reason) => {
                w.trace.record(
                    "net.fault",
                    format!("rma.drop {}→{} ({reason:?})", self.gsrc, self.gdst),
                    res.start,
                    res.end,
                );
                self.slot.with(|s| {
                    *s = RmaSlot::Dropped {
                        reason,
                        at: res.end,
                    }
                });
                w.clock.schedule_alarm(res.end + 1);
            }
        }
    }

    /// Apply the op's effect on the target segment (Get returns the bytes
    /// read). Runs at grant time, so concurrent same-instant accesses are
    /// ordered canonically by the arbiter.
    fn apply(&self) -> Option<Vec<u8>> {
        let seg = &self.shared.segments[self.target];
        match &self.kind {
            RmaKind::Put => {
                seg.with(|m| m[self.offset..self.offset + self.len].copy_from_slice(&self.payload));
                None
            }
            RmaKind::Get => Some(seg.peek(|m| m[self.offset..self.offset + self.len].to_vec())),
            RmaKind::Acc(op) => {
                seg.with(|m| {
                    let cur = &m[self.offset..self.offset + self.len];
                    // Lengths were validated 8-aligned at issue time.
                    let mut acc = try_bytes_to_f64(cur).unwrap_or_default();
                    let other = try_bytes_to_f64(&self.payload).unwrap_or_default();
                    op.fold(&mut acc, &other);
                    m[self.offset..self.offset + self.len].copy_from_slice(f64_as_bytes(&acc));
                });
                None
            }
        }
    }
}

impl RmaHandle {
    #[allow(clippy::too_many_arguments)]
    fn issue(
        win: &Win,
        kind: RmaKind,
        target: Rank,
        offset: usize,
        payload: Vec<u8>,
        len: usize,
        route: RmaRoute,
        earliest: SimNs,
    ) -> Self {
        let comm = win.comm.clone();
        let now = comm.world().clock().now_ns();
        let inner = Arc::new(RmaInner {
            gsrc: comm.global_rank(comm.rank()),
            gdst: comm.global_rank(target),
            comm,
            shared: Arc::clone(&win.shared),
            kind,
            target,
            offset,
            payload,
            len,
            route,
            posted_at: now,
            attempts: AtomicU32::new(0),
            slot: Monitor::new(win.comm.world().clock().clone(), RmaSlot::InFlight),
        });
        let h = RmaHandle { inner };
        h.post(earliest.max(now));
        h
    }

    /// Post (or re-post) the transfer to the arbiter, on the route the op
    /// was issued with.
    fn post(&self, earliest: SimNs) {
        let inner = Arc::clone(&self.inner);
        let fabric = &self.inner.comm.world().inner.fabric;
        let (gsrc, gdst, tag) = (self.inner.gsrc, self.inner.gdst, self.inner.kind.tag());
        let complete = Box::new(move |res| inner.granted(res));
        match self.inner.route {
            RmaRoute::Auto => {
                fabric.reserve_rma_deferred(gsrc, gdst, tag, self.inner.len, earliest, complete)
            }
            RmaRoute::Nic => {
                fabric.reserve_deferred(gsrc, gdst, tag, self.inner.len, earliest, complete)
            }
            RmaRoute::NicDuration(d) => {
                fabric.reserve_duration_deferred(gsrc, gdst, tag, d, earliest, complete)
            }
        }
    }

    /// Communicator-local target rank of this op.
    pub fn target(&self) -> Rank {
        self.inner.target
    }

    /// Retransmit attempts so far (0 on a clean first delivery).
    pub fn attempts(&self) -> u32 {
        self.inner.attempts.load(Ordering::Relaxed)
    }

    /// Wire bytes this op moves.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// True for degenerate zero-byte ops.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// True once the op has terminally completed or failed.
    pub fn settled(&self) -> bool {
        self.inner
            .slot
            .peek(|s| matches!(s, RmaSlot::Done { .. } | RmaSlot::Failed { .. }))
    }

    /// Terminal error, if the op failed.
    pub fn error(&self) -> Option<MpiError> {
        self.inner.slot.peek(|s| match s {
            RmaSlot::Failed { err, .. } => Some(*err),
            _ => None,
        })
    }

    /// Drive the op: pump the arbiter, handle a drop (retransmit with
    /// backoff, or classify a terminal failure), and report state.
    /// Non-blocking; safe from engine state machines.
    pub fn poll(&self, now: SimNs) -> RmaPoll {
        self.inner.comm.world().inner.fabric.pump(now);
        // Read-only fast path first: no notify when nothing changes.
        enum Next {
            AsIs(RmaPoll),
            Retry { earliest: SimNs },
            Fail { err: MpiError, at: SimNs },
        }
        let next = self.inner.slot.peek(|s| match s {
            RmaSlot::InFlight => Next::AsIs(RmaPoll::Pending),
            RmaSlot::Done { at, .. } => Next::AsIs(RmaPoll::Done { at: *at }),
            RmaSlot::Failed { err, at } => Next::AsIs(RmaPoll::Failed { err: *err, at: *at }),
            RmaSlot::Dropped { reason, at } => {
                let attempt = self.inner.attempts.load(Ordering::Relaxed);
                if matches!(reason, DropReason::NodeDown) {
                    Next::Fail {
                        err: MpiError::ProcFailed {
                            rank: self.inner.target,
                        },
                        at: *at,
                    }
                } else if attempt + 1 >= MAX_RMA_ATTEMPTS {
                    Next::Fail {
                        err: MpiError::Timeout {
                            waited_ns: at.saturating_sub(self.inner.posted_at),
                        },
                        at: *at,
                    }
                } else {
                    Next::Retry {
                        earliest: at + backoff_ns(attempt),
                    }
                }
            }
        });
        match next {
            Next::AsIs(r) => r,
            Next::Fail { err, at } => {
                self.inner.slot.with(|s| *s = RmaSlot::Failed { err, at });
                RmaPoll::Failed { err, at }
            }
            Next::Retry { earliest } => {
                self.inner.attempts.fetch_add(1, Ordering::Relaxed);
                self.inner.slot.with(|s| *s = RmaSlot::InFlight);
                self.post(earliest);
                RmaPoll::Pending
            }
        }
    }

    /// Block until the op settles; on success the calling actor's clock
    /// reaches the completion instant.
    pub fn wait(&self, actor: &Actor) -> Result<SimNs, MpiError> {
        let clock = self.inner.comm.world().clock().clone();
        let r = actor.wait_until_labeled("rma op", || match self.poll(clock.now_ns()) {
            RmaPoll::Pending => None,
            RmaPoll::Done { at } => Some(Ok(at)),
            RmaPoll::Failed { err, .. } => Some(Err(err)),
        });
        if let Ok(at) = r {
            actor.advance_until(at);
        }
        r
    }

    /// Take the bytes a completed Get read (None for Put/Accumulate or
    /// before completion; consumed on first call).
    pub fn take_data(&self) -> Option<Vec<u8>> {
        self.inner.slot.try_now(|s| match s {
            RmaSlot::Done { data, .. } => data.take(),
            _ => None,
        })
    }
}

impl Win {
    /// Collectively create a window exposing `size` bytes (zero-filled) on
    /// every calling rank. Every member of `comm` must call in lockstep
    /// (like `MPI_Win_create`); the call barriers before returning, so all
    /// segments exist once any rank proceeds.
    pub fn create(comm: &Comm, actor: &Actor, size: usize) -> Result<Win, MpiError> {
        comm.ensure_not_revoked()?;
        let seq = comm.win_seq.fetch_add(1, Ordering::Relaxed);
        let key = (comm.context, seq);
        let n = comm.size();
        let clock = comm.world().clock().clone();
        let shared = {
            let mut reg = comm.world().inner.windows.lock();
            Arc::clone(
                reg.entry(key)
                    .or_insert_with(|| Arc::new(WinShared::new(clock, n))),
            )
        };
        let me = comm.rank();
        shared.segments[me].with(|m| *m = vec![0u8; size]);
        shared.ctrl.with(|c| c.sizes[me] = size);
        comm.barrier(actor);
        Ok(Win {
            comm: comm.clone(),
            shared,
            epoch: Arc::new(Mutex::new(LocalEpoch {
                fence_open: false,
                locked: BTreeSet::new(),
                pending: Vec::new(),
                epoch_err: None,
            })),
        })
    }

    /// The communicator this window was created over.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Exposed window size (bytes) of `target`.
    pub fn size_of(&self, target: Rank) -> usize {
        self.shared.ctrl.peek(|c| c.sizes[target])
    }

    /// Transport class serving one-sided traffic to `target` (loopback,
    /// NIC, or a shared CXL pool port).
    pub fn fabric_class_to(&self, target: Rank) -> FabricClass {
        let f = &self.comm.world().inner.fabric;
        f.fabric_class(
            self.comm.global_rank(self.comm.rank()),
            self.comm.global_rank(target),
        )
    }

    /// Snapshot this rank's own window memory (a local load).
    pub fn read_local(&self) -> Vec<u8> {
        self.shared.segments[self.comm.rank()].peek(|m| m.clone())
    }

    /// Store into this rank's own window memory (a local store; like any
    /// local access it is only well-defined outside others' epochs).
    pub fn write_local(&self, offset: usize, data: &[u8]) {
        self.shared.segments[self.comm.rank()]
            .with(|m| m[offset..offset + data.len()].copy_from_slice(data));
    }

    fn check_access(&self, target: Rank) -> Result<(), MpiError> {
        if target >= self.comm.size() {
            return Err(MpiError::RankOutOfRange {
                rank: target,
                size: self.comm.size(),
            });
        }
        let ep = self.epoch.lock();
        if ep.fence_open || ep.locked.contains(&target) {
            Ok(())
        } else {
            Err(MpiError::RmaNoEpoch { target })
        }
    }

    fn check_range(&self, target: Rank, offset: usize, len: usize) -> Result<(), MpiError> {
        let size = self.size_of(target);
        if offset.checked_add(len).is_none_or(|end| end > size) {
            return Err(MpiError::RmaOutOfRange { offset, len, size });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn issue(
        &self,
        kind: RmaKind,
        target: Rank,
        offset: usize,
        payload: Vec<u8>,
        len: usize,
        route: RmaRoute,
        earliest: SimNs,
    ) -> Result<RmaHandle, MpiError> {
        self.comm.ensure_not_revoked()?;
        self.check_access(target)?;
        self.check_range(target, offset, len)?;
        let h = RmaHandle::issue(self, kind, target, offset, payload, len, route, earliest);
        self.epoch.lock().pending.push(h.clone());
        Ok(h)
    }

    /// One-sided write of `data` into `target`'s window at `offset`
    /// (`MPI_Put`). Non-blocking: completes at the next epoch-closing
    /// call, or via the returned handle.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) -> Result<RmaHandle, MpiError> {
        let len = data.len();
        self.issue(
            RmaKind::Put,
            target,
            offset,
            data.to_vec(),
            len,
            RmaRoute::Auto,
            0,
        )
    }

    /// [`Win::put`] with an explicit wire route and earliest claim instant
    /// (the clMPI engine accounts device→host staging before the wire and
    /// sweeps the same put across transports).
    pub fn put_routed(
        &self,
        target: Rank,
        offset: usize,
        data: &[u8],
        route: RmaRoute,
        earliest: SimNs,
    ) -> Result<RmaHandle, MpiError> {
        let len = data.len();
        self.issue(
            RmaKind::Put,
            target,
            offset,
            data.to_vec(),
            len,
            route,
            earliest,
        )
    }

    /// One-sided read of `len` bytes from `target`'s window at `offset`
    /// (`MPI_Get`); the bytes are available from the handle once settled.
    pub fn get(&self, target: Rank, offset: usize, len: usize) -> Result<RmaHandle, MpiError> {
        self.issue(
            RmaKind::Get,
            target,
            offset,
            Vec::new(),
            len,
            RmaRoute::Auto,
            0,
        )
    }

    /// One-sided read-modify-write (`MPI_Accumulate`): fold `data`
    /// (f64s) into `target`'s window with `op`. Lengths must be 8-byte
    /// multiples ([`MpiError::Truncated`] otherwise). Concurrent
    /// accumulates are applied in the arbiter's canonical grant order.
    pub fn accumulate(
        &self,
        target: Rank,
        offset: usize,
        data: &[u8],
        op: ReduceOp,
    ) -> Result<RmaHandle, MpiError> {
        try_bytes_to_f64(data)?; // validate alignment up front
        let len = data.len();
        self.issue(
            RmaKind::Acc(op),
            target,
            offset,
            data.to_vec(),
            len,
            RmaRoute::Auto,
            0,
        )
    }

    /// Drive every pending op of the current epoch once; returns true
    /// when all have settled. Failures are latched into the epoch error
    /// reported by the closing call. Non-blocking.
    pub fn poll_pending(&self, now: SimNs) -> bool {
        let hs: Vec<RmaHandle> = self.epoch.lock().pending.clone();
        for h in &hs {
            let _ = h.poll(now);
        }
        let first_err = hs.iter().find_map(|h| h.error());
        let mut ep = self.epoch.lock();
        if ep.epoch_err.is_none() {
            ep.epoch_err = first_err;
        }
        ep.pending.retain(|h| !h.settled());
        ep.pending.is_empty()
    }

    /// Number of ops still pending in the current epoch.
    pub fn pending_ops(&self) -> usize {
        self.epoch.lock().pending.len()
    }

    /// Take the first op failure latched this epoch (cleared).
    pub fn take_epoch_err(&self) -> Option<MpiError> {
        self.epoch.lock().epoch_err.take()
    }

    /// Mark this rank's fence arrival (non-blocking half of
    /// [`Win::fence`], for engine state machines). Local pending ops must
    /// already be settled. Returns the generation to pass to
    /// [`Win::fence_ready`]. Opens the window for active-target access.
    pub fn fence_enter(&self, now: SimNs) -> u64 {
        let me = self.comm.rank();
        self.epoch.lock().fence_open = true;
        self.shared.ctrl.with(|c| {
            c.fence_gen[me] += 1;
            c.fence_at[me] = now;
            c.fence_gen[me]
        })
    }

    /// True once every rank has arrived at fence generation `gen`.
    pub fn fence_ready(&self, gen: u64) -> bool {
        self.shared
            .ctrl
            .peek(|c| c.fence_gen.iter().all(|&g| g >= gen))
    }

    /// Ranks that have not yet arrived at fence generation `gen` (for
    /// classifying a patience expiry against the fault plan).
    pub fn fence_laggards(&self, gen: u64) -> Vec<Rank> {
        self.shared.ctrl.peek(|c| {
            c.fence_gen
                .iter()
                .enumerate()
                .filter(|(_, &g)| g < gen)
                .map(|(r, _)| r)
                .collect()
        })
    }

    /// Classify a synchronization stall against the fault plan: a laggard
    /// scheduled dead is [`MpiError::ProcFailed`], otherwise a timeout.
    /// Public so non-blocking fence drivers (the clMPI engine) classify
    /// their own patience expiries identically.
    pub fn classify_stall(&self, laggards: &[Rank], now: SimNs, waited_ns: SimNs) -> MpiError {
        for &r in laggards {
            let g = self.comm.global_rank(r);
            if self.comm.world().node_down_at(g, now) {
                return MpiError::ProcFailed { rank: r };
            }
        }
        MpiError::Timeout { waited_ns }
    }

    /// Close the current epoch and open the next (`MPI_Win_fence`):
    /// settles this rank's pending ops, then synchronizes with every
    /// rank's matching fence. Under a fault plan the synchronization
    /// carries a patience deadline classified against the plan; op
    /// failures latched during the epoch are reported here.
    pub fn fence(&self, actor: &Actor) -> Result<(), MpiError> {
        let clock = self.comm.world().clock().clone();
        actor.wait_until_labeled("rma fence ops", || {
            self.poll_pending(clock.now_ns()).then_some(())
        });
        let op_err = self.take_epoch_err();
        let start = clock.now_ns();
        let gen = self.fence_enter(start);
        let deadline = self.comm.world().has_faults().then(|| {
            let d = start + RMA_PATIENCE_NS;
            clock.schedule_alarm(d);
            d
        });
        let sync = actor.wait_until_labeled("rma fence", || {
            let now = clock.now_ns();
            self.comm.world().inner.fabric.pump(now);
            if self.fence_ready(gen) {
                return Some(Ok(()));
            }
            match deadline {
                Some(d) if now >= d => {
                    let laggards = self.fence_laggards(gen);
                    Some(Err(self.classify_stall(&laggards, now, now - start)))
                }
                _ => None,
            }
        });
        op_err.map_or(sync, Err)
    }

    /// Post a passive-target lock request on `target` (non-blocking half
    /// of [`Win::lock`]). Fails fast on epoch misuse.
    pub fn lock_request(&self, target: Rank) -> Result<SimNs, MpiError> {
        self.comm.ensure_not_revoked()?;
        if target >= self.comm.size() {
            return Err(MpiError::RankOutOfRange {
                rank: target,
                size: self.comm.size(),
            });
        }
        if self.epoch.lock().locked.contains(&target) {
            return Err(MpiError::RmaAlreadyLocked { target });
        }
        let clock = self.comm.world().clock();
        let now = clock.now_ns();
        let me = self.comm.rank();
        self.shared
            .ctrl
            .with(|c| c.locks[target].queue.push((now, me)));
        clock.schedule_alarm(now + 1);
        Ok(now)
    }

    /// Drive lock arbitration; true once this rank holds `target`'s lock
    /// (the passive epoch is then open). Non-blocking.
    pub fn lock_ready(&self, target: Rank, now: SimNs) -> bool {
        self.comm.world().inner.fabric.pump(now);
        let me = self.comm.rank();
        if self.shared.ctrl.peek(|c| WinShared::grants_due(c, now)) {
            self.shared.ctrl.with(|c| WinShared::grant_locks(c, now));
        }
        let held = self
            .shared
            .ctrl
            .peek(|c| c.locks[target].holder == Some(me));
        if held {
            self.epoch.lock().locked.insert(target);
        }
        held
    }

    /// Acquire an exclusive passive-target lock on `target`'s window
    /// (`MPI_Win_lock`). Nested locks of one target are refused; a stall
    /// under a fault plan is classified against it.
    pub fn lock(&self, actor: &Actor, target: Rank) -> Result<(), MpiError> {
        let start = self.lock_request(target)?;
        let clock = self.comm.world().clock().clone();
        let deadline = self.comm.world().has_faults().then(|| {
            let d = start + RMA_PATIENCE_NS;
            clock.schedule_alarm(d);
            d
        });
        actor.wait_until_labeled("rma lock", || {
            let now = clock.now_ns();
            if self.lock_ready(target, now) {
                return Some(Ok(()));
            }
            match deadline {
                Some(d) if now >= d => {
                    let holder = self.shared.ctrl.peek(|c| c.locks[target].holder);
                    let laggards: Vec<Rank> = holder.into_iter().collect();
                    Some(Err(self.classify_stall(&laggards, now, now - start)))
                }
                _ => None,
            }
        })
    }

    /// Release the passive-target lock on `target` (`MPI_Win_unlock`):
    /// settles every pending op addressed to `target` first, so all
    /// effects are visible at the target once unlock returns.
    pub fn unlock(&self, actor: &Actor, target: Rank) -> Result<(), MpiError> {
        if !self.epoch.lock().locked.contains(&target) {
            return Err(MpiError::RmaNotLocked { target });
        }
        let clock = self.comm.world().clock().clone();
        actor.wait_until_labeled("rma unlock ops", || {
            let now = clock.now_ns();
            let hs: Vec<RmaHandle> = self.epoch.lock().pending.clone();
            let mut busy = false;
            for h in hs.iter().filter(|h| h.target() == target) {
                if matches!(h.poll(now), RmaPoll::Pending) {
                    busy = true;
                }
            }
            (!busy).then_some(())
        });
        let mut first_err = None;
        {
            let mut ep = self.epoch.lock();
            for h in ep.pending.iter().filter(|h| h.target() == target) {
                if let Some(e) = h.error() {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            ep.pending.retain(|h| h.target() != target || !h.settled());
            ep.locked.remove(&target);
        }
        let me = self.comm.rank();
        self.shared.ctrl.with(|c| {
            if c.locks[target].holder == Some(me) {
                c.locks[target].holder = None;
            }
            WinShared::grant_locks(c, self.comm.world().clock().now_ns());
        });
        first_err.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_world_faulty, run_world_sized, FaultPlan};
    use simnet::ClusterSpec;

    #[test]
    fn put_is_visible_after_fence() {
        let res = run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            let win = Win::create(&p.comm, &p.actor, 64).expect("create");
            win.fence(&p.actor).expect("open");
            if p.rank() == 0 {
                win.put(1, 8, &[7u8; 16]).expect("put");
            }
            win.fence(&p.actor).expect("close");
            win.read_local()
        });
        assert_eq!(&res.outputs[1][8..24], &[7u8; 16]);
        assert!(res.outputs[1][..8].iter().all(|&b| b == 0));
    }

    #[test]
    fn get_reads_remote_window() {
        let res = run_world_sized(ClusterSpec::cxl_pod(), 3, |p| {
            let win = Win::create(&p.comm, &p.actor, 32).expect("create");
            win.write_local(0, &[p.rank() as u8 + 1; 32]);
            win.fence(&p.actor).expect("open");
            let src = (p.rank() + 1) % p.size();
            let h = win.get(src, 4, 8).expect("get");
            win.fence(&p.actor).expect("close");
            (src, h.take_data().expect("data"))
        });
        for (src, data) in &res.outputs {
            assert_eq!(data, &vec![*src as u8 + 1; 8]);
        }
    }

    #[test]
    fn accumulate_sums_all_contributions() {
        let res = run_world_sized(ClusterSpec::cichlid(), 4, |p| {
            let win = Win::create(&p.comm, &p.actor, 16).expect("create");
            win.fence(&p.actor).expect("open");
            let v = [(p.rank() + 1) as f64, 0.5];
            win.accumulate(0, 0, f64_as_bytes(&v), ReduceOp::Sum)
                .expect("acc");
            win.fence(&p.actor).expect("close");
            try_bytes_to_f64(&win.read_local()).expect("aligned")
        });
        assert_eq!(res.outputs[0], vec![1.0 + 2.0 + 3.0 + 4.0, 2.0]);
    }

    #[test]
    fn epoch_misuse_returns_documented_errors() {
        run_world_sized(ClusterSpec::cichlid(), 2, |p| {
            let win = Win::create(&p.comm, &p.actor, 8).expect("create");
            // Access before any fence or lock: no epoch.
            assert_eq!(
                win.put(0, 0, &[1]).err(),
                Some(MpiError::RmaNoEpoch { target: 0 })
            );
            assert_eq!(
                win.unlock(&p.actor, 0).err(),
                Some(MpiError::RmaNotLocked { target: 0 })
            );
            win.lock(&p.actor, p.rank()).expect("lock self");
            assert_eq!(
                win.lock(&p.actor, p.rank()).err(),
                Some(MpiError::RmaAlreadyLocked { target: p.rank() })
            );
            // Out-of-range access inside a valid epoch.
            assert_eq!(
                win.put(p.rank(), 4, &[0u8; 8]).err(),
                Some(MpiError::RmaOutOfRange {
                    offset: 4,
                    len: 8,
                    size: 8
                })
            );
            assert_eq!(
                win.get(9, 0, 1).err(),
                Some(MpiError::RankOutOfRange { rank: 9, size: 2 })
            );
            win.unlock(&p.actor, p.rank()).expect("unlock");
        });
    }

    #[test]
    fn exclusive_locks_serialize_read_modify_write() {
        // Without the lock this increment would race; with it, every rank's
        // read-modify-write of rank 0's counter is serialized.
        let res = run_world_sized(ClusterSpec::cichlid(), 4, |p| {
            let win = Win::create(&p.comm, &p.actor, 8).expect("create");
            for _ in 0..3 {
                win.lock(&p.actor, 0).expect("lock");
                let h = win.get(0, 0, 8).expect("get");
                h.wait(&p.actor).expect("get done");
                let mut v = try_bytes_to_f64(&h.take_data().expect("data")).expect("f64");
                v[0] += 1.0;
                win.put(0, 0, f64_as_bytes(&v)).expect("put");
                win.unlock(&p.actor, 0).expect("unlock");
            }
            p.comm.barrier(&p.actor);
            try_bytes_to_f64(&win.read_local()).expect("aligned")[0]
        });
        assert_eq!(res.outputs[0], 12.0, "4 ranks × 3 locked increments");
    }

    #[test]
    fn nic_drops_are_retransmitted_to_completion() {
        // 30% drop on the RMA tag space: every put must still land.
        let plan = FaultPlan::drops(42, 0.30).with_tag_floor(RMA_TAG_BASE);
        let res = run_world_faulty(ClusterSpec::cichlid(), 3, plan, |p| {
            let win = Win::create(&p.comm, &p.actor, 256).expect("create");
            win.fence(&p.actor).expect("open");
            let dst = (p.rank() + 1) % p.size();
            let mut attempts = 0;
            for i in 0..8 {
                let h = win
                    .put(dst, i * 32, &[p.rank() as u8 + 1; 32])
                    .expect("put");
                h.wait(&p.actor).expect("retransmit to completion");
                attempts += h.attempts();
            }
            win.fence(&p.actor).expect("close");
            (win.read_local(), attempts)
        });
        let total_attempts: u32 = res.outputs.iter().map(|(_, a)| *a).sum();
        assert!(total_attempts > 0, "the drop plan actually dropped");
        for (r, (mem, _)) in res.outputs.iter().enumerate() {
            let src = (r + 2) % 3;
            assert_eq!(mem, &vec![src as u8 + 1; 256], "rank {r} memory");
        }
    }

    #[test]
    fn cxl_path_ignores_drop_plans() {
        // Same drop plan, co-located pair on the CXL pod: the load/store
        // path has no packets to drop, so zero retransmits.
        let plan = FaultPlan::drops(42, 0.99).with_tag_floor(RMA_TAG_BASE);
        let res = run_world_faulty(ClusterSpec::cxl_pod(), 2, plan, |p| {
            let win = Win::create(&p.comm, &p.actor, 64).expect("create");
            assert_eq!(win.fabric_class_to(1 - p.rank()), FabricClass::Cxl(0));
            win.fence(&p.actor).expect("open");
            let h = win.put(1 - p.rank(), 0, &[9u8; 64]).expect("put");
            h.wait(&p.actor).expect("loads do not drop");
            assert_eq!(h.attempts(), 0);
            win.fence(&p.actor).expect("close");
            win.read_local()
        });
        assert_eq!(res.outputs[0], vec![9u8; 64]);
    }

    #[test]
    fn node_down_poisons_ops_and_fence_classifies() {
        // Rank 2 dies mid-epoch: ops to it fail ProcFailed, and the
        // survivors' fence classifies the stall instead of wedging.
        let plan = FaultPlan::none().with_node_down(2, 1_000_000);
        let res = run_world_faulty(ClusterSpec::cichlid(), 3, plan, |p| {
            let win = Win::create(&p.comm, &p.actor, 32).expect("create");
            win.fence(&p.actor).expect("open");
            if p.rank() == 2 {
                // The dead rank stops participating.
                return Ok(());
            }
            p.actor.advance_ns(2_000_000); // past the death instant
            let h = win.put(2, 0, &[1u8; 32]).expect("put");
            let err = h.wait(&p.actor).expect_err("target is dead");
            assert_eq!(err, MpiError::ProcFailed { rank: 2 });
            win.fence(&p.actor)
        });
        for r in [0, 1] {
            match res.outputs[r] {
                Err(MpiError::ProcFailed { rank: 2 }) | Err(MpiError::Timeout { .. }) => {}
                ref other => panic!("rank {r}: fence must classify the stall: {other:?}"),
            }
        }
    }
}
