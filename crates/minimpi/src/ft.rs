//! ULFM-style fault tolerance: process-failure detection, communicator
//! revocation, survivor shrink, and a log-n fault-tolerant agreement.
//!
//! Modeled on MPI's User-Level Failure Mitigation extension (the
//! fault-domain communicator work prototyped on MPICH): a failed peer
//! surfaces as [`MpiError::ProcFailed`], a revoked communicator as
//! [`MpiError::Revoked`], and recovery is explicit — survivors
//! [`Comm::shrink`] to a dense-renumbered communicator and carry on.
//!
//! **Detection is deterministic, not wall-clock.** A node dies only when
//! the fabric's [`simnet::FaultPlan`] schedules it down, so "is this
//! peer dead?" is a pure function of the plan and the virtual instant.
//! The blocking APIs still *discover* failures through the existing
//! timeout machinery ([`crate::Request::wait_timeout`]); the plan is
//! what classifies an expired deadline as [`MpiError::ProcFailed`]
//! rather than a transient [`MpiError::Timeout`].

use std::sync::atomic::Ordering;

use simtime::{Actor, SimNs};

use crate::p2p::MpiError;
use crate::world::Comm;
use crate::{Rank, Tag};

/// Base of the agreement tag region: above the host collectives
/// (`(1 << 20) + 0x100..0x800`), below the clMPI data plane (`1 << 22`).
/// Rounds stripe the low bits; repeated agreements stripe the next three
/// so a late message from a timed-out round cannot match a subsequent
/// agreement's receive.
const AGREE_TAG: Tag = (1 << 20) + 0x800;
/// Tag stripes available to interleaved agreements on one communicator.
const AGREE_STRIPES: u64 = 8;
/// Rounds per stripe (worlds are ≤ 64 ranks, so ≤ 6 rounds needed).
const AGREE_ROUNDS: Tag = 64;

impl Comm {
    /// True if `local` rank's node is scheduled dead at virtual instant
    /// `t` (the deterministic failure-detector ground truth).
    pub fn is_proc_failed(&self, local: Rank, t: SimNs) -> bool {
        let g = self.global_rank(local);
        self.world.inner.fabric.node_down_at(g, t)
    }

    /// Communicator-local ranks whose nodes are dead at instant `t`.
    pub fn failed_ranks(&self, t: SimNs) -> Vec<Rank> {
        (0..self.size())
            .filter(|&i| self.is_proc_failed(i, t))
            .collect()
    }

    /// Classify an operation outcome against peer `local` at instant
    /// `t`: a dead peer maps any error (typically a timeout) to
    /// [`MpiError::ProcFailed`], otherwise the original error stands.
    pub fn classify_peer_error(&self, local: Rank, t: SimNs, err: MpiError) -> MpiError {
        if self.is_proc_failed(local, t) {
            MpiError::ProcFailed { rank: local }
        } else {
            err
        }
    }

    /// Revoke this communicator (`MPI_Comm_revoke`): every subsequent
    /// fallible operation on any member's endpoint fails with
    /// [`MpiError::Revoked`] until survivors [`Comm::shrink`]. The
    /// revocation is immediately visible world-wide — a deterministic
    /// stand-in for the asynchronous revoke broadcast of a real stack.
    pub fn revoke(&self) {
        self.world.inner.revoked.lock().insert(self.context);
    }

    /// True if any member has revoked this communicator.
    pub fn is_revoked(&self) -> bool {
        self.world.inner.revoked.lock().contains(&self.context)
    }

    /// [`MpiError::Revoked`] if this communicator has been revoked.
    pub(crate) fn ensure_not_revoked(&self) -> Result<(), MpiError> {
        if self.is_revoked() {
            return Err(MpiError::Revoked);
        }
        Ok(())
    }

    /// Fault-tolerant agreement (`MPI_Comm_agree`): bitwise-AND of the
    /// `value` contributions that reach this rank, over ⌈log₂ n⌉
    /// dissemination rounds (round *r* sends the running fold to
    /// `(me + 2^r) mod n` and folds the value from `(me − 2^r) mod n`).
    /// AND is idempotent, so the butterfly double-counting is harmless
    /// and the primitive works for any world size.
    ///
    /// Failure semantics: peers the plan marks dead at round time are
    /// skipped deterministically; a receive from a supposedly-live peer
    /// that exceeds `patience_ns` returns [`MpiError::ProcFailed`] (an
    /// unresponsive peer is indistinguishable from a dead one — the
    /// ULFM detector's view). When survivors contribute equal values —
    /// the shrink use case — the result is uniform across them; with
    /// unequal inputs, uniformity additionally requires that no failure
    /// disconnects the dissemination graph. Timeouts arm only when the
    /// world runs under a fault plan; fault-free runs block cleanly.
    ///
    /// Works on revoked communicators (the ULFM exception that lets
    /// survivors coordinate recovery).
    pub fn agree(&self, actor: &Actor, value: u64, patience_ns: SimNs) -> Result<u64, MpiError> {
        let n = self.size();
        let me = self.rank();
        let mut acc = value;
        if n <= 1 {
            return Ok(acc);
        }
        let seq = self.agree_seq.fetch_add(1, Ordering::Relaxed);
        let stripe = AGREE_TAG + (seq % AGREE_STRIPES) as Tag * AGREE_ROUNDS;
        let rounds = usize::BITS - (n - 1).leading_zeros();
        let armed = self.world.has_faults();
        for r in 0..rounds {
            let dist = 1usize << r;
            let dst = (me + dist) % n;
            let src = (me + n - dist) % n;
            let tag = stripe + r as Tag;
            let sreq = (!self.is_proc_failed(dst, actor.now_ns()))
                .then(|| self.isend(actor, dst, tag, &acc.to_le_bytes()));
            if !self.is_proc_failed(src, actor.now_ns()) {
                // irecv/wait_timeout rather than recv_timeout: agreement
                // must keep working on a revoked communicator.
                let req = self.irecv(actor, Some(src), Some(tag));
                let got = if armed {
                    match req.wait_timeout(actor, patience_ns) {
                        Ok(res) => Some(res.expect("recv request yields a payload")),
                        Err(MpiError::Timeout { .. })
                            if self.is_proc_failed(src, actor.now_ns()) =>
                        {
                            // Died mid-round: fold what we have and move on.
                            None
                        }
                        Err(MpiError::Timeout { .. }) => {
                            return Err(MpiError::ProcFailed { rank: src });
                        }
                        Err(e) => return Err(e),
                    }
                } else {
                    Some(req.wait(actor).expect("recv request yields a payload"))
                };
                if let Some(res) = got {
                    let bytes: [u8; 8] = res.data[..8].try_into().expect("8-byte agree payload");
                    acc &= u64::from_le_bytes(bytes);
                }
            }
            if let Some(q) = sreq {
                q.wait(actor);
            }
        }
        Ok(acc)
    }

    /// Shrink away failed members (`MPIX_Comm_shrink`): survivors agree
    /// on the live-member set (a bitmask over local ranks, folded with
    /// [`Comm::agree`]), then every survivor locally constructs the same
    /// child communicator whose members are the agreed survivors in
    /// parent-rank order — **dense re-numbered ranks**, a fresh context,
    /// and no revocation carried over. Collective over the survivors;
    /// dead members are expected not to call.
    ///
    /// `patience_ns` bounds each agreement round's receive when the
    /// world runs under a fault plan.
    pub fn shrink(&self, actor: &Actor, patience_ns: SimNs) -> Result<Comm, MpiError> {
        let n = self.size();
        assert!(n <= 64, "shrink's agreement mask is u64-limited");
        let me = self.rank();
        let now = actor.now_ns();
        let mut alive = 0u64;
        for i in 0..n {
            if !self.is_proc_failed(i, now) {
                alive |= 1 << i;
            }
        }
        let agreed = self.agree(actor, alive, patience_ns)?;
        if agreed & (1 << me) == 0 {
            // The survivors' consensus excludes us: to them we are dead.
            return Err(MpiError::ProcFailed { rank: me });
        }
        let members: Vec<Rank> = (0..n)
            .filter(|&i| agreed & (1 << i) != 0)
            .map(|i| self.global_rank(i))
            .collect();
        // Deterministic child context, like `split`: FNV-1a over parent
        // context, collective sequence, survivor mask, and a shrink
        // domain marker so a split and a shrink can never collide.
        let seq = self
            .split_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut h: u64 = 0xcbf29ce484222325;
        for v in [self.context, seq, agreed, SHRINK_MARKER] {
            for byte in v.to_ne_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        Ok(self.derive(h | 1, members))
    }
}

/// Domain-separation constant mixed into shrink contexts ("shrink" in
/// ASCII), so a shrink and a split of the same parent can never collide.
const SHRINK_MARKER: u64 = 0x7368_7269_6e6b;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_world_faulty, FaultPlan, Process};
    use simnet::ClusterSpec;

    const PATIENCE: SimNs = 200_000_000; // 200 ms virtual

    #[test]
    fn agree_folds_and_over_all_ranks_without_faults() {
        let res = run_world_faulty(
            ClusterSpec::cichlid(),
            4,
            FaultPlan::none(),
            |p: Process| {
                let v = !(1u64 << p.rank());
                p.comm.agree(&p.actor, v, PATIENCE).expect("agree")
            },
        );
        for out in res.outputs {
            assert_eq!(out, !0b1111u64, "AND of all contributions");
        }
    }

    #[test]
    fn agree_skips_a_dead_rank_deterministically() {
        // Rank 2 dead from t=0 and never calls agree; survivors fold
        // their own contributions and terminate.
        let plan = FaultPlan::none().with_node_down(2, 0);
        let res = run_world_faulty(ClusterSpec::cichlid(), 4, plan, |p: Process| {
            if p.comm.world().node_down_at(p.rank(), 0) {
                return 0;
            }
            p.comm
                .agree(&p.actor, 0xF0 | p.rank() as u64, PATIENCE)
                .expect("survivors agree")
        });
        assert_eq!(res.outputs[2], 0, "dead rank sat out");
        for r in [0usize, 1, 3] {
            assert_eq!(res.outputs[r], 0xF0, "AND over surviving inputs");
        }
    }

    #[test]
    fn revoke_poisons_fallible_ops_until_shrink() {
        let res = run_world_faulty(
            ClusterSpec::cichlid(),
            2,
            FaultPlan::none(),
            |p: Process| {
                if p.rank() == 0 {
                    p.comm.revoke();
                }
                p.comm.barrier_tagged(&p.actor, 1); // barrier ignores revocation
                assert!(p.comm.is_revoked(), "revocation is world-visible");
                let e = p
                    .comm
                    .try_send(&p.actor, (p.rank() + 1) % 2, 5, b"x")
                    .expect_err("revoked comm refuses sends");
                assert_eq!(e, MpiError::Revoked);
                // Shrink (no one actually failed) yields a working comm.
                let fresh = p.comm.shrink(&p.actor, PATIENCE).expect("shrink");
                assert!(!fresh.is_revoked());
                assert_eq!(fresh.size(), 2);
                fresh
                    .try_send(&p.actor, (fresh.rank() + 1) % 2, 5, b"y")
                    .expect("fresh comm works");
                let got = fresh.recv(&p.actor, None, Some(5));
                got.data
            },
        );
        assert_eq!(res.outputs, vec![b"y".to_vec(), b"y".to_vec()]);
    }

    #[test]
    fn shrink_renumbers_survivors_densely() {
        // Kill rank 1 of 5 at t=0; survivors shrink and check the map.
        let plan = FaultPlan::none().with_node_down(1, 0);
        let res = run_world_faulty(ClusterSpec::ricc(), 5, plan, |p: Process| {
            if p.comm.world().node_down_at(p.rank(), 0) {
                return (usize::MAX, usize::MAX, 0);
            }
            let s = p.comm.shrink(&p.actor, PATIENCE).expect("shrink");
            // Survivor comm must carry dense ranks 0..4 mapping to the
            // global survivors {0, 2, 3, 4} in order.
            let my_local = s.rank();
            let my_global = s.global_rank(my_local);
            assert_eq!(s.size(), 4);
            assert_eq!(my_global, p.rank());
            // The shrunken comm is a working communicator: ring-pass a
            // token all the way around.
            let next = (my_local + 1) % s.size();
            let prev = (my_local + s.size() - 1) % s.size();
            let token = s.sendrecv(&p.actor, next, 9, &[my_local as u8], Some(prev), Some(9));
            (my_local, my_global, token.data[0])
        });
        let expect_local = [0usize, usize::MAX, 1, 2, 3];
        for (g, out) in res.outputs.iter().enumerate() {
            if g == 1 {
                continue;
            }
            assert_eq!(out.0, expect_local[g], "dense renumbering");
            assert_eq!(out.1, g, "local→global round trip");
            let prev_local = (out.0 + 3) % 4;
            assert_eq!(out.2 as usize, prev_local, "ring token from prev");
        }
    }

    #[test]
    fn proc_failed_classification_uses_the_plan_not_wallclock() {
        let plan = FaultPlan::none().with_node_down(1, 1_000_000);
        let res = run_world_faulty(ClusterSpec::cichlid(), 2, plan, |p: Process| {
            if p.rank() == 1 {
                // Dies at 1 ms and never answers.
                return MpiError::Timeout { waited_ns: 0 };
            }
            p.actor.advance_ns(2_000_000);
            let err = p
                .comm
                .recv_timeout(&p.actor, Some(1), Some(7), 10_000_000)
                .expect_err("dead peer never sends");
            p.comm.classify_peer_error(1, p.actor.now_ns(), err)
        });
        assert_eq!(res.outputs[0], MpiError::ProcFailed { rank: 1 });
    }

    #[test]
    fn transient_kill_is_failed_only_inside_the_window() {
        let plan = FaultPlan::none().with_node_down_window(0, 500, 1_500);
        let res = run_world_faulty(ClusterSpec::cichlid(), 2, plan, |p: Process| {
            (
                p.comm.is_proc_failed(0, 499),
                p.comm.is_proc_failed(0, 500),
                p.comm.is_proc_failed(0, 1_500),
                p.comm.failed_ranks(1_000),
            )
        });
        for out in res.outputs {
            assert_eq!(out, (false, true, false, vec![0]));
        }
    }
}
