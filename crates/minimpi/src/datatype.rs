//! Datatype tags and typed byte-slice helpers.
//!
//! minimpi moves raw bytes; a [`Datatype`] tag travels with every message.
//! The tag matters for one thing above all: [`Datatype::ClMem`] is the
//! paper's special `MPI_CL_MEM` value, telling the receiving side that the
//! peer is a *communicator device* and that the runtime should engage the
//! optimized host↔device transfer path (paper §IV-C).

/// Tag describing a message's payload (subset of `MPI_Datatype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Datatype {
    /// Untyped bytes (`MPI_BYTE`).
    #[default]
    Bytes,
    /// 32-bit floats (`MPI_FLOAT`); length must be a multiple of 4.
    F32,
    /// 64-bit floats (`MPI_DOUBLE`); length must be a multiple of 8.
    F64,
    /// The paper's `MPI_CL_MEM`: the buffer lives in (or is destined for)
    /// device memory and the endpoints collaborate on an optimized,
    /// possibly pipelined, transfer.
    ClMem,
}

impl Datatype {
    /// Size in bytes of one element, if the type has a fixed extent.
    pub fn extent(self) -> Option<usize> {
        match self {
            Datatype::Bytes | Datatype::ClMem => Some(1),
            Datatype::F32 => Some(4),
            Datatype::F64 => Some(8),
        }
    }
}

/// View a `f32` slice as bytes (little-endian host layout).
pub fn f32_as_bytes(v: &[f32]) -> &[u8] {
    // SAFETY: f32 has no padding or invalid bit patterns as bytes; the
    // length is scaled by size_of::<f32>.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// View a `f64` slice as bytes.
pub fn f64_as_bytes(v: &[f64]) -> &[u8] {
    // SAFETY: as above for f64.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// Copy bytes into a `f32` vector (panics if not a multiple of 4).
pub fn bytes_to_f32(b: &[u8]) -> Vec<f32> {
    assert_eq!(
        b.len() % 4,
        0,
        "byte length {} not a multiple of 4",
        b.len()
    );
    b.chunks_exact(4)
        .map(|c| f32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Copy bytes into a `f64` vector (panics if not a multiple of 8).
pub fn bytes_to_f64(b: &[u8]) -> Vec<f64> {
    assert_eq!(
        b.len() % 8,
        0,
        "byte length {} not a multiple of 8",
        b.len()
    );
    b.chunks_exact(8)
        .map(|c| f64::from_ne_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents() {
        assert_eq!(Datatype::Bytes.extent(), Some(1));
        assert_eq!(Datatype::F32.extent(), Some(4));
        assert_eq!(Datatype::F64.extent(), Some(8));
        assert_eq!(Datatype::ClMem.extent(), Some(1));
    }

    #[test]
    fn f32_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MAX];
        assert_eq!(bytes_to_f32(f32_as_bytes(&v)), v);
    }

    #[test]
    fn f64_roundtrip() {
        let v = vec![std::f64::consts::PI, -0.5, 1e300];
        assert_eq!(bytes_to_f64(f64_as_bytes(&v)), v);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn misaligned_f32_panics() {
        bytes_to_f32(&[0u8; 7]);
    }
}
