//! Datatype tags and typed byte-slice helpers.
//!
//! minimpi moves raw bytes; a [`Datatype`] tag travels with every message.
//! The tag matters for one thing above all: [`Datatype::ClMem`] is the
//! paper's special `MPI_CL_MEM` value, telling the receiving side that the
//! peer is a *communicator device* and that the runtime should engage the
//! optimized host↔device transfer path (paper §IV-C).

/// Tag describing a message's payload (subset of `MPI_Datatype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Datatype {
    /// Untyped bytes (`MPI_BYTE`).
    #[default]
    Bytes,
    /// 32-bit floats (`MPI_FLOAT`); length must be a multiple of 4.
    F32,
    /// 64-bit floats (`MPI_DOUBLE`); length must be a multiple of 8.
    F64,
    /// The paper's `MPI_CL_MEM`: the buffer lives in (or is destined for)
    /// device memory and the endpoints collaborate on an optimized,
    /// possibly pipelined, transfer.
    ClMem,
}

impl Datatype {
    /// Size in bytes of one element, if the type has a fixed extent.
    pub fn extent(self) -> Option<usize> {
        match self {
            Datatype::Bytes | Datatype::ClMem => Some(1),
            Datatype::F32 => Some(4),
            Datatype::F64 => Some(8),
        }
    }
}

/// View a `f32` slice as bytes (little-endian host layout).
pub fn f32_as_bytes(v: &[f32]) -> &[u8] {
    // SAFETY: f32 has no padding or invalid bit patterns as bytes; the
    // length is scaled by size_of::<f32>.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// View a `f64` slice as bytes.
pub fn f64_as_bytes(v: &[f64]) -> &[u8] {
    // SAFETY: as above for f64.
    unsafe { std::slice::from_raw_parts(v.as_ptr().cast::<u8>(), std::mem::size_of_val(v)) }
}

/// Copy bytes into a `f32` vector, reporting a misaligned (truncated)
/// payload as [`MpiError::Truncated`](crate::p2p::MpiError::Truncated) instead of panicking.
pub fn try_bytes_to_f32(b: &[u8]) -> Result<Vec<f32>, crate::p2p::MpiError> {
    if !b.len().is_multiple_of(4) {
        return Err(crate::p2p::MpiError::Truncated {
            len: b.len(),
            capacity: b.len() - b.len() % 4,
        });
    }
    Ok(b.chunks_exact(4)
        .map(|c| f32::from_ne_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Copy bytes into a `f64` vector, reporting a misaligned (truncated)
/// payload as [`MpiError::Truncated`](crate::p2p::MpiError::Truncated) instead of panicking.
pub fn try_bytes_to_f64(b: &[u8]) -> Result<Vec<f64>, crate::p2p::MpiError> {
    if !b.len().is_multiple_of(8) {
        return Err(crate::p2p::MpiError::Truncated {
            len: b.len(),
            capacity: b.len() - b.len() % 8,
        });
    }
    Ok(b.chunks_exact(8)
        .map(|c| f64::from_ne_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Copy bytes into a `f32` vector (panics if not a multiple of 4).
pub fn bytes_to_f32(b: &[u8]) -> Vec<f32> {
    try_bytes_to_f32(b).unwrap_or_else(|_| panic!("byte length {} not a multiple of 4", b.len()))
}

/// Copy bytes into a `f64` vector (panics if not a multiple of 8).
pub fn bytes_to_f64(b: &[u8]) -> Vec<f64> {
    try_bytes_to_f64(b).unwrap_or_else(|_| panic!("byte length {} not a multiple of 8", b.len()))
}

/// Why a derived datatype description was rejected at commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatatypeError {
    /// A field combination describes overlapping or out-of-order bytes
    /// (e.g. `blocklen > stride`), or a zero-sized element/dimension.
    Invalid(&'static str),
    /// The declared extent is smaller than the span the type map covers.
    ExtentTooSmall {
        /// Declared extent in bytes.
        declared: usize,
        /// Minimum extent required by the type map.
        required: usize,
    },
}

impl std::fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatatypeError::Invalid(why) => write!(f, "invalid derived datatype: {why}"),
            DatatypeError::ExtentTooSmall { declared, required } => write!(
                f,
                "declared extent {declared} smaller than type-map span {required}"
            ),
        }
    }
}

impl std::error::Error for DatatypeError {}

/// A derived (possibly noncontiguous) datatype described over a flat byte
/// region — the minimpi analogue of `MPI_Type_vector` and
/// `MPI_Type_create_subarray`. All units are bytes; a description must be
/// [`DerivedType::commit`]ted before use, which validates it and
/// precomputes the coalesced type map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivedType {
    /// `len` contiguous bytes at the start of the region.
    Contiguous {
        /// Length in bytes.
        len: usize,
    },
    /// `count` blocks of `blocklen` bytes, block *i* starting at byte
    /// `i * stride`; `extent` is the total region span (≥ the type-map
    /// span, allowing trailing padding as with `MPI_Type_create_resized`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Bytes per block.
        blocklen: usize,
        /// Byte distance between successive block starts.
        stride: usize,
        /// Total described-region span in bytes.
        extent: usize,
    },
    /// Row-major N-dimensional subarray of `elem`-byte elements: the
    /// `subsizes` box at origin `starts` inside a `sizes` array. The last
    /// dimension is innermost (contiguous).
    Subarray {
        /// Bytes per array element.
        elem: usize,
        /// Full array dimensions, outermost first.
        sizes: Vec<usize>,
        /// Selected box dimensions.
        subsizes: Vec<usize>,
        /// Box origin per dimension.
        starts: Vec<usize>,
    },
}

impl DerivedType {
    /// Validate the description and precompute its coalesced type map.
    pub fn commit(&self) -> Result<CommittedType, DatatypeError> {
        let (raw, extent) = match self {
            DerivedType::Contiguous { len } => (vec![(0usize, *len)], *len),
            DerivedType::Vector {
                count,
                blocklen,
                stride,
                extent,
            } => {
                if *count > 1 && *blocklen > *stride {
                    return Err(DatatypeError::Invalid("blocklen exceeds stride"));
                }
                let span = if *count == 0 || *blocklen == 0 {
                    0
                } else {
                    (*count - 1) * *stride + *blocklen
                };
                if *extent < span {
                    return Err(DatatypeError::ExtentTooSmall {
                        declared: *extent,
                        required: span,
                    });
                }
                let raw = (0..*count)
                    .filter(|_| *blocklen > 0)
                    .map(|i| (i * *stride, *blocklen))
                    .collect();
                (raw, *extent)
            }
            DerivedType::Subarray {
                elem,
                sizes,
                subsizes,
                starts,
            } => {
                if *elem == 0 {
                    return Err(DatatypeError::Invalid("zero-byte element"));
                }
                if sizes.is_empty() || sizes.len() != subsizes.len() || sizes.len() != starts.len()
                {
                    return Err(DatatypeError::Invalid(
                        "sizes/subsizes/starts rank mismatch",
                    ));
                }
                for d in 0..sizes.len() {
                    if sizes[d] == 0 {
                        return Err(DatatypeError::Invalid("zero-sized array dimension"));
                    }
                    if starts[d] + subsizes[d] > sizes[d] {
                        return Err(DatatypeError::Invalid("subarray box exceeds array bounds"));
                    }
                }
                // Row-major byte strides per dimension.
                let n = sizes.len();
                let mut dim_stride = vec![*elem; n];
                for d in (0..n - 1).rev() {
                    dim_stride[d] = dim_stride[d + 1] * sizes[d + 1];
                }
                let extent = dim_stride[0] * sizes[0];
                let empty = subsizes.contains(&0);
                let mut raw = Vec::new();
                if !empty {
                    // One contiguous run per outer-index combination; the
                    // innermost dimension is the run itself. Decomposing
                    // the linear index innermost-outer-dim-first yields
                    // runs in ascending region order.
                    let run = subsizes[n - 1] * *elem;
                    let rows: usize = subsizes[..n - 1].iter().product();
                    for lin in 0..rows {
                        let mut rem = lin;
                        let mut off = starts[n - 1] * *elem;
                        for d in (0..n - 1).rev() {
                            let i = rem % subsizes[d];
                            rem /= subsizes[d];
                            off += (starts[d] + i) * dim_stride[d];
                        }
                        raw.push((off, run));
                    }
                }
                (raw, extent)
            }
        };
        // Coalesce abutting segments (e.g. a full-width subarray row run,
        // or a vector with blocklen == stride, collapses to contiguous).
        let mut segments: Vec<(usize, usize)> = Vec::new();
        for (off, len) in raw {
            if len == 0 {
                continue;
            }
            match segments.last_mut() {
                Some((poff, plen)) if *poff + *plen == off => *plen += len,
                _ => segments.push((off, len)),
            }
        }
        let packed = segments.iter().map(|&(_, l)| l).sum();
        Ok(CommittedType {
            desc: self.clone(),
            segments,
            packed,
            extent,
        })
    }
}

/// A committed derived datatype: the validated description plus its
/// coalesced type map. `segments` are `(region_offset, len)` pairs in
/// ascending, non-overlapping order; packing concatenates them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedType {
    desc: DerivedType,
    segments: Vec<(usize, usize)>,
    packed: usize,
    extent: usize,
}

impl CommittedType {
    /// The original description this type was committed from.
    pub fn describe(&self) -> &DerivedType {
        &self.desc
    }

    /// Contiguous wire size in bytes (sum of all segment lengths).
    pub fn packed_size(&self) -> usize {
        self.packed
    }

    /// Span of the described region in bytes.
    pub fn extent(&self) -> usize {
        self.extent
    }

    /// The coalesced `(region_offset, len)` type map.
    pub fn segments(&self) -> &[(usize, usize)] {
        &self.segments
    }

    /// True when the whole type map is one segment starting at offset 0 —
    /// packing would be a memcpy, so transports can skip it.
    pub fn is_contiguous(&self) -> bool {
        self.packed == 0 || (self.segments.len() == 1 && self.segments[0].0 == 0)
    }

    /// Map the packed-byte range `[lo, hi)` back onto the region: returns
    /// `(region_offset, len)` pieces in order. This is what lets a chunked
    /// transport pack/unpack one wire chunk at a time.
    pub fn segments_for_packed_range(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        assert!(lo <= hi && hi <= self.packed, "packed range out of bounds");
        let mut out = Vec::new();
        let mut pos = 0usize;
        for &(off, len) in &self.segments {
            let seg_lo = pos;
            let seg_hi = pos + len;
            pos = seg_hi;
            if seg_hi <= lo {
                continue;
            }
            if seg_lo >= hi {
                break;
            }
            let cut_lo = lo.max(seg_lo);
            let cut_hi = hi.min(seg_hi);
            out.push((off + (cut_lo - seg_lo), cut_hi - cut_lo));
        }
        out
    }

    /// Host reference pack: gather the type map out of `region` (which
    /// must cover the extent) into a contiguous wire buffer.
    pub fn pack(&self, region: &[u8]) -> Vec<u8> {
        assert!(
            region.len() >= self.extent,
            "region of {} bytes shorter than extent {}",
            region.len(),
            self.extent
        );
        let mut out = Vec::with_capacity(self.packed);
        for &(off, len) in &self.segments {
            out.extend_from_slice(&region[off..off + len]);
        }
        out
    }

    /// Host reference unpack: scatter a contiguous wire buffer back into
    /// `region` through the type map. A short or long wire payload is
    /// reported as [`MpiError::Truncated`](crate::p2p::MpiError).
    pub fn unpack(&self, packed: &[u8], region: &mut [u8]) -> Result<(), crate::p2p::MpiError> {
        if packed.len() != self.packed {
            return Err(crate::p2p::MpiError::Truncated {
                len: packed.len(),
                capacity: self.packed,
            });
        }
        assert!(
            region.len() >= self.extent,
            "region of {} bytes shorter than extent {}",
            region.len(),
            self.extent
        );
        let mut pos = 0usize;
        for &(off, len) in &self.segments {
            region[off..off + len].copy_from_slice(&packed[pos..pos + len]);
            pos += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents() {
        assert_eq!(Datatype::Bytes.extent(), Some(1));
        assert_eq!(Datatype::F32.extent(), Some(4));
        assert_eq!(Datatype::F64.extent(), Some(8));
        assert_eq!(Datatype::ClMem.extent(), Some(1));
    }

    #[test]
    fn f32_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MAX];
        assert_eq!(bytes_to_f32(f32_as_bytes(&v)), v);
    }

    #[test]
    fn f64_roundtrip() {
        let v = vec![std::f64::consts::PI, -0.5, 1e300];
        assert_eq!(bytes_to_f64(f64_as_bytes(&v)), v);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn misaligned_f32_panics() {
        bytes_to_f32(&[0u8; 7]);
    }

    #[test]
    fn try_variants_report_truncation() {
        assert_eq!(
            try_bytes_to_f32(&[0u8; 7]),
            Err(crate::p2p::MpiError::Truncated {
                len: 7,
                capacity: 4
            })
        );
        assert_eq!(
            try_bytes_to_f64(&[0u8; 12]),
            Err(crate::p2p::MpiError::Truncated {
                len: 12,
                capacity: 8
            })
        );
        assert_eq!(try_bytes_to_f64(&[0u8; 16]).map(|v| v.len()), Ok(2));
    }

    fn region(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 251) as u8).collect()
    }

    #[test]
    fn vector_type_map_and_roundtrip() {
        let t = DerivedType::Vector {
            count: 3,
            blocklen: 4,
            stride: 10,
            extent: 30,
        }
        .commit()
        .expect("valid vector");
        assert_eq!(t.packed_size(), 12);
        assert_eq!(t.extent(), 30);
        assert_eq!(t.segments(), &[(0, 4), (10, 4), (20, 4)]);
        assert!(!t.is_contiguous());
        let src = region(30);
        let wire = t.pack(&src);
        assert_eq!(wire.len(), 12);
        let mut dst = vec![0u8; 30];
        t.unpack(&wire, &mut dst).expect("sizes match");
        for &(off, len) in t.segments() {
            assert_eq!(&dst[off..off + len], &src[off..off + len]);
        }
    }

    #[test]
    fn dense_vector_coalesces_to_contiguous() {
        let t = DerivedType::Vector {
            count: 5,
            blocklen: 8,
            stride: 8,
            extent: 40,
        }
        .commit()
        .expect("valid");
        assert_eq!(t.segments(), &[(0, 40)]);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_commit_rejects_bad_shapes() {
        assert_eq!(
            DerivedType::Vector {
                count: 2,
                blocklen: 9,
                stride: 8,
                extent: 100
            }
            .commit(),
            Err(DatatypeError::Invalid("blocklen exceeds stride"))
        );
        assert_eq!(
            DerivedType::Vector {
                count: 3,
                blocklen: 4,
                stride: 10,
                extent: 23
            }
            .commit(),
            Err(DatatypeError::ExtentTooSmall {
                declared: 23,
                required: 24
            })
        );
    }

    #[test]
    fn subarray_interior_face() {
        // 5x6 array of 4-byte elements; interior 3x4 box at (1,1) — the
        // himeno halo-face shape.
        let t = DerivedType::Subarray {
            elem: 4,
            sizes: vec![5, 6],
            subsizes: vec![3, 4],
            starts: vec![1, 1],
        }
        .commit()
        .expect("valid");
        assert_eq!(t.extent(), 5 * 6 * 4);
        assert_eq!(t.packed_size(), 3 * 4 * 4);
        assert_eq!(t.segments(), &[(28, 16), (52, 16), (76, 16)]);
        let src = region(t.extent());
        let wire = t.pack(&src);
        let mut dst = vec![0u8; t.extent()];
        t.unpack(&wire, &mut dst).expect("sizes match");
        assert_eq!(t.pack(&dst), wire);
    }

    #[test]
    fn full_subarray_coalesces() {
        let t = DerivedType::Subarray {
            elem: 8,
            sizes: vec![4, 3],
            subsizes: vec![4, 3],
            starts: vec![0, 0],
        }
        .commit()
        .expect("valid");
        assert!(t.is_contiguous());
        assert_eq!(t.segments(), &[(0, 96)]);
    }

    #[test]
    fn subarray_3d_ascending_segments() {
        let t = DerivedType::Subarray {
            elem: 1,
            sizes: vec![3, 4, 5],
            subsizes: vec![2, 2, 3],
            starts: vec![1, 1, 1],
        }
        .commit()
        .expect("valid");
        let mut prev_end = 0usize;
        for &(off, len) in t.segments() {
            assert!(off >= prev_end, "segments out of order");
            prev_end = off + len;
        }
        assert_eq!(t.packed_size(), 2 * 2 * 3);
        assert_eq!(
            DerivedType::Subarray {
                elem: 1,
                sizes: vec![3],
                subsizes: vec![4],
                starts: vec![0]
            }
            .commit(),
            Err(DatatypeError::Invalid("subarray box exceeds array bounds"))
        );
    }

    #[test]
    fn packed_range_maps_back_to_region() {
        let t = DerivedType::Vector {
            count: 4,
            blocklen: 6,
            stride: 16,
            extent: 64,
        }
        .commit()
        .expect("valid");
        // Chunk boundaries that split blocks mid-way.
        assert_eq!(t.segments_for_packed_range(0, 24), t.segments().to_vec());
        assert_eq!(t.segments_for_packed_range(4, 9), vec![(4, 2), (16, 3)]);
        assert_eq!(t.segments_for_packed_range(11, 13), vec![(21, 1), (32, 1)]);
        assert_eq!(t.segments_for_packed_range(24, 24), Vec::new());
        // Piecewise chunked pack equals whole-type pack.
        let src = region(64);
        let whole = t.pack(&src);
        let mut pieced = Vec::new();
        for lo in (0..24).step_by(5) {
            let hi = (lo + 5).min(24);
            for (off, len) in t.segments_for_packed_range(lo, hi) {
                pieced.extend_from_slice(&src[off..off + len]);
            }
        }
        assert_eq!(pieced, whole);
    }

    #[test]
    fn unpack_length_mismatch_is_truncated_error() {
        let t = DerivedType::Contiguous { len: 8 }.commit().expect("valid");
        let mut dst = vec![0u8; 8];
        assert_eq!(
            t.unpack(&[0u8; 5], &mut dst),
            Err(crate::p2p::MpiError::Truncated {
                len: 5,
                capacity: 8
            })
        );
    }
}
