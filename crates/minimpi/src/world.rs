//! World construction and the per-rank communication endpoint.

use std::collections::BTreeSet;
use std::sync::Arc;

use simnet::{ClusterSpec, Fabric, FaultCounts, FaultPlan};
use simtime::plock::Mutex;
use simtime::{Actor, Monitor, SimClock, SimNs, Trace};

use crate::p2p::RankState;
use crate::{Rank, Tag};

/// Wildcard source for receives (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<Rank> = None;
/// Wildcard tag for receives (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<Tag> = None;
/// Largest tag available to applications; larger tags are reserved for
/// collectives and the clMPI runtime.
pub const MAX_USER_TAG: Tag = (1 << 20) - 1;

pub(crate) struct WorldInner {
    pub clock: SimClock,
    pub fabric: Fabric,
    pub ranks: Vec<Arc<Monitor<RankState>>>,
    pub trace: Trace,
    /// Contexts of revoked communicators (ULFM `MPI_Comm_revoke`). One
    /// shared registry stands in for the asynchronous revoke broadcast a
    /// real stack runs: a revoke by any member is immediately visible on
    /// every rank, which keeps runs deterministic.
    pub revoked: Mutex<BTreeSet<u64>>,
    /// Window registry keyed by `(context, per-comm window sequence)`:
    /// ranks of one collective `win_create` call rendezvous on the shared
    /// window state here (all ranks are threads of one process, so the
    /// "window allocation exchange" is a map insert).
    pub windows: Mutex<std::collections::BTreeMap<(u64, u64), Arc<crate::rma::WinShared>>>,
}

/// A communication world: the set of ranks plus the fabric between them.
/// Cheap to clone; usually obtained from [`crate::run_world`].
#[derive(Clone)]
pub struct World {
    pub(crate) inner: Arc<WorldInner>,
}

impl World {
    /// Build a world of `size` ranks over `spec`'s interconnect.
    pub fn new(clock: SimClock, spec: ClusterSpec, size: usize) -> Self {
        Self::with_faults(clock, spec, size, FaultPlan::none())
    }

    /// Build a world whose fabric runs under `plan`. A [`FaultPlan::none`]
    /// plan behaves bit-identically to [`World::new`].
    pub fn with_faults(clock: SimClock, spec: ClusterSpec, size: usize, plan: FaultPlan) -> Self {
        let fabric = Fabric::with_faults(clock.clone(), spec, size, plan);
        let ranks = (0..size)
            .map(|_| Arc::new(Monitor::new(clock.clone(), RankState::default())))
            .collect();
        World {
            inner: Arc::new(WorldInner {
                clock,
                fabric,
                ranks,
                trace: Trace::new(),
                revoked: Mutex::new(BTreeSet::new()),
                windows: Mutex::new(std::collections::BTreeMap::new()),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.ranks.len()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Shared activity trace (lanes are free-form; the apps use
    /// "r{rank}.host", "r{rank}.gpu", "r{rank}.net").
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// The cluster description the fabric was built from.
    pub fn cluster(&self) -> &ClusterSpec {
        self.inner.fabric.spec()
    }

    /// True if a non-trivial fault plan is attached to the fabric.
    pub fn has_faults(&self) -> bool {
        self.inner.fabric.has_faults()
    }

    /// Aggregate fault counters across every link (all zero on a perfect
    /// fabric).
    pub fn fault_counts(&self) -> FaultCounts {
        self.inner.fabric.fault_counts()
    }

    /// The fault plan the fabric runs under ([`FaultPlan::none`] on a
    /// perfect fabric).
    pub fn fault_plan(&self) -> &FaultPlan {
        self.inner.fabric.fault_plan()
    }

    /// Transport class serving one-sided traffic between two (world)
    /// ranks' nodes: loopback, NIC, or a shared CXL pool port.
    pub fn fabric_class(&self, a: Rank, b: Rank) -> simnet::FabricClass {
        self.inner.fabric.fabric_class(a, b)
    }

    /// True if (world) rank `rank`'s node is scheduled dead at virtual
    /// instant `t` — the deterministic ground truth the ULFM-style layer
    /// classifies timeouts against.
    pub fn node_down_at(&self, rank: Rank, t: SimNs) -> bool {
        self.inner.fabric.node_down_at(rank, t)
    }

    /// True if (world) rank `rank`'s node is scheduled dead at any
    /// instant of `[from, until)`.
    pub fn node_down_in(&self, rank: Rank, from: SimNs, until: SimNs) -> bool {
        self.inner.fabric.node_down_in(rank, from, until)
    }

    /// Grant every reservation still sitting in the fabric's deferred-send
    /// arbiter, in canonical order. Called once at teardown (after all
    /// ranks joined): fire-and-forget isends nobody waited on still get
    /// their trace spans and fault counters, deterministically.
    pub fn drain_deferred(&self) {
        self.inner.fabric.pump(SimNs::MAX);
    }

    /// A communication endpoint for `rank`. Any thread of the rank may use
    /// a clone of it concurrently (thread-multiple semantics).
    pub fn comm(&self, rank: Rank) -> Comm {
        assert!(rank < self.size(), "rank {rank} out of range");
        Comm::world_comm(self.clone(), rank)
    }
}

/// A per-rank communicator endpoint (`MPI_COMM_WORLD` or a communicator
/// produced by [`Comm::split`]).
///
/// All operations take the calling thread's [`Actor`] explicitly, because a
/// rank may have several threads (host thread, clMPI communication thread,
/// OpenCL queue executors), each being its own virtual-time actor.
#[derive(Clone)]
pub struct Comm {
    pub(crate) world: World,
    /// Global (world) rank of this endpoint.
    pub(crate) rank: Rank,
    /// Communication context: messages only match within one context
    /// (0 = the world communicator).
    pub(crate) context: u64,
    /// Members (global ranks) in local-rank order; `None` = all world
    /// ranks, identity-mapped.
    pub(crate) members: Option<std::sync::Arc<Vec<Rank>>>,
    /// Per-endpoint collective-call counter, used to derive deterministic
    /// child context ids for `split`/`shrink` (every member calls in
    /// lockstep).
    pub(crate) split_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Per-endpoint agreement-call counter: stripes the agreement tag
    /// space so a late message from a timed-out round cannot match a
    /// later agreement's receive.
    pub(crate) agree_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Per-endpoint window-creation counter: every member calls
    /// [`crate::rma` `win_create`] in lockstep, so `(context, win_seq)`
    /// identifies one collective window deterministically.
    pub(crate) win_seq: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Comm {
    pub(crate) fn world_comm(world: World, rank: Rank) -> Self {
        Comm {
            world,
            rank,
            context: 0,
            members: None,
            split_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            agree_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            win_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Construct a child communicator with an explicit context and member
    /// table (global ranks in local order). Used by `split` and the
    /// ULFM-style `shrink`; every member must derive the same arguments.
    pub(crate) fn derive(&self, context: u64, members: Vec<Rank>) -> Comm {
        Comm {
            world: self.world.clone(),
            rank: self.rank,
            context,
            members: Some(std::sync::Arc::new(members)),
            split_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            agree_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            win_seq: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// This endpoint's rank **within this communicator**.
    pub fn rank(&self) -> Rank {
        match &self.members {
            None => self.rank,
            Some(m) => m
                .iter()
                .position(|&g| g == self.rank)
                .expect("member of own communicator"),
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        match &self.members {
            None => self.world.size(),
            Some(m) => m.len(),
        }
    }

    /// Translate a communicator-local rank to the global (world) rank.
    pub fn global_rank(&self, local: Rank) -> Rank {
        match &self.members {
            None => local,
            Some(m) => m[local],
        }
    }

    /// Translate a global rank to this communicator's local rank (None if
    /// the rank is not a member).
    pub fn local_rank(&self, global: Rank) -> Option<Rank> {
        match &self.members {
            None => (global < self.world.size()).then_some(global),
            Some(m) => m.iter().position(|&g| g == global),
        }
    }

    /// The world this endpoint belongs to.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Split this communicator (`MPI_Comm_split`): ranks passing the same
    /// `color` end up in the same child communicator, ordered by
    /// `(key, parent rank)`. Collective over all members. `None` color
    /// (`MPI_UNDEFINED`) yields `None`.
    pub fn split(&self, actor: &simtime::Actor, color: Option<i32>, key: i32) -> Option<Comm> {
        // Gather (has-color, color, key, global rank) from every member.
        // A dedicated flag byte distinguishes `None` (MPI_UNDEFINED) from
        // every concrete color value — including `Some(i32::MIN)`, which a
        // sentinel encoding would silently misread as undefined.
        let mine = {
            let mut b = Vec::with_capacity(17);
            b.push(color.is_some() as u8);
            b.extend_from_slice(&color.unwrap_or(0).to_ne_bytes());
            b.extend_from_slice(&key.to_ne_bytes());
            b.extend_from_slice(&(self.rank as u64).to_ne_bytes());
            b
        };
        let all = self.allgather(actor, &mine);
        let seq = self
            .split_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let my_color = color?;
        let mut members: Vec<(i32, Rank)> = all
            .iter()
            .filter_map(|b| {
                let has = b[0] != 0;
                let c = i32::from_ne_bytes(b[1..5].try_into().expect("color"));
                let k = i32::from_ne_bytes(b[5..9].try_into().expect("key"));
                let g = u64::from_ne_bytes(b[9..17].try_into().expect("rank")) as Rank;
                (has && c == my_color).then_some((k, g))
            })
            .collect();
        members.sort_unstable();
        let members: Vec<Rank> = members.into_iter().map(|(_, g)| g).collect();
        // Deterministic child context: all members compute the same value
        // (FNV-1a over parent context, call sequence, and color).
        let mut h: u64 = 0xcbf29ce484222325;
        for v in [self.context, seq, my_color as u64] {
            for byte in v.to_ne_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        let context = h | 1; // never collide with the world context 0
        Some(self.derive(context, members))
    }
}

/// One rank of a running world: an endpoint plus the main ("host") thread's
/// actor. Created by the launcher; apps usually pass `&Process` around.
pub struct Process {
    /// The rank's communication endpoint.
    pub comm: Comm,
    /// The host thread's virtual-time actor.
    pub actor: Actor,
}

impl Process {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        self.comm.world.clock()
    }

    /// Spend `ns` of virtual time on host computation.
    pub fn host_compute_ns(&self, ns: u64) {
        self.actor.advance_ns(ns);
    }
}
