//! Collective operations built over point-to-point messaging.
//!
//! The paper's clMPI deliberately offers **no** collective commands
//! (§IV-C): collectives stay ordinary MPI calls. These implementations
//! exist so the applications (Himeno, nanopowder) and tests can use them.
//!
//! Tags above [`crate::MAX_USER_TAG`] are reserved; collectives use the
//! `COLL_*` bases so they never collide with application traffic.

use simtime::Actor;

use crate::world::Comm;
use crate::{Rank, Tag};

const COLL_BARRIER: Tag = (1 << 20) + 0x100;
const COLL_BCAST: Tag = (1 << 20) + 0x200;
const COLL_REDUCE: Tag = (1 << 20) + 0x300;
const COLL_GATHER: Tag = (1 << 20) + 0x400;
const COLL_ALLREDUCE: Tag = (1 << 20) + 0x500;
const COLL_SCATTER: Tag = (1 << 20) + 0x600;
const COLL_ALLGATHER: Tag = (1 << 20) + 0x700;

/// Reduction operator for [`Comm::reduce`] / [`Comm::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    /// Fold `other` into `acc` elementwise. Public so layered runtimes
    /// (clmpi's device-buffer ring reduction) apply the exact same
    /// operator semantics as the host collectives here.
    pub fn fold(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Min => a.min(*b),
                ReduceOp::Max => a.max(*b),
            };
        }
    }
}

impl Comm {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ n⌉ rounds).
    /// Every rank leaves at the same virtual instant or later.
    pub fn barrier(&self, actor: &Actor) {
        self.barrier_tagged(actor, 0);
    }

    /// Barrier with a caller-chosen sub-tag so independent subsystems can
    /// synchronize without cross-talk. `sub` must be below 8: each barrier
    /// consumes one 32-tag stripe (one tag per round) of the `COLL_BARRIER`
    /// region.
    pub fn barrier_tagged(&self, actor: &Actor, sub: Tag) {
        assert!((0..8).contains(&sub), "barrier sub-tag {sub} out of range");
        // Dissemination barrier: in round k every rank sends to
        // (r + 2^k) mod n and receives from (r − 2^k) mod n. After
        // ⌈log₂ n⌉ rounds each rank has (transitively) heard from every
        // other, with no single-rank serialization point — unlike the old
        // flat gather-release this costs O(log n) rounds on every NIC
        // instead of O(n) messages on rank 0's.
        let n = self.size();
        let r = self.rank();
        let mut k = 0;
        while (1usize << k) < n {
            let tag = COLL_BARRIER + sub * 32 + k as Tag;
            let dist = 1usize << k;
            let to = (r + dist) % n;
            let from = (r + n - dist) % n;
            let req = self.isend(actor, to, tag, &[]);
            self.recv(actor, Some(from), Some(tag));
            req.wait(actor);
            k += 1;
        }
    }

    /// Broadcast `data` from `root` to all ranks (binomial tree). Returns
    /// the payload on every rank (the root gets its own copy back).
    pub fn bcast(&self, actor: &Actor, root: Rank, data: Option<&[u8]>) -> Vec<u8> {
        assert!(root < self.size(), "bcast root out of range");
        let n = self.size();
        // Rotate so the tree is rooted at 0.
        let vrank = (self.rank() + n - root) % n;
        let mut payload: Option<Vec<u8>> = if self.rank() == root {
            Some(
                data.expect("root must supply the broadcast payload")
                    .to_vec(),
            )
        } else {
            None
        };
        let npow = next_pow2(n);
        // Receive from parent (higher bits cleared), then forward to
        // children in decreasing mask order.
        let mut mask = 1;
        while mask < npow {
            if vrank & mask != 0 {
                let vparent = vrank & !mask;
                let parent = (vparent + root) % n;
                let res = self.recv(actor, Some(parent), Some(COLL_BCAST));
                payload = Some(res.data);
                break;
            }
            mask <<= 1;
        }
        let received_mask = mask;
        let mut mask = received_mask >> 1;
        if vrank == 0 {
            mask = npow >> 1;
        }
        let payload = payload.expect("broadcast payload must exist by now");
        while mask > 0 {
            let vchild = vrank | mask;
            if vchild < n && vchild != vrank {
                let child = (vchild + root) % n;
                self.send(actor, child, COLL_BCAST, &payload);
            }
            mask >>= 1;
        }
        payload
    }

    /// Reduce `contrib` elementwise to `root` (linear gather at root —
    /// adequate for the world sizes in this workspace). Returns the result
    /// at the root, `None` elsewhere.
    pub fn reduce(
        &self,
        actor: &Actor,
        root: Rank,
        op: ReduceOp,
        contrib: &[f64],
    ) -> Option<Vec<f64>> {
        if self.rank() == root {
            let mut acc = contrib.to_vec();
            for _ in 0..self.size() - 1 {
                let res = self.recv(actor, None, Some(COLL_REDUCE));
                let vals = crate::datatype::try_bytes_to_f64(&res.data).unwrap_or_else(|e| {
                    panic!("reduce: contribution from rank {}: {e}", res.status.source)
                });
                op.fold(&mut acc, &vals);
            }
            Some(acc)
        } else {
            self.send(
                actor,
                root,
                COLL_REDUCE,
                crate::datatype::f64_as_bytes(contrib),
            );
            None
        }
    }

    /// Allreduce: reduce to rank 0 then broadcast the result.
    pub fn allreduce(&self, actor: &Actor, op: ReduceOp, contrib: &[f64]) -> Vec<f64> {
        match self.reduce(actor, 0, op, contrib) {
            Some(acc) => {
                let bytes = crate::datatype::f64_as_bytes(&acc).to_vec();
                // Reuse bcast's tree but on the ALLREDUCE tag via payload
                // broadcast (distinct tag avoids interleaving with user
                // bcasts of the same iteration).
                self.bcast_tagged(actor, 0, Some(&bytes), COLL_ALLREDUCE)
                    .chunks_exact(8)
                    .map(|c| f64::from_ne_bytes(c.try_into().expect("8-byte chunk")))
                    .collect()
            }
            None => {
                let data = self.bcast_tagged(actor, 0, None, COLL_ALLREDUCE);
                crate::datatype::try_bytes_to_f64(&data)
                    .unwrap_or_else(|e| panic!("allreduce: broadcast result: {e}"))
            }
        }
    }

    /// Gather each rank's `contrib` at `root`, concatenated in rank order.
    /// Returns `Some` at the root, `None` elsewhere.
    pub fn gather(&self, actor: &Actor, root: Rank, contrib: &[u8]) -> Option<Vec<Vec<u8>>> {
        if self.rank() == root {
            let mut out: Vec<Option<Vec<u8>>> = vec![None; self.size()];
            out[root] = Some(contrib.to_vec());
            for _ in 0..self.size() - 1 {
                let res = self.recv(actor, None, Some(COLL_GATHER));
                out[res.status.source] = Some(res.data);
            }
            Some(
                out.into_iter()
                    .map(|o| o.expect("every rank contributes"))
                    .collect(),
            )
        } else {
            self.send(actor, root, COLL_GATHER, contrib);
            None
        }
    }

    /// Scatter: `root` holds one chunk per rank (in rank order); every
    /// rank receives its chunk. `chunks` must be `Some` at the root with
    /// exactly `size()` entries.
    pub fn scatter(&self, actor: &Actor, root: Rank, chunks: Option<&[Vec<u8>]>) -> Vec<u8> {
        if self.rank() == root {
            let chunks = chunks.expect("root supplies the scatter chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            for (r, c) in chunks.iter().enumerate() {
                if r != root {
                    self.send(actor, r, COLL_SCATTER, c);
                }
            }
            chunks[root].clone()
        } else {
            self.recv(actor, Some(root), Some(COLL_SCATTER)).data
        }
    }

    /// Allgather: every rank contributes `contrib`; every rank receives
    /// all contributions in rank order (gather to 0, then broadcast).
    pub fn allgather(&self, actor: &Actor, contrib: &[u8]) -> Vec<Vec<u8>> {
        match self.gather(actor, 0, contrib) {
            Some(all) => {
                let lens: Vec<u32> = all.iter().map(|v| v.len() as u32).collect();
                let mut flat: Vec<u8> = Vec::with_capacity(4 * lens.len());
                for l in &lens {
                    flat.extend_from_slice(&l.to_ne_bytes());
                }
                for v in &all {
                    flat.extend_from_slice(v);
                }
                self.bcast_tagged(actor, 0, Some(&flat), COLL_ALLGATHER);
                all
            }
            None => {
                let flat = self.bcast_tagged(actor, 0, None, COLL_ALLGATHER);
                let n = self.size();
                let mut lens = Vec::with_capacity(n);
                for i in 0..n {
                    lens.push(u32::from_ne_bytes(
                        flat[4 * i..4 * i + 4].try_into().expect("length header"),
                    ) as usize);
                }
                let mut off = 4 * n;
                lens.into_iter()
                    .map(|l| {
                        let v = flat[off..off + l].to_vec();
                        off += l;
                        v
                    })
                    .collect()
            }
        }
    }

    fn bcast_tagged(&self, actor: &Actor, root: Rank, data: Option<&[u8]>, tag: Tag) -> Vec<u8> {
        // Linear broadcast on a private tag; used by allreduce only, where
        // payloads are small.
        if self.rank() == root {
            let payload = data.expect("root supplies payload").to_vec();
            for r in 0..self.size() {
                if r != root {
                    self.send(actor, r, tag, &payload);
                }
            }
            payload
        } else {
            self.recv(actor, Some(root), Some(tag)).data
        }
    }
}

fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}
