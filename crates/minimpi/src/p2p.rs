//! Point-to-point messaging: posting, matching, requests.
//!
//! Matching model (faithful to MPI):
//!
//! * Every incoming message gets a **receiver-side sequence number** at
//!   post (send) time; posted receives get a **posting order**. The
//!   matcher pairs posted receives, in posting order, with the
//!   lowest-sequence matching message — so same-signature traffic is
//!   non-overtaking on both sides.
//! * A message may be *matched* while still in flight; the receive only
//!   *completes* when the virtual clock reaches the message's arrival
//!   instant. (Real MPI matches on arrival of the envelope; the observable
//!   completion times are the same.)

use std::collections::BTreeMap;
use std::sync::Arc;

use simnet::{DropReason, FaultOutcome};
use simtime::{Actor, Monitor, SimNs};

use crate::world::{Comm, World};
use crate::{Datatype, Rank, Tag};

/// Errors surfaced through the `Result`-returning request/receive APIs
/// (the panicking wrappers remain for code that treats these as bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// A [`Request::wait_timeout`] deadline expired before any message
    /// matched the request.
    Timeout {
        /// Virtual nanoseconds waited before giving up.
        waited_ns: SimNs,
    },
    /// A message did not fit the caller's buffer
    /// ([`Comm::try_recv_into`]).
    Truncated {
        /// Incoming payload length in bytes.
        len: usize,
        /// Caller buffer capacity in bytes.
        capacity: usize,
    },
    /// A rank argument was outside the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: Rank,
        /// Communicator size.
        size: usize,
    },
    /// The peer process is dead (`MPI_ERR_PROC_FAILED`): the fabric's
    /// fault plan schedules its node down at the instant the operation
    /// needed it. Produced by the ULFM-style detection layer, which
    /// classifies timeouts against the plan rather than wall-clock.
    ProcFailed {
        /// Communicator-local rank of the failed peer.
        rank: Rank,
    },
    /// The communicator was revoked (`MPI_ERR_REVOKED`): some member
    /// called [`Comm::revoke`], and all subsequent fallible operations
    /// on it fail until survivors [`Comm::shrink`] to a fresh one.
    Revoked,
    /// A window operation (`Put`/`Get`/`Accumulate`) was issued outside
    /// any access epoch on its target: no fence has opened the window and
    /// no passive-target lock of `target` is held (`MPI_ERR_RMA_SYNC`).
    RmaNoEpoch {
        /// Communicator-local target rank of the offending operation.
        target: Rank,
    },
    /// `Win::lock` on a target this rank already holds locked — passive
    /// epochs on one target do not nest (`MPI_ERR_RMA_SYNC`).
    RmaAlreadyLocked {
        /// Communicator-local target rank.
        target: Rank,
    },
    /// `Win::unlock` on a target this rank never locked
    /// (`MPI_ERR_RMA_SYNC`).
    RmaNotLocked {
        /// Communicator-local target rank.
        target: Rank,
    },
    /// A window access of `[offset, offset + len)` falls outside the
    /// target rank's exposed window of `size` bytes (`MPI_ERR_RMA_RANGE`).
    RmaOutOfRange {
        /// Starting byte offset into the target window.
        offset: usize,
        /// Access length in bytes.
        len: usize,
        /// Target window size in bytes.
        size: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Timeout { waited_ns } => {
                write!(f, "request timed out after {waited_ns} virtual ns")
            }
            MpiError::Truncated { len, capacity } => {
                write!(
                    f,
                    "message of {len} bytes truncated into {capacity}-byte buffer"
                )
            }
            MpiError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            MpiError::ProcFailed { rank } => {
                write!(f, "peer rank {rank} is a failed process")
            }
            MpiError::Revoked => write!(f, "communicator has been revoked"),
            MpiError::RmaNoEpoch { target } => {
                write!(f, "window access to rank {target} outside any epoch")
            }
            MpiError::RmaAlreadyLocked { target } => {
                write!(f, "window lock of rank {target} is already held")
            }
            MpiError::RmaNotLocked { target } => {
                write!(f, "window unlock of rank {target} without a lock")
            }
            MpiError::RmaOutOfRange { offset, len, size } => {
                write!(
                    f,
                    "window access [{offset}, {}) outside {size}-byte window",
                    offset + len
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Delivery information of a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub source: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
    /// Datatype tag the sender attached.
    pub datatype: Datatype,
}

/// Payload + status from a completed receive.
#[derive(Debug, Clone)]
pub struct RecvResult {
    /// The received bytes.
    pub data: Vec<u8>,
    /// Delivery information.
    pub status: Status,
}

#[derive(Debug)]
pub(crate) struct InMsg {
    /// Global rank of the sender.
    src: Rank,
    /// Communication context (communicator id).
    context: u64,
    tag: Tag,
    datatype: Datatype,
    payload: Vec<u8>,
    visible_at: SimNs,
    seq: u64,
}

#[derive(Debug)]
struct PendingRecv {
    id: u64,
    /// Global rank filter.
    src: Option<Rank>,
    context: u64,
    tag: Option<Tag>,
    order: u64,
}

/// Per-rank matching engine state (behind a [`Monitor`]).
#[derive(Default)]
pub(crate) struct RankState {
    inbox: Vec<InMsg>,
    pending: Vec<PendingRecv>,
    /// Matched-but-unclaimed messages by posted-receive id; match order
    /// is decided by the ordered `inbox`/`pending` vecs.
    matched: BTreeMap<u64, InMsg>,
    next_seq: u64,
    next_recv_id: u64,
    next_order: u64,
}

impl RankState {
    /// Pair posted receives (posting order) with inbox messages
    /// (lowest sequence matching each). Called after every state change.
    fn try_match(&mut self) {
        // Pending receives are kept in posting order.
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            let candidate = self
                .inbox
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    m.context == p.context
                        && p.src.is_none_or(|s| s == m.src)
                        && p.tag.is_none_or(|t| t == m.tag)
                })
                .min_by_key(|(_, m)| m.seq)
                .map(|(idx, _)| idx);
            match candidate {
                Some(idx) => {
                    let msg = self.inbox.swap_remove(idx);
                    let p = self.pending.remove(i);
                    self.matched.insert(p.id, msg);
                    // restart not needed: removal keeps order; keep i
                }
                None => i += 1,
            }
        }
    }

    fn post(
        &mut self,
        msg_src: Rank,
        context: u64,
        tag: Tag,
        datatype: Datatype,
        payload: Vec<u8>,
        visible_at: SimNs,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inbox.push(InMsg {
            src: msg_src,
            context,
            tag,
            datatype,
            payload,
            visible_at,
            seq,
        });
        self.try_match();
    }

    fn post_recv(&mut self, src: Option<Rank>, context: u64, tag: Option<Tag>) -> u64 {
        let id = self.next_recv_id;
        self.next_recv_id += 1;
        let order = self.next_order;
        self.next_order += 1;
        self.pending.push(PendingRecv {
            id,
            src,
            context,
            tag,
            order,
        });
        // pending stays sorted by order because orders are monotone.
        debug_assert!(self.pending.windows(2).all(|w| w[0].order < w[1].order));
        self.try_match();
        id
    }
}

/// A non-blocking operation in flight (`MPI_Request`).
#[must_use = "requests must be waited or tested to observe completion"]
pub struct Request {
    kind: ReqKind,
}

/// Injection outcome of a send, filled in by the fabric arbiter's grant
/// callback. `drop_reason` is `Some` when the fault plan dropped the
/// message (the sender's NIC learns the fate at injection time — a
/// link-layer NACK — which is what the clMPI retry layer polls).
#[derive(Debug, Clone, Copy)]
struct SendOutcome {
    done_at: SimNs,
    drop_reason: Option<DropReason>,
}

enum ReqKind {
    /// An `isend`: completes when injection ends (buffer reusable). The
    /// reservation is *deferred* — posted to the fabric arbiter and
    /// granted, in canonical order, once virtual time passes the
    /// injection instant — so the outcome cell fills in asynchronously.
    Send {
        outcome: Arc<Monitor<Option<SendOutcome>>>,
        world: World,
    },
    /// An `irecv`: completes when the matched message has arrived.
    Recv {
        id: u64,
        state: Arc<Monitor<RankState>>,
        /// Communicator member table for translating the global source
        /// rank back to a communicator-local one (None = world).
        members: Option<Arc<Vec<Rank>>>,
        world: World,
    },
}

fn to_local(members: &Option<Arc<Vec<Rank>>>, global: Rank) -> Rank {
    match members {
        None => global,
        Some(m) => m
            .iter()
            .position(|&g| g == global)
            .expect("sender is a member of the communicator"),
    }
}

impl Request {
    /// Drive the fabric's deferred-send arbiter up to the present. Every
    /// accessor pumps first: a request's state may depend on sends — its
    /// own, or a peer's feeding its receive — whose grant instant has
    /// passed but which no blocked thread has granted yet.
    fn pump(&self) {
        let world = match &self.kind {
            ReqKind::Send { world, .. } => world,
            ReqKind::Recv { world, .. } => world,
        };
        world.inner.fabric.pump(world.inner.clock.now_ns());
    }

    /// True for send requests.
    pub fn is_send(&self) -> bool {
        matches!(self.kind, ReqKind::Send { .. })
    }

    /// For send requests: did the fabric deliver the message? `false`
    /// means the fault plan dropped it (link-layer NACK observed by the
    /// sender NIC at injection time); the payload never reaches the
    /// receiver's inbox and the sender must retransmit. Always `true`
    /// for receive requests and for sends whose injection the arbiter
    /// has not granted yet — poll [`Request::known_completion`] (or
    /// block with [`Request::wait_delivered`]) before trusting the fate.
    pub fn delivered(&self) -> bool {
        self.drop_reason().is_none()
    }

    /// For dropped send requests: why the fabric dropped the message.
    /// `None` for delivered or still-in-arbitration sends and for
    /// receive requests. A [`DropReason::NodeDown`] fate tells the
    /// sender retransmission is futile — the ULFM layer turns it into
    /// [`MpiError::ProcFailed`].
    pub fn drop_reason(&self) -> Option<DropReason> {
        match &self.kind {
            ReqKind::Send { outcome, .. } => {
                self.pump();
                outcome.peek(|o| o.and_then(|o| o.drop_reason))
            }
            ReqKind::Recv { .. } => None,
        }
    }

    /// Block until the send's injection has been granted and its fate
    /// decided, then report delivery (without consuming the request, so
    /// the caller can still [`Request::wait`] for completion). Receives
    /// return `true` immediately.
    pub fn wait_delivered(&self, actor: &Actor) -> bool {
        match &self.kind {
            ReqKind::Send { outcome, world } => {
                let o = actor.wait_until_labeled("mpi send (fate)", || {
                    world.inner.fabric.pump(world.inner.clock.now_ns());
                    outcome.peek(|o| *o)
                });
                o.drop_reason.is_none()
            }
            ReqKind::Recv { .. } => true,
        }
    }

    /// Virtual completion instant, if already determined (`Send` once
    /// the arbiter grants its injection; `Recv` once matched).
    pub fn known_completion(&self) -> Option<SimNs> {
        self.pump();
        match &self.kind {
            ReqKind::Send { outcome, .. } => outcome.peek(|o| o.map(|o| o.done_at)),
            ReqKind::Recv { id, state, .. } => {
                state.peek(|st| st.matched.get(id).map(|m| m.visible_at))
            }
        }
    }

    /// Block the calling actor until the operation completes. Returns the
    /// payload for receives, `None` for sends.
    pub fn wait(self, actor: &Actor) -> Option<RecvResult> {
        match self.kind {
            ReqKind::Send { outcome, world } => {
                let done_at = actor.wait_until_labeled("mpi send", || {
                    world.inner.fabric.pump(world.inner.clock.now_ns());
                    outcome.peek(|o| o.map(|o| o.done_at))
                });
                actor.advance_until(done_at);
                None
            }
            ReqKind::Recv {
                id,
                state,
                members,
                world,
            } => {
                let clock = state.clock().clone();
                // Pump *outside* the state lock: a grant callback posts
                // into this very monitor, so pumping from inside its
                // predicate would self-deadlock.
                let res = actor.wait_until_labeled("mpi recv", || {
                    world.inner.fabric.pump(clock.now_ns());
                    state.try_now(|st| {
                        let visible = st
                            .matched
                            .get(&id)
                            .map(|m| m.visible_at <= clock.now_ns())?;
                        if !visible {
                            return None;
                        }
                        let msg = st.matched.remove(&id).expect("matched entry vanished");
                        Some(RecvResult {
                            status: Status {
                                source: to_local(&members, msg.src),
                                tag: msg.tag,
                                len: msg.payload.len(),
                                datatype: msg.datatype,
                            },
                            data: msg.payload,
                        })
                    })
                });
                Some(res)
            }
        }
    }

    /// Like [`Request::wait`], but give up after `timeout_ns` of virtual
    /// time. A receive times out only while **unmatched**: once a message
    /// has matched the request its arrival instant is committed, so the
    /// wait sees it through even past the deadline (retrying a message the
    /// fabric already delivered would duplicate it). On timeout the
    /// request is cancelled and consumed.
    pub fn wait_timeout(
        self,
        actor: &Actor,
        timeout_ns: SimNs,
    ) -> Result<Option<RecvResult>, MpiError> {
        let deadline = actor.now_ns() + timeout_ns;
        match self.kind {
            ReqKind::Send { outcome, world } => {
                world.inner.clock.schedule_alarm(deadline);
                let res = actor.wait_until_labeled("mpi send (timeout)", || {
                    let now = world.inner.clock.now_ns();
                    world.inner.fabric.pump(now);
                    if let Some(o) = outcome.peek(|o| *o) {
                        return Some(Some(o.done_at));
                    }
                    (now >= deadline).then_some(None)
                });
                match res {
                    Some(done_at) if done_at <= deadline => {
                        actor.advance_until(done_at);
                        Ok(None)
                    }
                    _ => {
                        actor.advance_until(deadline);
                        Err(MpiError::Timeout {
                            waited_ns: timeout_ns,
                        })
                    }
                }
            }
            ReqKind::Recv {
                id,
                state,
                members,
                world,
            } => {
                let clock = state.clock().clone();
                clock.schedule_alarm(deadline);
                let res = actor.wait_until_labeled("mpi recv (timeout)", || {
                    world.inner.fabric.pump(clock.now_ns());
                    state.try_now(|st| {
                        let now = clock.now_ns();
                        match st.matched.get(&id) {
                            Some(m) if m.visible_at <= now => {
                                let msg = st.matched.remove(&id).expect("matched entry vanished");
                                Some(Ok(RecvResult {
                                    status: Status {
                                        source: to_local(&members, msg.src),
                                        tag: msg.tag,
                                        len: msg.payload.len(),
                                        datatype: msg.datatype,
                                    },
                                    data: msg.payload,
                                }))
                            }
                            Some(_) => None, // matched, in flight: arrival committed
                            None if now >= deadline => {
                                st.pending.retain(|p| p.id != id);
                                Some(Err(MpiError::Timeout {
                                    waited_ns: timeout_ns,
                                }))
                            }
                            None => None,
                        }
                    })
                });
                res.map(Some)
            }
        }
    }

    /// Cancel the operation (`MPI_Cancel` semantics, simplified). A
    /// receive that has not matched is withdrawn and `true` is returned; a
    /// receive whose message already matched cannot be cancelled — the
    /// message is returned to the inbox for other receives and `false` is
    /// returned. Sends are eager (injected at post time) and never
    /// cancellable.
    pub fn cancel(self) -> bool {
        match self.kind {
            ReqKind::Send { .. } => false,
            ReqKind::Recv { id, state, .. } => state.with(|st| {
                // No pump: a withdrawn receive does not need in-flight
                // grants, and callers may hold engine-side locks.
                let before = st.pending.len();
                st.pending.retain(|p| p.id != id);
                if st.pending.len() < before {
                    return true;
                }
                if let Some(msg) = st.matched.remove(&id) {
                    // Seq is preserved, so non-overtaking order survives
                    // the round trip through the matcher.
                    st.inbox.push(msg);
                    st.try_match();
                }
                false
            }),
        }
    }

    /// Non-blocking completion check. On completion returns
    /// `Some(payload-for-receives)`; `None` means still in flight.
    #[allow(clippy::option_option)]
    pub fn test(&mut self, actor: &Actor) -> Option<Option<RecvResult>> {
        self.pump();
        match &mut self.kind {
            ReqKind::Send { outcome, .. } => match outcome.peek(|o| *o) {
                Some(o) if actor.now_ns() >= o.done_at => Some(None),
                _ => None,
            },
            ReqKind::Recv {
                id, state, members, ..
            } => {
                let now = actor.now_ns();
                let id = *id;
                let members = members.clone();
                state
                    .try_now(|st| {
                        let ready = st.matched.get(&id).map(|m| m.visible_at <= now)?;
                        if !ready {
                            return None;
                        }
                        let msg = st.matched.remove(&id).expect("matched entry vanished");
                        Some(RecvResult {
                            status: Status {
                                source: to_local(&members, msg.src),
                                tag: msg.tag,
                                len: msg.payload.len(),
                                datatype: msg.datatype,
                            },
                            data: msg.payload,
                        })
                    })
                    .map(Some)
            }
        }
    }
}

impl simtime::Completion for Request {
    /// Non-consuming progress-engine view of a request: a send completes
    /// at its injection end (successful or dropped — delivery fate is a
    /// separate query, [`Request::delivered`]); a receive completes once
    /// its matched message is visible. Unlike [`Request::test`], polling
    /// leaves the payload in place — the engine consumes it with `test`
    /// once the state machine is ready for it.
    fn poll(&self, now: SimNs) -> simtime::CompletionState {
        self.pump();
        match &self.kind {
            ReqKind::Send { outcome, .. } => match outcome.peek(|o| o.map(|o| o.done_at)) {
                Some(at) if at <= now => simtime::CompletionState::Complete(at),
                _ => simtime::CompletionState::Pending,
            },
            ReqKind::Recv { id, state, .. } => {
                match state.peek(|st| st.matched.get(id).map(|m| m.visible_at)) {
                    Some(at) if at <= now => simtime::CompletionState::Complete(at),
                    _ => simtime::CompletionState::Pending,
                }
            }
        }
    }

    /// A send's completion instant is always known; a receive's is the
    /// matched message's arrival (`None` while unmatched — the matcher's
    /// `Monitor` notifies on every match).
    fn wake_hint(&self, _now: SimNs) -> Option<SimNs> {
        self.known_completion()
    }
}

/// Wait for every request; results are positionally aligned (sends yield
/// `None`).
pub fn wait_all(requests: Vec<Request>, actor: &Actor) -> Vec<Option<RecvResult>> {
    requests.into_iter().map(|r| r.wait(actor)).collect()
}

/// Wait until *any* request completes (`MPI_Waitany`): returns its index,
/// its result, and the remaining requests (order preserved).
pub fn wait_any(
    mut requests: Vec<Request>,
    actor: &Actor,
) -> (usize, Option<RecvResult>, Vec<Request>) {
    assert!(!requests.is_empty(), "wait_any needs at least one request");
    let (idx, res) = actor.wait_until_labeled("mpi wait_any", || {
        for (i, r) in requests.iter_mut().enumerate() {
            if let Some(res) = r.test(actor) {
                return Some((i, res));
            }
        }
        None
    });
    let _consumed = requests.remove(idx); // completed by the test() above
    (idx, res, requests)
}

impl Comm {
    /// Non-blocking tagged send of `data` to `dst`. The payload is
    /// snapshotted (buffered send) and fabric capacity is reserved
    /// immediately; the request completes when injection ends.
    pub fn isend(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) -> Request {
        self.isend_typed_from(actor, dst, tag, Datatype::Bytes, data, actor.now_ns())
    }

    /// [`Comm::isend`] that reports an out-of-range destination as an
    /// error instead of panicking (for callers forwarding unvalidated
    /// input).
    pub fn try_isend(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        data: &[u8],
    ) -> Result<Request, MpiError> {
        self.ensure_not_revoked()?;
        if dst >= self.size() {
            return Err(MpiError::RankOutOfRange {
                rank: dst,
                size: self.size(),
            });
        }
        Ok(self.isend(actor, dst, tag, data))
    }

    /// Blocking [`Comm::try_isend`].
    pub fn try_send(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        data: &[u8],
    ) -> Result<(), MpiError> {
        let _ = self.try_isend(actor, dst, tag, data)?.wait(actor);
        Ok(())
    }

    /// [`Comm::isend`] with an explicit datatype tag and an earliest
    /// injection instant (used by the clMPI runtime to launch a network
    /// stage when a device→host stage will finish, without any thread
    /// having to wait for it).
    pub fn isend_typed_from(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        datatype: Datatype,
        data: &[u8],
        earliest: SimNs,
    ) -> Request {
        self.isend_raw(actor, dst, tag, datatype, data, earliest, None)
    }

    /// Lowest-level send: optionally overrides the injection duration
    /// (`duration_override`), for transfers whose effective rate is not
    /// the raw link rate — e.g. the clMPI *mapped* strategy, where the NIC
    /// streams through PCIe at the device's zero-copy rate.
    #[allow(clippy::too_many_arguments)]
    pub fn isend_raw(
        &self,
        _actor: &Actor,
        dst: Rank,
        tag: Tag,
        datatype: Datatype,
        data: &[u8],
        earliest: SimNs,
        duration_override: Option<SimNs>,
    ) -> Request {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let gdst = self.global_rank(dst);
        let inner = &self.world.inner;
        let outcome = Arc::new(Monitor::new(inner.clock.clone(), None));
        // The reservation goes through the fabric's arbiter: claiming
        // link time eagerly here would serialize same-instant injections
        // from different engine threads in OS-scheduling order. The grant
        // callback below runs once the clock has passed `earliest`, in
        // canonical order, with a reservation backdated to `earliest`.
        let complete: Box<dyn FnOnce(simnet::Reservation) + Send> = {
            let world = self.world.clone();
            let outcome = outcome.clone();
            let src = self.rank;
            let context = self.context;
            let payload = data.to_vec();
            Box::new(move |res| {
                let inner = &world.inner;
                // The fate of the message is decided at injection time: a
                // dropped message still burns the link window it reserved
                // (the bits went out), but never reaches the receiver's
                // inbox, and the sender observes the loss on its request
                // (link-layer NACK model).
                let fate = inner.fabric.fault_decision(src, gdst, tag, res.start);
                let drop_reason = match fate {
                    FaultOutcome::Deliver { extra_latency_ns } => {
                        let visible_at = res.arrival + extra_latency_ns;
                        inner.ranks[gdst]
                            .with(|st| st.post(src, context, tag, datatype, payload, visible_at));
                        // Wake request waiters at arrival.
                        inner.clock.schedule_alarm(visible_at);
                        None
                    }
                    FaultOutcome::Drop(reason) => {
                        let label = match reason {
                            DropReason::Random => format!("drop r{src}→r{gdst} #{tag}"),
                            DropReason::LinkDown => format!("down r{src}→r{gdst} #{tag}"),
                            DropReason::NodeDown => format!("dead r{src}→r{gdst} #{tag}"),
                        };
                        inner.trace.record("net.fault", label, res.start, res.end);
                        Some(reason)
                    }
                };
                // Wake request waiters at send completion.
                inner.clock.schedule_alarm(res.end);
                outcome.with(|o| {
                    *o = Some(SendOutcome {
                        done_at: res.end,
                        drop_reason,
                    })
                });
            })
        };
        match duration_override {
            None => {
                inner
                    .fabric
                    .reserve_deferred(self.rank, gdst, tag, data.len(), earliest, complete)
            }
            Some(d) => inner
                .fabric
                .reserve_duration_deferred(self.rank, gdst, tag, d, earliest, complete),
        }
        Request {
            kind: ReqKind::Send {
                outcome,
                world: self.world.clone(),
            },
        }
    }

    /// Blocking tagged send (buffered-send completion semantics: returns
    /// when the payload has been injected and the buffer is reusable).
    pub fn send(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) {
        self.isend(actor, dst, tag, data).wait(actor);
    }

    /// Blocking typed send.
    pub fn send_typed(&self, actor: &Actor, dst: Rank, tag: Tag, datatype: Datatype, data: &[u8]) {
        self.isend_typed_from(actor, dst, tag, datatype, data, actor.now_ns())
            .wait(actor);
    }

    /// Non-blocking receive matching `src`/`tag` (use [`crate::ANY_SOURCE`]
    /// / [`crate::ANY_TAG`] as wildcards).
    pub fn irecv(&self, _actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> Request {
        let gsrc = src.map(|s| {
            assert!(s < self.size(), "source rank {s} out of range");
            self.global_rank(s)
        });
        let state = self.world.inner.ranks[self.rank].clone();
        let context = self.context;
        let id = state.with(|st| st.post_recv(gsrc, context, tag));
        Request {
            kind: ReqKind::Recv {
                id,
                state,
                members: self.members.clone(),
                world: self.world.clone(),
            },
        }
    }

    /// Blocking receive; returns payload and status.
    pub fn recv(&self, actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> RecvResult {
        self.irecv(actor, src, tag)
            .wait(actor)
            .expect("recv request yields a payload")
    }

    /// Blocking receive that gives up after `timeout_ns` of virtual time
    /// with no matching message (see [`Request::wait_timeout`] for the
    /// exact matched-in-flight semantics).
    pub fn recv_timeout(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout_ns: SimNs,
    ) -> Result<RecvResult, MpiError> {
        self.ensure_not_revoked()?;
        self.irecv(actor, src, tag)
            .wait_timeout(actor, timeout_ns)
            .map(|r| r.expect("recv request yields a payload"))
    }

    /// Blocking receive into a caller buffer; panics if the payload does
    /// not fit (message truncation is an error, as in MPI).
    pub fn recv_into(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        buf: &mut [u8],
    ) -> Status {
        self.try_recv_into(actor, src, tag, buf)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Comm::recv_into`] with truncation reported as
    /// [`MpiError::Truncated`] instead of a panic.
    pub fn try_recv_into(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        buf: &mut [u8],
    ) -> Result<Status, MpiError> {
        self.ensure_not_revoked()?;
        let res = self.recv(actor, src, tag);
        if res.data.len() > buf.len() {
            return Err(MpiError::Truncated {
                len: res.data.len(),
                capacity: buf.len(),
            });
        }
        buf[..res.data.len()].copy_from_slice(&res.data);
        Ok(res.status)
    }

    /// Combined send+receive (`MPI_Sendrecv`): posts the send, blocks on
    /// the receive, then waits for send completion.
    pub fn sendrecv(
        &self,
        actor: &Actor,
        dst: Rank,
        send_tag: Tag,
        data: &[u8],
        src: Option<Rank>,
        recv_tag: Option<Tag>,
    ) -> RecvResult {
        let sreq = self.isend(actor, dst, send_tag, data);
        let res = self.recv(actor, src, recv_tag);
        sreq.wait(actor);
        res
    }

    /// Non-blocking probe: is a matching message *arrived* (visible)?
    pub fn iprobe(&self, actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> bool {
        let now = actor.now_ns();
        // Grant any due deferred sends first: the probed message may be
        // posted but not yet arbitrated.
        self.world
            .inner
            .fabric
            .pump(self.world.inner.clock.now_ns());
        let gsrc = src.map(|s| self.global_rank(s));
        let context = self.context;
        self.world.inner.ranks[self.rank].peek(|st| {
            st.inbox.iter().any(|m| {
                m.visible_at <= now
                    && m.context == context
                    && gsrc.is_none_or(|s| s == m.src)
                    && tag.is_none_or(|t| t == m.tag)
            })
        })
    }
}
