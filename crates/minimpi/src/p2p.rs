//! Point-to-point messaging: posting, matching, requests.
//!
//! Matching model (faithful to MPI):
//!
//! * Every incoming message gets a **receiver-side sequence number** at
//!   post (send) time; posted receives get a **posting order**. The
//!   matcher pairs posted receives, in posting order, with the
//!   lowest-sequence matching message — so same-signature traffic is
//!   non-overtaking on both sides.
//! * A message may be *matched* while still in flight; the receive only
//!   *completes* when the virtual clock reaches the message's arrival
//!   instant. (Real MPI matches on arrival of the envelope; the observable
//!   completion times are the same.)

// checker-allow(determinism): keyed by receive id only, never iterated.
use std::collections::HashMap;
use std::sync::Arc;

use simnet::{DropReason, FaultOutcome};
use simtime::{Actor, Monitor, SimNs};

use crate::world::Comm;
use crate::{Datatype, Rank, Tag};

/// Errors surfaced through the `Result`-returning request/receive APIs
/// (the panicking wrappers remain for code that treats these as bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiError {
    /// A [`Request::wait_timeout`] deadline expired before any message
    /// matched the request.
    Timeout {
        /// Virtual nanoseconds waited before giving up.
        waited_ns: SimNs,
    },
    /// A message did not fit the caller's buffer
    /// ([`Comm::try_recv_into`]).
    Truncated {
        /// Incoming payload length in bytes.
        len: usize,
        /// Caller buffer capacity in bytes.
        capacity: usize,
    },
    /// A rank argument was outside the communicator.
    RankOutOfRange {
        /// The offending rank.
        rank: Rank,
        /// Communicator size.
        size: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Timeout { waited_ns } => {
                write!(f, "request timed out after {waited_ns} virtual ns")
            }
            MpiError::Truncated { len, capacity } => {
                write!(
                    f,
                    "message of {len} bytes truncated into {capacity}-byte buffer"
                )
            }
            MpiError::RankOutOfRange { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Delivery information of a completed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub source: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
    /// Datatype tag the sender attached.
    pub datatype: Datatype,
}

/// Payload + status from a completed receive.
#[derive(Debug, Clone)]
pub struct RecvResult {
    /// The received bytes.
    pub data: Vec<u8>,
    /// Delivery information.
    pub status: Status,
}

#[derive(Debug)]
pub(crate) struct InMsg {
    /// Global rank of the sender.
    src: Rank,
    /// Communication context (communicator id).
    context: u64,
    tag: Tag,
    datatype: Datatype,
    payload: Vec<u8>,
    visible_at: SimNs,
    seq: u64,
}

#[derive(Debug)]
struct PendingRecv {
    id: u64,
    /// Global rank filter.
    src: Option<Rank>,
    context: u64,
    tag: Option<Tag>,
    order: u64,
}

/// Per-rank matching engine state (behind a [`Monitor`]).
#[derive(Default)]
pub(crate) struct RankState {
    inbox: Vec<InMsg>,
    pending: Vec<PendingRecv>,
    // checker-allow(determinism): get/remove by the posted receive's id
    // only; match order is decided by the ordered `inbox`/`pending` vecs.
    matched: HashMap<u64, InMsg>,
    next_seq: u64,
    next_recv_id: u64,
    next_order: u64,
}

impl RankState {
    /// Pair posted receives (posting order) with inbox messages
    /// (lowest sequence matching each). Called after every state change.
    fn try_match(&mut self) {
        // Pending receives are kept in posting order.
        let mut i = 0;
        while i < self.pending.len() {
            let p = &self.pending[i];
            let candidate = self
                .inbox
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    m.context == p.context
                        && p.src.is_none_or(|s| s == m.src)
                        && p.tag.is_none_or(|t| t == m.tag)
                })
                .min_by_key(|(_, m)| m.seq)
                .map(|(idx, _)| idx);
            match candidate {
                Some(idx) => {
                    let msg = self.inbox.swap_remove(idx);
                    let p = self.pending.remove(i);
                    self.matched.insert(p.id, msg);
                    // restart not needed: removal keeps order; keep i
                }
                None => i += 1,
            }
        }
    }

    fn post(
        &mut self,
        msg_src: Rank,
        context: u64,
        tag: Tag,
        datatype: Datatype,
        payload: Vec<u8>,
        visible_at: SimNs,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inbox.push(InMsg {
            src: msg_src,
            context,
            tag,
            datatype,
            payload,
            visible_at,
            seq,
        });
        self.try_match();
    }

    fn post_recv(&mut self, src: Option<Rank>, context: u64, tag: Option<Tag>) -> u64 {
        let id = self.next_recv_id;
        self.next_recv_id += 1;
        let order = self.next_order;
        self.next_order += 1;
        self.pending.push(PendingRecv {
            id,
            src,
            context,
            tag,
            order,
        });
        // pending stays sorted by order because orders are monotone.
        debug_assert!(self.pending.windows(2).all(|w| w[0].order < w[1].order));
        self.try_match();
        id
    }
}

/// A non-blocking operation in flight (`MPI_Request`).
#[must_use = "requests must be waited or tested to observe completion"]
pub struct Request {
    kind: ReqKind,
}

enum ReqKind {
    /// An `isend`: completes when injection ends (buffer reusable).
    /// `delivered` is false when the fabric's fault plan dropped the
    /// message (the sender's NIC learns the fate at injection time — a
    /// link-layer NACK — which is what the clMPI retry layer polls).
    Send { done_at: SimNs, delivered: bool },
    /// An `irecv`: completes when the matched message has arrived.
    Recv {
        id: u64,
        state: Arc<Monitor<RankState>>,
        /// Communicator member table for translating the global source
        /// rank back to a communicator-local one (None = world).
        members: Option<Arc<Vec<Rank>>>,
    },
}

fn to_local(members: &Option<Arc<Vec<Rank>>>, global: Rank) -> Rank {
    match members {
        None => global,
        Some(m) => m
            .iter()
            .position(|&g| g == global)
            .expect("sender is a member of the communicator"),
    }
}

impl Request {
    /// True for send requests (complete at a known instant).
    pub fn is_send(&self) -> bool {
        matches!(self.kind, ReqKind::Send { .. })
    }

    /// For send requests: did the fabric deliver the message? `false`
    /// means the fault plan dropped it (link-layer NACK observed by the
    /// sender NIC at injection time); the payload never reaches the
    /// receiver's inbox and the sender must retransmit. Always `true`
    /// for receive requests.
    pub fn delivered(&self) -> bool {
        match &self.kind {
            ReqKind::Send { delivered, .. } => *delivered,
            ReqKind::Recv { .. } => true,
        }
    }

    /// Virtual completion instant, if already determined (`Send` always;
    /// `Recv` once matched).
    pub fn known_completion(&self) -> Option<SimNs> {
        match &self.kind {
            ReqKind::Send { done_at, .. } => Some(*done_at),
            ReqKind::Recv { id, state, .. } => {
                state.peek(|st| st.matched.get(id).map(|m| m.visible_at))
            }
        }
    }

    /// Block the calling actor until the operation completes. Returns the
    /// payload for receives, `None` for sends.
    pub fn wait(self, actor: &Actor) -> Option<RecvResult> {
        match self.kind {
            ReqKind::Send { done_at, .. } => {
                actor.advance_until(done_at);
                None
            }
            ReqKind::Recv { id, state, members } => {
                let clock = state.clock().clone();
                let res = state.wait_labeled(actor, "mpi recv", move |st| {
                    let visible = st
                        .matched
                        .get(&id)
                        .map(|m| m.visible_at <= clock.now_ns())?;
                    if !visible {
                        return None;
                    }
                    let msg = st.matched.remove(&id).expect("matched entry vanished");
                    Some(RecvResult {
                        status: Status {
                            source: to_local(&members, msg.src),
                            tag: msg.tag,
                            len: msg.payload.len(),
                            datatype: msg.datatype,
                        },
                        data: msg.payload,
                    })
                });
                Some(res)
            }
        }
    }

    /// Like [`Request::wait`], but give up after `timeout_ns` of virtual
    /// time. A receive times out only while **unmatched**: once a message
    /// has matched the request its arrival instant is committed, so the
    /// wait sees it through even past the deadline (retrying a message the
    /// fabric already delivered would duplicate it). On timeout the
    /// request is cancelled and consumed.
    pub fn wait_timeout(
        self,
        actor: &Actor,
        timeout_ns: SimNs,
    ) -> Result<Option<RecvResult>, MpiError> {
        let deadline = actor.now_ns() + timeout_ns;
        match self.kind {
            ReqKind::Send { done_at, .. } => {
                if done_at <= deadline {
                    actor.advance_until(done_at);
                    Ok(None)
                } else {
                    actor.advance_until(deadline);
                    Err(MpiError::Timeout {
                        waited_ns: timeout_ns,
                    })
                }
            }
            ReqKind::Recv { id, state, members } => {
                let clock = state.clock().clone();
                clock.schedule_alarm(deadline);
                let res = state.wait_labeled(actor, "mpi recv (timeout)", move |st| {
                    let now = clock.now_ns();
                    match st.matched.get(&id) {
                        Some(m) if m.visible_at <= now => {
                            let msg = st.matched.remove(&id).expect("matched entry vanished");
                            Some(Ok(RecvResult {
                                status: Status {
                                    source: to_local(&members, msg.src),
                                    tag: msg.tag,
                                    len: msg.payload.len(),
                                    datatype: msg.datatype,
                                },
                                data: msg.payload,
                            }))
                        }
                        Some(_) => None, // matched, in flight: arrival committed
                        None if now >= deadline => {
                            st.pending.retain(|p| p.id != id);
                            Some(Err(MpiError::Timeout {
                                waited_ns: timeout_ns,
                            }))
                        }
                        None => None,
                    }
                });
                res.map(Some)
            }
        }
    }

    /// Cancel the operation (`MPI_Cancel` semantics, simplified). A
    /// receive that has not matched is withdrawn and `true` is returned; a
    /// receive whose message already matched cannot be cancelled — the
    /// message is returned to the inbox for other receives and `false` is
    /// returned. Sends are eager (injected at post time) and never
    /// cancellable.
    pub fn cancel(self) -> bool {
        match self.kind {
            ReqKind::Send { .. } => false,
            ReqKind::Recv { id, state, .. } => state.with(|st| {
                let before = st.pending.len();
                st.pending.retain(|p| p.id != id);
                if st.pending.len() < before {
                    return true;
                }
                if let Some(msg) = st.matched.remove(&id) {
                    // Seq is preserved, so non-overtaking order survives
                    // the round trip through the matcher.
                    st.inbox.push(msg);
                    st.try_match();
                }
                false
            }),
        }
    }

    /// Non-blocking completion check. On completion returns
    /// `Some(payload-for-receives)`; `None` means still in flight.
    #[allow(clippy::option_option)]
    pub fn test(&mut self, actor: &Actor) -> Option<Option<RecvResult>> {
        match &mut self.kind {
            ReqKind::Send { done_at, .. } => (actor.now_ns() >= *done_at).then_some(None),
            ReqKind::Recv { id, state, members } => {
                let now = actor.now_ns();
                let id = *id;
                let members = members.clone();
                state
                    .try_now(|st| {
                        let ready = st.matched.get(&id).map(|m| m.visible_at <= now)?;
                        if !ready {
                            return None;
                        }
                        let msg = st.matched.remove(&id).expect("matched entry vanished");
                        Some(RecvResult {
                            status: Status {
                                source: to_local(&members, msg.src),
                                tag: msg.tag,
                                len: msg.payload.len(),
                                datatype: msg.datatype,
                            },
                            data: msg.payload,
                        })
                    })
                    .map(Some)
            }
        }
    }
}

impl simtime::Completion for Request {
    /// Non-consuming progress-engine view of a request: a send completes
    /// at its injection end (successful or dropped — delivery fate is a
    /// separate query, [`Request::delivered`]); a receive completes once
    /// its matched message is visible. Unlike [`Request::test`], polling
    /// leaves the payload in place — the engine consumes it with `test`
    /// once the state machine is ready for it.
    fn poll(&self, now: SimNs) -> simtime::CompletionState {
        match &self.kind {
            ReqKind::Send { done_at, .. } => {
                if now >= *done_at {
                    simtime::CompletionState::Complete(*done_at)
                } else {
                    simtime::CompletionState::Pending
                }
            }
            ReqKind::Recv { id, state, .. } => {
                match state.peek(|st| st.matched.get(id).map(|m| m.visible_at)) {
                    Some(at) if at <= now => simtime::CompletionState::Complete(at),
                    _ => simtime::CompletionState::Pending,
                }
            }
        }
    }

    /// A send's completion instant is always known; a receive's is the
    /// matched message's arrival (`None` while unmatched — the matcher's
    /// `Monitor` notifies on every match).
    fn wake_hint(&self, _now: SimNs) -> Option<SimNs> {
        self.known_completion()
    }
}

/// Wait for every request; results are positionally aligned (sends yield
/// `None`).
pub fn wait_all(requests: Vec<Request>, actor: &Actor) -> Vec<Option<RecvResult>> {
    requests.into_iter().map(|r| r.wait(actor)).collect()
}

/// Wait until *any* request completes (`MPI_Waitany`): returns its index,
/// its result, and the remaining requests (order preserved).
pub fn wait_any(
    mut requests: Vec<Request>,
    actor: &Actor,
) -> (usize, Option<RecvResult>, Vec<Request>) {
    assert!(!requests.is_empty(), "wait_any needs at least one request");
    let (idx, res) = actor.wait_until_labeled("mpi wait_any", || {
        for (i, r) in requests.iter_mut().enumerate() {
            if let Some(res) = r.test(actor) {
                return Some((i, res));
            }
        }
        None
    });
    let _consumed = requests.remove(idx); // completed by the test() above
    (idx, res, requests)
}

impl Comm {
    /// Non-blocking tagged send of `data` to `dst`. The payload is
    /// snapshotted (buffered send) and fabric capacity is reserved
    /// immediately; the request completes when injection ends.
    pub fn isend(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) -> Request {
        self.isend_typed_from(actor, dst, tag, Datatype::Bytes, data, actor.now_ns())
    }

    /// [`Comm::isend`] that reports an out-of-range destination as an
    /// error instead of panicking (for callers forwarding unvalidated
    /// input).
    pub fn try_isend(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        data: &[u8],
    ) -> Result<Request, MpiError> {
        if dst >= self.size() {
            return Err(MpiError::RankOutOfRange {
                rank: dst,
                size: self.size(),
            });
        }
        Ok(self.isend(actor, dst, tag, data))
    }

    /// Blocking [`Comm::try_isend`].
    pub fn try_send(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        data: &[u8],
    ) -> Result<(), MpiError> {
        let _ = self.try_isend(actor, dst, tag, data)?.wait(actor);
        Ok(())
    }

    /// [`Comm::isend`] with an explicit datatype tag and an earliest
    /// injection instant (used by the clMPI runtime to launch a network
    /// stage when a device→host stage will finish, without any thread
    /// having to wait for it).
    pub fn isend_typed_from(
        &self,
        actor: &Actor,
        dst: Rank,
        tag: Tag,
        datatype: Datatype,
        data: &[u8],
        earliest: SimNs,
    ) -> Request {
        self.isend_raw(actor, dst, tag, datatype, data, earliest, None)
    }

    /// Lowest-level send: optionally overrides the injection duration
    /// (`duration_override`), for transfers whose effective rate is not
    /// the raw link rate — e.g. the clMPI *mapped* strategy, where the NIC
    /// streams through PCIe at the device's zero-copy rate.
    #[allow(clippy::too_many_arguments)]
    pub fn isend_raw(
        &self,
        _actor: &Actor,
        dst: Rank,
        tag: Tag,
        datatype: Datatype,
        data: &[u8],
        earliest: SimNs,
        duration_override: Option<SimNs>,
    ) -> Request {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let gdst = self.global_rank(dst);
        let inner = &self.world.inner;
        let res = match duration_override {
            None => inner.fabric.reserve(self.rank, gdst, data.len(), earliest),
            Some(d) => inner.fabric.reserve_duration(self.rank, gdst, d, earliest),
        };
        // The fate of the message is decided at injection time: a dropped
        // message still burns the link window it reserved (the bits went
        // out), but never reaches the receiver's inbox, and the sender
        // observes the loss on its request (link-layer NACK model).
        let fate = inner.fabric.fault_decision(self.rank, gdst, tag, res.start);
        let delivered = match fate {
            FaultOutcome::Deliver { extra_latency_ns } => {
                let visible_at = res.arrival + extra_latency_ns;
                let dst_state = inner.ranks[gdst].clone();
                dst_state.with(|st| {
                    st.post(
                        self.rank,
                        self.context,
                        tag,
                        datatype,
                        data.to_vec(),
                        visible_at,
                    )
                });
                // Wake request waiters at arrival.
                inner.clock.schedule_alarm(visible_at);
                true
            }
            FaultOutcome::Drop(reason) => {
                let label = match reason {
                    DropReason::Random => format!("drop r{}→r{gdst} #{tag}", self.rank),
                    DropReason::LinkDown => format!("down r{}→r{gdst} #{tag}", self.rank),
                };
                inner.trace.record("net.fault", label, res.start, res.end);
                false
            }
        };
        // Wake request waiters at send completion.
        inner.clock.schedule_alarm(res.end);
        Request {
            kind: ReqKind::Send {
                done_at: res.end,
                delivered,
            },
        }
    }

    /// Blocking tagged send (buffered-send completion semantics: returns
    /// when the payload has been injected and the buffer is reusable).
    pub fn send(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) {
        self.isend(actor, dst, tag, data).wait(actor);
    }

    /// Blocking typed send.
    pub fn send_typed(&self, actor: &Actor, dst: Rank, tag: Tag, datatype: Datatype, data: &[u8]) {
        self.isend_typed_from(actor, dst, tag, datatype, data, actor.now_ns())
            .wait(actor);
    }

    /// Non-blocking receive matching `src`/`tag` (use [`crate::ANY_SOURCE`]
    /// / [`crate::ANY_TAG`] as wildcards).
    pub fn irecv(&self, _actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> Request {
        let gsrc = src.map(|s| {
            assert!(s < self.size(), "source rank {s} out of range");
            self.global_rank(s)
        });
        let state = self.world.inner.ranks[self.rank].clone();
        let context = self.context;
        let id = state.with(|st| st.post_recv(gsrc, context, tag));
        Request {
            kind: ReqKind::Recv {
                id,
                state,
                members: self.members.clone(),
            },
        }
    }

    /// Blocking receive; returns payload and status.
    pub fn recv(&self, actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> RecvResult {
        self.irecv(actor, src, tag)
            .wait(actor)
            .expect("recv request yields a payload")
    }

    /// Blocking receive that gives up after `timeout_ns` of virtual time
    /// with no matching message (see [`Request::wait_timeout`] for the
    /// exact matched-in-flight semantics).
    pub fn recv_timeout(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout_ns: SimNs,
    ) -> Result<RecvResult, MpiError> {
        self.irecv(actor, src, tag)
            .wait_timeout(actor, timeout_ns)
            .map(|r| r.expect("recv request yields a payload"))
    }

    /// Blocking receive into a caller buffer; panics if the payload does
    /// not fit (message truncation is an error, as in MPI).
    pub fn recv_into(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        buf: &mut [u8],
    ) -> Status {
        self.try_recv_into(actor, src, tag, buf)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Comm::recv_into`] with truncation reported as
    /// [`MpiError::Truncated`] instead of a panic.
    pub fn try_recv_into(
        &self,
        actor: &Actor,
        src: Option<Rank>,
        tag: Option<Tag>,
        buf: &mut [u8],
    ) -> Result<Status, MpiError> {
        let res = self.recv(actor, src, tag);
        if res.data.len() > buf.len() {
            return Err(MpiError::Truncated {
                len: res.data.len(),
                capacity: buf.len(),
            });
        }
        buf[..res.data.len()].copy_from_slice(&res.data);
        Ok(res.status)
    }

    /// Combined send+receive (`MPI_Sendrecv`): posts the send, blocks on
    /// the receive, then waits for send completion.
    pub fn sendrecv(
        &self,
        actor: &Actor,
        dst: Rank,
        send_tag: Tag,
        data: &[u8],
        src: Option<Rank>,
        recv_tag: Option<Tag>,
    ) -> RecvResult {
        let sreq = self.isend(actor, dst, send_tag, data);
        let res = self.recv(actor, src, recv_tag);
        sreq.wait(actor);
        res
    }

    /// Non-blocking probe: is a matching message *arrived* (visible)?
    pub fn iprobe(&self, actor: &Actor, src: Option<Rank>, tag: Option<Tag>) -> bool {
        let now = actor.now_ns();
        let gsrc = src.map(|s| self.global_rank(s));
        let context = self.context;
        self.world.inner.ranks[self.rank].peek(|st| {
            st.inbox.iter().any(|m| {
                m.visible_at <= now
                    && m.context == context
                    && gsrc.is_none_or(|s| s == m.src)
                    && tag.is_none_or(|t| t == m.tag)
            })
        })
    }
}
