//! Integration tests: clMPI transfers between simulated ranks.

use clmpi::{ClMpi, SystemConfig, TransferStrategy};
use minimpi::{run_world_sized, Process};
use simtime::XorShift64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Device→device transfer of `size` bytes under `strategy` on `sys`;
/// returns (elapsed_ns, data-correct).
fn one_transfer(sys: fn() -> SystemConfig, strategy: TransferStrategy, size: usize) -> (u64, bool) {
    let cluster = sys().cluster.clone();
    let res = run_world_sized(cluster, 2, move |p: Process| {
        let rt = ClMpi::new(&p, sys());
        rt.set_forced_strategy(Some(strategy));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(size);
        let ok = if p.rank() == 0 {
            buf.store(0, &pattern(size, 7)).unwrap();
            let e = rt
                .enqueue_send_buffer(&q, &buf, false, 0, size, 1, 3, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            true
        } else {
            let e = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, size, 0, 3, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            buf.load(0, size).unwrap() == pattern(size, 7)
        };
        rt.shutdown(&p.actor);
        ok
    });
    (res.elapsed_ns, res.outputs.iter().all(|&b| b))
}

#[test]
fn pinned_transfer_delivers_intact() {
    let (t, ok) = one_transfer(SystemConfig::ricc, TransferStrategy::Pinned, 256 << 10);
    assert!(ok);
    assert!(t > 0);
}

#[test]
fn mapped_transfer_delivers_intact() {
    let (t, ok) = one_transfer(SystemConfig::cichlid, TransferStrategy::Mapped, 256 << 10);
    assert!(ok);
    assert!(t > 0);
}

#[test]
fn pipelined_transfer_delivers_intact_any_block() {
    for block in [1 << 16, 1 << 20, 3 << 20] {
        let (_, ok) = one_transfer(
            SystemConfig::ricc,
            TransferStrategy::Pipelined(block),
            2 << 20,
        );
        assert!(ok, "block {block}");
    }
}

#[test]
fn auto_strategy_delivers_intact_across_sizes() {
    for size in [1usize, 4096, 1 << 20, 8 << 20] {
        let (_, ok) = one_transfer(SystemConfig::ricc, TransferStrategy::Auto, size);
        assert!(ok, "size {size}");
    }
}

#[test]
fn pipelined_faster_than_pinned_on_ricc_large() {
    let size = 32 << 20;
    let (tp, _) = one_transfer(SystemConfig::ricc, TransferStrategy::Pinned, size);
    let (tl, _) = one_transfer(
        SystemConfig::ricc,
        TransferStrategy::Pipelined(4 << 20),
        size,
    );
    assert!(
        tl < tp,
        "pipelined ({tl}) should beat pinned ({tp}) on RICC for 32 MiB"
    );
}

#[test]
fn mapped_faster_than_pinned_on_cichlid_small() {
    let size = 128 << 10;
    let (tp, _) = one_transfer(SystemConfig::cichlid, TransferStrategy::Pinned, size);
    let (tm, _) = one_transfer(SystemConfig::cichlid, TransferStrategy::Mapped, size);
    assert!(
        tm < tp,
        "mapped ({tm}) should beat pinned ({tp}) on Cichlid for 128 KiB"
    );
}

#[test]
fn event_chain_orders_kernel_then_send_then_recv_then_kernel() {
    // Fig. 5/6 pattern: kernel → send on rank 0; recv → kernel on rank 1,
    // all non-blocking, ordered purely by events.
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(4096);
        if p.rank() == 0 {
            let b2 = buf.clone();
            let ek = q.enqueue_kernel("produce", 100_000, &[], move || {
                b2.write(|d| d.as_f32_mut().iter_mut().for_each(|x| *x = 5.0));
            });
            let es = rt
                .enqueue_send_buffer(
                    &q,
                    &buf,
                    false,
                    0,
                    4096,
                    1,
                    1,
                    std::slice::from_ref(&ek),
                    &p.actor,
                )
                .unwrap();
            es.wait(&p.actor);
            let pk = ek.profiling().unwrap();
            assert!(
                es.completion_time().unwrap() >= pk.completed,
                "send after kernel"
            );
            rt.shutdown(&p.actor);
            0.0
        } else {
            let er = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, 4096, 0, 1, &[], &p.actor)
                .unwrap();
            let b2 = buf.clone();
            let sum = std::sync::Arc::new(simtime::plock::Mutex::new(0.0f32));
            let s2 = sum.clone();
            let ek = q.enqueue_kernel("consume", 50_000, std::slice::from_ref(&er), move || {
                *s2.lock() = b2.read(|d| d.as_f32().iter().sum());
            });
            ek.wait(&p.actor);
            assert!(ek.profiling().unwrap().started >= er.completion_time().unwrap());
            rt.shutdown(&p.actor);
            let s = *sum.lock();
            s as f64
        }
    });
    assert_eq!(res.outputs[1], 5.0 * 1024.0);
}

#[test]
fn host_thread_stays_free_during_transfer() {
    // The paper's benefit 2): after non-blocking enqueues the host thread
    // is immediately available. Host does 30 ms of its own work while a
    // large transfer runs; total time ≈ max, not sum.
    let size = 16 << 20;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            if p.rank() == 0 {
                let e = rt
                    .enqueue_send_buffer(&q, &buf, false, 0, size, 1, 1, &[], &p.actor)
                    .unwrap();
                p.host_compute_ns(30_000_000); // overlapped host work
                e.wait(&p.actor);
            } else {
                let e = rt
                    .enqueue_recv_buffer(&q, &buf, false, 0, size, 0, 1, &[], &p.actor)
                    .unwrap();
                p.host_compute_ns(30_000_000);
                e.wait(&p.actor);
            }
            rt.shutdown(&p.actor);
            p.actor.now_ns()
        },
    );
    // 16 MiB over ~1.2 GB/s effective ≈ 13—20 ms; hidden under 30 ms of
    // host compute → total barely above 30 ms.
    assert!(
        res.elapsed_ns < 40_000_000,
        "transfer overlapped with host compute: {}",
        res.elapsed_ns
    );
}

#[test]
fn bidirectional_exchange_with_distinct_tags() {
    let size = 1 << 20;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let mine = rt.context().create_buffer(size);
            let theirs = rt.context().create_buffer(size);
            mine.store(0, &vec![p.rank() as u8 + 1; size]).unwrap();
            let peer = 1 - p.rank();
            let es = rt
                .enqueue_send_buffer(
                    &q,
                    &mine,
                    false,
                    0,
                    size,
                    peer,
                    p.rank() as i32,
                    &[],
                    &p.actor,
                )
                .unwrap();
            let er = rt
                .enqueue_recv_buffer(
                    &q,
                    &theirs,
                    false,
                    0,
                    size,
                    peer,
                    peer as i32,
                    &[],
                    &p.actor,
                )
                .unwrap();
            es.wait(&p.actor);
            er.wait(&p.actor);
            let got = theirs.load(0, size).unwrap();
            rt.shutdown(&p.actor);
            got == vec![peer as u8 + 1; size]
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn event_from_request_gates_write_buffer() {
    // Fig. 7: rank 0 does MPI_Irecv + clCreateEventFromMPIRequest, runs a
    // kernel during the transfer, then a write-buffer gated on the event.
    let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cichlid());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        if p.rank() == 0 {
            let req = p.comm.irecv(&p.actor, Some(1), Some(9));
            let (ev, outcome) = rt.event_from_request(req);
            let _k = q.enqueue_kernel("overlap", 200_000, &[], || {});
            ev.wait(&p.actor);
            let got = outcome.take().expect("payload");
            assert_eq!(got.data, vec![7u8; 2048]);
            // Write the received host data to the device after the event.
            let buf = rt.context().create_buffer(2048);
            let host = minicl::HostBuffer::pinned(2048);
            host.fill_from(&got.data);
            q.enqueue_write_buffer(&p.actor, &buf, true, 0, 2048, &host, 0, &[ev])
                .unwrap();
            assert_eq!(buf.load(0, 2048).unwrap(), vec![7u8; 2048]);
        } else {
            p.comm.send(&p.actor, 0, 9, &[7u8; 2048]);
        }
        rt.shutdown(&p.actor);
        true
    });
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn host_to_device_cl_mem_send() {
    // Fig. 7 reversed: host rank sends with MPI_CL_MEM; device rank uses
    // enqueue_recv_buffer.
    let size = 6 << 20;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            if p.rank() == 0 {
                let data = pattern(size, 42);
                rt.send_cl(&p.actor, 1, 5, &data);
                rt.shutdown(&p.actor);
                true
            } else {
                let q = rt.context().create_queue(0, "r1");
                let buf = rt.context().create_buffer(size);
                let e = rt
                    .enqueue_recv_buffer(&q, &buf, true, 0, size, 0, 5, &[], &p.actor)
                    .unwrap();
                assert!(e.is_complete());
                let ok = buf.load(0, size).unwrap() == pattern(size, 42);
                rt.shutdown(&p.actor);
                ok
            }
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn device_to_host_cl_mem_recv() {
    // Host receives from a communicator device via irecv_cl.
    let size = 3 << 20;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            if p.rank() == 0 {
                let req = rt.irecv_cl(&p.actor, 1, 2, size);
                req.event.wait(&p.actor);
                let ok = req.data.to_vec() == pattern(size, 9);
                rt.shutdown(&p.actor);
                ok
            } else {
                let q = rt.context().create_queue(0, "r1");
                let buf = rt.context().create_buffer(size);
                buf.store(0, &pattern(size, 9)).unwrap();
                rt.enqueue_send_buffer(&q, &buf, true, 0, size, 0, 2, &[], &p.actor)
                    .unwrap();
                rt.shutdown(&p.actor);
                true
            }
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn offset_subrange_transfers() {
    let res = run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cichlid());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(1024);
        if p.rank() == 0 {
            buf.store(0, &pattern(1024, 1)).unwrap();
            rt.enqueue_send_buffer(&q, &buf, true, 256, 512, 1, 1, &[], &p.actor)
                .unwrap();
            rt.shutdown(&p.actor);
            true
        } else {
            rt.enqueue_recv_buffer(&q, &buf, true, 128, 512, 0, 1, &[], &p.actor)
                .unwrap();
            let expect = &pattern(1024, 1)[256..768];
            let ok = buf.load(128, 512).unwrap() == expect
                && buf.load(0, 128).unwrap() == vec![0u8; 128];
            rt.shutdown(&p.actor);
            ok
        }
    });
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn invalid_arguments_are_rejected() {
    run_world_sized(SystemConfig::cichlid().cluster.clone(), 2, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cichlid());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(64);
        assert!(rt
            .enqueue_send_buffer(&q, &buf, false, 32, 64, 1, 1, &[], &p.actor)
            .is_err());
        assert!(rt
            .enqueue_recv_buffer(&q, &buf, false, 0, 32, 99, 1, &[], &p.actor)
            .is_err());
        rt.shutdown(&p.actor);
    });
}

#[test]
fn gpu_aware_mpi_comparator_delivers_intact() {
    // §II related-work model: direct device-buffer MPI, host-blocking.
    let size = 1 << 20;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            let ok = if p.rank() == 0 {
                buf.store(0, &pattern(size, 3)).unwrap();
                let t0 = p.actor.now_ns();
                rt.gpu_aware_send(&p.actor, &q, &buf, 0, size, 1, 4)
                    .unwrap();
                // Host-blocking semantics: time passed during the call.
                p.actor.now_ns() > t0
            } else {
                rt.gpu_aware_recv(&p.actor, &q, &buf, 0, size, 0, 4)
                    .unwrap();
                buf.load(0, size).unwrap() == pattern(size, 3)
            };
            rt.shutdown(&p.actor);
            ok
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn enqueue_bcast_buffer_reaches_every_device() {
    // Future-work extension (§VI): collective command with event chaining.
    let size = 512 << 10;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        4,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            if p.rank() == 2 {
                buf.store(0, &pattern(size, 11)).unwrap();
            }
            let e = rt
                .enqueue_bcast_buffer(&q, &buf, 0, size, 2, 9, &[], &p.actor)
                .unwrap();
            // Chain a kernel on the broadcast completion, clMPI-style.
            let b2 = buf.clone();
            let sum = std::sync::Arc::new(simtime::plock::Mutex::new(0u64));
            let s2 = sum.clone();
            let ek = q.enqueue_kernel("consume", 10_000, std::slice::from_ref(&e), move || {
                *s2.lock() = b2.read(|d| d.as_slice().iter().map(|&x| x as u64).sum());
            });
            ek.wait(&p.actor);
            let ok = buf.load(0, size).unwrap() == pattern(size, 11) && *sum.lock() > 0;
            rt.shutdown(&p.actor);
            ok
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}

#[test]
fn flat_bcast_scales_with_destinations_on_root_nic() {
    // Forced-flat broadcast: the root's NIC serializes per-destination
    // sends, so tripling the destinations more than doubles the time.
    // (The default policy picks pipelined algorithms at this size exactly
    // to escape this scaling — see `ring_bcast_beats_flat_fanout`.)
    let size = 2 << 20;
    let t2 = timed_bcast(2, size, clmpi::CollAlgo::Flat, 1 << 20);
    let t4 = timed_bcast(4, size, clmpi::CollAlgo::Flat, 1 << 20);
    assert!(
        t4 > t2 * 2,
        "3 destinations vs 1 serialize on the root NIC ({t4} vs {t2})"
    );
}

#[test]
fn ring_bcast_beats_flat_fanout() {
    // The tentpole claim at test scale: a chunked store-and-forward ring
    // injects each chunk once per link while flat re-injects the whole
    // payload per destination on the root NIC.
    let (nodes, size, chunk) = (8, 8 << 20, 512 << 10);
    let flat = timed_bcast(nodes, size, clmpi::CollAlgo::Flat, chunk);
    let ring = timed_bcast(nodes, size, clmpi::CollAlgo::Ring, chunk);
    let tree = timed_bcast(nodes, size, clmpi::CollAlgo::Tree, chunk);
    assert!(ring * 2 < flat, "ring {ring} vs flat {flat}");
    assert!(tree < flat, "tree {tree} vs flat {flat}");
}

/// Longest per-rank wall time of one forced-algorithm broadcast from
/// rank 0, contents verified on every rank.
fn timed_bcast(nodes: usize, size: usize, algo: clmpi::CollAlgo, chunk: usize) -> u64 {
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        nodes,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            if p.rank() == 0 {
                buf.store(0, &pattern(size, 29)).unwrap();
            }
            p.comm.barrier(&p.actor);
            let t0 = p.actor.now_ns();
            let e = rt
                .enqueue_bcast_buffer_as(&q, &buf, 0, size, 0, 1, algo, chunk, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert_eq!(buf.load(0, size).unwrap(), pattern(size, 29));
            rt.shutdown(&p.actor);
            p.actor.now_ns() - t0
        },
    );
    res.outputs.into_iter().max().unwrap()
}

#[test]
fn stats_collector_audits_strategy_selection() {
    let res = run_world_sized(SystemConfig::ricc().cluster.clone(), 2, |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let stats = rt.enable_stats();
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let small = rt.context().create_buffer(64 << 10);
        let large = rt.context().create_buffer(8 << 20);
        if p.rank() == 0 {
            rt.enqueue_send_buffer(&q, &small, true, 0, 64 << 10, 1, 1, &[], &p.actor)
                .unwrap();
            rt.enqueue_send_buffer(&q, &large, true, 0, 8 << 20, 1, 2, &[], &p.actor)
                .unwrap();
        } else {
            rt.enqueue_recv_buffer(&q, &small, true, 0, 64 << 10, 0, 1, &[], &p.actor)
                .unwrap();
            rt.enqueue_recv_buffer(&q, &large, true, 0, 8 << 20, 0, 2, &[], &p.actor)
                .unwrap();
        }
        rt.shutdown(&p.actor);
        let dir = if p.rank() == 0 { "send" } else { "recv" };
        // RICC auto policy: pinned below 1 MiB, pipelined above.
        let pinned = stats.get(dir, "pinned").expect("small used pinned");
        assert_eq!(pinned.count, 1);
        assert_eq!(pinned.bytes, 64 << 10);
        let piped = stats
            .get(
                dir,
                &clmpi::TransferStrategy::Pipelined(SystemConfig::ricc().auto_block(8 << 20))
                    .name(),
            )
            .expect("large used pipelined");
        assert_eq!(piped.bytes, 8 << 20);
        assert!(stats.report().contains("pinned"));
        stats.total_count()
    });
    assert_eq!(res.outputs, vec![2, 2]);
}

#[test]
fn adaptive_selector_converges_to_best_strategy_per_system() {
    // After probing, the tuner must land on the strategy the static
    // policy (calibrated from Fig. 8) would pick.
    for (mk, expect) in [
        (SystemConfig::cichlid as fn() -> SystemConfig, "mapped"),
        (SystemConfig::ricc, "pinned"),
    ] {
        let res = run_world_sized(mk().cluster.clone(), 2, move |p: Process| {
            let rt = ClMpi::new(&p, mk());
            let sel = std::sync::Arc::new(clmpi::AdaptiveSelector::for_system(rt.config()));
            rt.set_adaptive(Some(sel.clone()));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let size = 256 << 10;
            let buf = rt.context().create_buffer(size);
            for i in 0..6 {
                if p.rank() == 0 {
                    rt.enqueue_send_buffer(&q, &buf, true, 0, size, 1, i, &[], &p.actor)
                        .unwrap();
                } else {
                    rt.enqueue_recv_buffer(&q, &buf, true, 0, size, 0, i, &[], &p.actor)
                        .unwrap();
                }
                p.comm.barrier(&p.actor);
            }
            rt.shutdown(&p.actor);
            // Rank 0 measures send completions (injection end), which
            // ranks strategies the same way end-to-end times do.
            (p.rank() == 0)
                .then(|| sel.winner_for(size).map(|s| s.name()))
                .flatten()
        });
        assert_eq!(
            res.outputs[0].as_deref(),
            Some(expect),
            "winner on {}",
            mk().cluster.name
        );
    }
}

#[test]
fn sendrecv_buffer_convenience_exchanges() {
    let size = 256 << 10;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        2,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(2 * size);
            // First half = mine (send), second half = ghost (recv).
            buf.store(0, &vec![p.rank() as u8 + 1; size]).unwrap();
            let peer = 1 - p.rank();
            let (es, er) = rt
                .enqueue_sendrecv_buffer(
                    &q,
                    &buf,
                    0,
                    size,
                    size,
                    peer,
                    p.rank() as i32,
                    peer as i32,
                    &[],
                    &p.actor,
                )
                .unwrap();
            es.wait(&p.actor);
            er.wait(&p.actor);
            let got = buf.load(size, size).unwrap();
            rt.shutdown(&p.actor);
            got == vec![peer as u8 + 1; size]
        },
    );
    assert!(res.outputs.iter().all(|&b| b));
}
