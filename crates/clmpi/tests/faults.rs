//! Integration tests: clMPI transfers under deterministic fault
//! injection — retry-until-delivery, degradation, and error-propagating
//! events.

use clmpi::{data_plane_faults, ClMpi, RetryPolicy, SystemConfig, TransferStrategy};
use minimpi::{run_world_faulty, FaultPlan, Process};
use simtime::XorShift64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// A lossy fabric (1% chunk drop) still delivers a pipelined transfer
/// intact; the retries are visible in the stats and the trace.
#[test]
fn lossy_pipelined_transfer_delivers_intact_with_retries() {
    let size = 8 << 20; // many pipeline chunks → drops are near-certain
    let plan = data_plane_faults(FaultPlan::drops(42, 0.05));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 18)));
        let stats = rt.enable_stats();
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(size);
        let ok = if p.rank() == 0 {
            buf.store(0, &pattern(size, 9)).unwrap();
            let e = rt
                .enqueue_send_buffer(&q, &buf, false, 0, size, 1, 3, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed(), "send must survive 5% loss via retries");
            true
        } else {
            let e = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, size, 0, 3, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed());
            buf.load(0, size).unwrap() == pattern(size, 9)
        };
        rt.shutdown(&p.actor);
        let f = stats.faults();
        (ok, f.retries, f.failures)
    });
    assert!(res.outputs.iter().all(|&(ok, _, _)| ok));
    let sender = res.outputs[0];
    assert!(sender.1 > 0, "expected sender-side retries under 5% loss");
    assert_eq!(sender.2, 0, "no permanent failures expected");
    assert!(res.fault_counts.dropped() > 0);
    assert!(
        res.trace.spans().iter().any(|s| s.lane.contains(".fault")),
        "retries must appear in the fault trace lane"
    );
}

/// Repeated consecutive loss degrades pipelined → pinned; the latch is
/// observable and resettable.
#[test]
fn repeated_loss_degrades_pipelined_to_pinned() {
    // Drop everything on the data plane: the first chunk exhausts the
    // (small) retry budget while flipping the degradation latch.
    let plan = data_plane_faults(FaultPlan::drops(7, 1.0));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let stats = rt.enable_stats();
        rt.set_retry_policy(RetryPolicy {
            degrade_after: 2,
            ..RetryPolicy::new(3, 10_000)
        });
        if p.rank() == 0 {
            assert!(!rt.is_degraded());
            let req = rt.isend_cl(&p.actor, 1, 5, &pattern(1 << 20, 3));
            let err = req.wait_result(&p.actor);
            assert!(err.is_err(), "total loss must exhaust the retry budget");
            assert!(rt.is_degraded(), "consecutive drops must latch degradation");
            let f = stats.faults();
            assert!(f.chunk_drops >= 2);
            assert_eq!(f.degraded, 1);
            assert!(f.failures >= 1);
            rt.reset_degradation();
            assert!(!rt.is_degraded());
        }
        rt.shutdown(&p.actor);
        p.rank()
    });
    assert_eq!(res.outputs.len(), 2);
}

/// A permanently failed transfer fails its event with a negative status,
/// and commands gated on that event are poisoned instead of running.
#[test]
fn failed_transfer_event_poisons_dependents() {
    use clmpi::CL_MPI_TRANSFER_ERROR;
    use minicl::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;

    let plan = data_plane_faults(FaultPlan::drops(11, 1.0));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_retry_policy(RetryPolicy::new(2, 5_000));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(4096);
        let codes = if p.rank() == 0 {
            buf.store(0, &[1u8; 4096]).unwrap();
            let e = rt
                .enqueue_send_buffer(&q, &buf, false, 0, 4096, 1, 2, &[], &p.actor)
                .unwrap();
            // A kernel-style command gated on the failing send.
            let dep = q.enqueue_kernel("after-send", 1_000, std::slice::from_ref(&e), || {});
            e.wait(&p.actor);
            dep.wait(&p.actor);
            (e.error_code(), dep.error_code())
        } else {
            // The receiver gives up quickly: nothing ever arrives.
            rt.set_retry_policy(RetryPolicy {
                chunk_timeout_ns: 1_000_000,
                ..RetryPolicy::default()
            });
            let e = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, 4096, 0, 2, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            (e.error_code(), None)
        };
        rt.shutdown(&p.actor);
        codes
    });
    let (send_code, dep_code) = res.outputs[0];
    assert_eq!(send_code, Some(CL_MPI_TRANSFER_ERROR));
    assert_eq!(dep_code, Some(EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST));
    let (recv_code, _) = res.outputs[1];
    assert_eq!(recv_code, Some(CL_MPI_TRANSFER_ERROR));
}

/// The same fault seed yields the same virtual-time run, chunk for
/// chunk: elapsed time, payloads, fault counters and trace all match.
#[test]
fn same_fault_seed_is_fully_deterministic() {
    let run = || {
        let plan = data_plane_faults(FaultPlan::drops(1234, 0.1).with_jitter(30_000));
        let cluster = SystemConfig::ricc().cluster.clone();
        let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 16)));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(1 << 20);
            let out = if p.rank() == 0 {
                buf.store(0, &pattern(1 << 20, 77)).unwrap();
                let e = rt
                    .enqueue_send_buffer(&q, &buf, false, 0, 1 << 20, 1, 1, &[], &p.actor)
                    .unwrap();
                e.wait(&p.actor);
                Vec::new()
            } else {
                let e = rt
                    .enqueue_recv_buffer(&q, &buf, false, 0, 1 << 20, 0, 1, &[], &p.actor)
                    .unwrap();
                e.wait(&p.actor);
                buf.load(0, 1 << 20).unwrap()
            };
            rt.shutdown(&p.actor);
            out
        });
        let spans: Vec<String> = res
            .trace
            .spans()
            .iter()
            .map(|s| format!("{}|{}|{}|{}", s.lane, s.label, s.start, s.end))
            .collect();
        (res.elapsed_ns, res.outputs.clone(), res.fault_counts, spans)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "elapsed must be reproducible");
    assert_eq!(a.1, b.1, "payloads must be reproducible");
    assert_eq!(a.2, b.2, "fault counters must be reproducible");
    assert_eq!(a.3, b.3, "trace must be reproducible");
    assert_eq!(a.1[1], pattern(1 << 20, 77), "data must still be intact");
}
