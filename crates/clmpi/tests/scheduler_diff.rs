//! World-level differential suite for the event-driven scheduler: the
//! thread-per-actor oracle ([`ExecMode::Threads`]) and the sharded event
//! core ([`ExecMode::Events`]) must produce **byte-identical**
//! observability fingerprints and virtual makespans for the same
//! scenario. Three matrices:
//!
//! * clean runs at worlds {2, 3, 5, 8, 13} × 16 seeds (kernel → halo
//!   exchange → broadcast → allreduce),
//! * lossy-fabric runs (2% data-plane drops) with retries in play,
//! * the PR 6 rank-kill recovery scenario (kill → agree → shrink →
//!   resume) on a lossy fabric.

use clmpi::{data_plane_faults, ClMpi, CollAlgo, ObsSummary, ReduceOp, SystemConfig};
use minimpi::{run_world_faulty_mode, FaultPlan, Process};
use simtime::{ExecMode, SimNs, XorShift64};

const ALGOS: [CollAlgo; 3] = [CollAlgo::Flat, CollAlgo::Tree, CollAlgo::Ring];

/// Agreement patience for shrink after a plan-scheduled kill (virtual).
const PATIENCE: SimNs = 5_000_000_000;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// One clean seeded workload: a seeded warm-up kernel, a ring halo
/// exchange gated on it, a broadcast with seeded root/algorithm, and an
/// allreduce. Returns (ObsSummary hash, virtual makespan).
fn clean_fingerprint(mode: ExecMode, world: usize, seed: u64) -> (u64, SimNs) {
    const SIZE: usize = 2048;
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        world,
        FaultPlan::none(),
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let mut rng =
                XorShift64::new(seed ^ (p.rank() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let buf = rt.context().create_buffer(SIZE);
            buf.store(0, &pattern(SIZE, seed + p.rank() as u64))
                .unwrap();
            let k = q.enqueue_kernel("warmup", rng.gen_range_u64(10_000, 200_000), &[], || {});
            let up = (p.rank() + 1) % world;
            let dn = (p.rank() + world - 1) % world;
            let es = rt
                .enqueue_send_buffer(
                    &q,
                    &buf,
                    false,
                    0,
                    SIZE / 2,
                    up,
                    1,
                    std::slice::from_ref(&k),
                    &p.actor,
                )
                .unwrap();
            let er = rt
                .enqueue_recv_buffer(&q, &buf, false, SIZE / 2, SIZE / 2, dn, 1, &[], &p.actor)
                .unwrap();
            es.wait_result(&p.actor).unwrap();
            er.wait_result(&p.actor).unwrap();
            let root = (seed as usize) % world;
            let algo = ALGOS[(seed as usize / world) % ALGOS.len()];
            rt.enqueue_bcast_buffer_as(&q, &buf, 0, SIZE, root, 2, algo, 512, &[], &p.actor)
                .unwrap()
                .wait_result(&p.actor)
                .unwrap();
            rt.enqueue_allreduce_buffer(&q, &buf, 0, SIZE / 8, ReduceOp::Sum, 3, &[], &p.actor)
                .unwrap()
                .wait_result(&p.actor)
                .unwrap();
            q.finish(&p.actor);
            rt.shutdown(&p.actor);
        },
    );
    (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
}

/// Worlds {2, 3, 5, 8, 13} × 16 seeds: the event core must reproduce the
/// thread-per-actor oracle exactly — same ObsSummary hash (every span
/// and op instant) and same virtual makespan.
#[test]
fn clean_worlds_fingerprint_identical_thread_vs_event() {
    for world in [2usize, 3, 5, 8, 13] {
        for seed in 0..16u64 {
            let (ht, et) = clean_fingerprint(ExecMode::Threads, world, seed);
            let (he, ee) = clean_fingerprint(ExecMode::Events, world, seed);
            assert_eq!(
                ht, he,
                "ObsSummary diverges at world={world} seed={seed} (oracle {et} ns vs event {ee} ns)"
            );
            assert_eq!(et, ee, "makespan diverges at world={world} seed={seed}");
        }
    }
}

/// Lossy fabric (2% data-plane drops): retries, timeouts and fault spans
/// must land at the same virtual instants in both modes.
fn lossy_fingerprint(mode: ExecMode, seed: u64) -> (u64, SimNs) {
    const COUNT: usize = 512;
    let plan = data_plane_faults(FaultPlan::drops(seed, 0.02));
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        4,
        plan,
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.enable_stats();
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let vals: Vec<f64> = (0..COUNT).map(|i| (p.rank() + i) as f64).collect();
            let buf = rt.context().create_buffer(COUNT * 8);
            for _ in 0..4 {
                buf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                    .unwrap();
                rt.enqueue_allreduce_buffer(&q, &buf, 0, COUNT, ReduceOp::Sum, 4, &[], &p.actor)
                    .unwrap()
                    .wait_result(&p.actor)
                    .expect("allreduce retries through a 2% lossy fabric");
            }
            rt.shutdown(&p.actor);
        },
    );
    (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
}

#[test]
fn lossy_fabric_fingerprint_identical_thread_vs_event() {
    for seed in 0..8u64 {
        let a = lossy_fingerprint(ExecMode::Threads, seed);
        let b = lossy_fingerprint(ExecMode::Events, seed);
        assert_eq!(a, b, "lossy run diverges at seed={seed}");
    }
}

/// The PR 6 recovery scenario (iterated allreduces on a lossy fabric
/// until a scheduled kill poisons one, then agree → revoke → shrink →
/// resume on the survivor communicator), parameterized by executor mode.
fn recovery_fingerprint(mode: ExecMode, seed: u64, t_kill: SimNs) -> (u64, bool) {
    const COUNT: usize = 512;
    let plan = data_plane_faults(FaultPlan::drops(seed, 0.02)).with_node_down(3, t_kill);
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        4,
        plan,
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.enable_stats();
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let vals: Vec<f64> = (0..COUNT).map(|i| (p.rank() + i) as f64).collect();
            let buf = rt.context().create_buffer(COUNT * 8);
            let mut failed = false;
            for _ in 0..8 {
                buf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                    .unwrap();
                let e = rt
                    .enqueue_allreduce_buffer(&q, &buf, 0, COUNT, ReduceOp::Sum, 4, &[], &p.actor)
                    .unwrap();
                if e.wait_result(&p.actor).is_err() {
                    failed = true;
                    break;
                }
            }
            rt.shutdown(&p.actor);
            if p.comm.world().node_down_at(p.rank(), p.actor.now_ns()) {
                return false; // the victim exits
            }
            let clean = p
                .comm
                .agree(&p.actor, u64::from(!failed), PATIENCE)
                .expect("completion agreement");
            if clean == 0 {
                for r in rt.failed_ranks(p.actor.now_ns()) {
                    rt.notify_proc_failure(r);
                }
                rt.revoke();
                let sub = rt
                    .shrink_comm(&p.actor, PATIENCE)
                    .expect("survivors agree on the shrunken communicator");
                let rt2 = ClMpi::with_comm(sub, SystemConfig::ricc());
                rt2.enable_stats();
                let q2 = rt2.context().create_queue(0, format!("r{}b", p.rank()));
                for _ in 0..2 {
                    buf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                        .unwrap();
                    rt2.enqueue_allreduce_buffer(
                        &q2,
                        &buf,
                        0,
                        COUNT,
                        ReduceOp::Sum,
                        4,
                        &[],
                        &p.actor,
                    )
                    .unwrap()
                    .wait_result(&p.actor)
                    .expect("allreduce on the survivor communicator");
                }
                rt2.shutdown(&p.actor);
            }
            clean == 0
        },
    );
    let recovered = res.outputs.iter().any(|&f| f);
    (ObsSummary::from_trace(&res.trace).hash(), recovered)
}

#[test]
fn rank_kill_recovery_fingerprint_identical_thread_vs_event() {
    let mut recovered_runs = 0;
    for seed in 0..8u64 {
        let t_kill = 2_000_000 + seed * 250_000;
        let (ht, rt) = recovery_fingerprint(ExecMode::Threads, seed, t_kill);
        let (he, re) = recovery_fingerprint(ExecMode::Events, seed, t_kill);
        assert_eq!(ht, he, "recovery run diverges at seed={seed}");
        assert_eq!(rt, re, "recovery outcome diverges at seed={seed}");
        recovered_runs += usize::from(rt);
    }
    assert!(
        recovered_runs > 0,
        "at least some kills must land mid-run and exercise recovery"
    );
}
