//! Integration tests for derived-datatype (noncontiguous) transfers: the
//! TEMPI-style lowering of `MPI_CL_MEM` sends/recvs of strided types into
//! host-gather vs on-device pack kernels.
//!
//! Three matrices:
//!
//! * a differential pack/unpack suite — every derived datatype shape ×
//!   {host-pack, device-pack, pipelined-pack} × worlds {2, 3, 5, 8},
//!   ring-exchanged and checked bit-for-bit against the host
//!   [`CommittedType::pack`]/[`CommittedType::unpack`] serial reference
//!   (including that bytes *outside* the type map stay untouched),
//! * a 16-seed × 2 thread-vs-event scheduler fingerprint matrix,
//! * a 30% data-plane-drop fault case proving retransmissions replay the
//!   *packed* chunks correctly (payload still bit-identical, retries
//!   visible in the summary).

use clmpi::{data_plane_faults, ClMpi, ObsSummary, PackMode, RetryPolicy, SystemConfig};
use minimpi::{
    run_world_faulty, run_world_faulty_mode, run_world_sized, DerivedType, FaultPlan, Process,
};
use simtime::{ExecMode, XorShift64};

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// The derived shapes under test: strided vectors (round and ragged) and
/// row-major subarray boxes (a 2-D halo face and a 3-D interior box).
fn shapes() -> Vec<(&'static str, DerivedType)> {
    vec![
        (
            "vector-sparse",
            DerivedType::Vector {
                count: 96,
                blocklen: 256,
                stride: 1024,
                extent: 96 * 1024,
            },
        ),
        (
            "vector-ragged",
            DerivedType::Vector {
                count: 33,
                blocklen: 100,
                stride: 1000,
                extent: 33 * 1000,
            },
        ),
        (
            "face-2d",
            DerivedType::Subarray {
                elem: 4,
                sizes: vec![66, 130],
                subsizes: vec![64, 128],
                starts: vec![1, 1],
            },
        ),
        (
            "box-3d",
            DerivedType::Subarray {
                elem: 8,
                sizes: vec![16, 24, 32],
                subsizes: vec![7, 11, 13],
                starts: vec![3, 5, 2],
            },
        ),
    ]
}

const MODES: [PackMode; 3] = [
    PackMode::HostPack,
    PackMode::DevicePack,
    PackMode::PipelinedPack,
];

/// Ring-exchange every shape under `mode` in a `world`-rank world; each
/// rank checks its received region bit-for-bit against the host serial
/// reference (type-map bytes from the sender's pattern, everything else
/// still the receiver's own initial bytes).
fn differential_ring(mode: PackMode, world: usize) {
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        world,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let up = (p.rank() + 1) % world;
            let dn = (p.rank() + world - 1) % world;
            for (idx, (name, desc)) in shapes().into_iter().enumerate() {
                let ty = desc.commit().expect("shape is valid");
                let extent = ty.extent();
                let send_seed = 1000 + p.rank() as u64;
                let recv_init_seed = 5000 + p.rank() as u64;
                let sbuf = rt.context().create_buffer(extent);
                let rbuf = rt.context().create_buffer(extent);
                sbuf.store(0, &pattern(extent, send_seed)).unwrap();
                rbuf.store(0, &pattern(extent, recv_init_seed)).unwrap();
                let tag = 10 + idx as i32;
                let es = rt
                    .enqueue_send_datatype(&q, &sbuf, false, 0, &ty, mode, up, tag, &[], &p.actor)
                    .unwrap();
                let er = rt
                    .enqueue_recv_datatype(&q, &rbuf, false, 0, &ty, mode, dn, tag, &[], &p.actor)
                    .unwrap();
                es.wait(&p.actor);
                er.wait(&p.actor);
                assert!(!es.is_failed() && !er.is_failed(), "{name} exchange clean");
                // Serial reference: host pack of the sender's region,
                // host unpack into the receiver's initial region.
                let sender_region = pattern(extent, 1000 + dn as u64);
                let wire = ty.pack(&sender_region);
                let mut expected = pattern(extent, recv_init_seed);
                ty.unpack(&wire, &mut expected).unwrap();
                assert_eq!(
                    rbuf.load(0, extent).unwrap(),
                    expected,
                    "{name} via {} in world {world}: received region must match \
                 the serial pack/unpack reference bit-for-bit",
                    mode.name()
                );
            }
            rt.shutdown(&p.actor);
            true
        },
    );
    assert!(res.outputs.iter().all(|&ok| ok));
}

#[test]
fn differential_pack_unpack_world_2() {
    for mode in MODES {
        differential_ring(mode, 2);
    }
}

#[test]
fn differential_pack_unpack_world_3() {
    for mode in MODES {
        differential_ring(mode, 3);
    }
}

#[test]
fn differential_pack_unpack_world_5() {
    for mode in MODES {
        differential_ring(mode, 5);
    }
}

#[test]
fn differential_pack_unpack_world_8() {
    for mode in MODES {
        differential_ring(mode, 8);
    }
}

/// A large strided vector whose packed payload spans several pipeline
/// blocks (8 MiB packed → 8 × 1 MiB chunks on RICC's auto block), so the
/// pipelined-pack mode genuinely overlaps pack/PCIe/wire stages and the
/// fault test exercises mid-stream retransmission.
fn big_vector() -> DerivedType {
    DerivedType::Vector {
        count: 512,
        blocklen: 16 << 10,
        stride: 32 << 10,
        extent: 512 * (32 << 10),
    }
}

/// One seeded strided-exchange workload; returns the ObsSummary
/// fingerprint and the virtual makespan.
fn datatype_fingerprint(mode: ExecMode, seed: u64) -> (u64, u64) {
    let pack = MODES[(seed % 3) as usize];
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        3,
        FaultPlan::none(),
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let ty = DerivedType::Subarray {
                elem: 4,
                sizes: vec![66, 130],
                subsizes: vec![64, 128],
                starts: vec![1, 1],
            }
            .commit()
            .unwrap();
            let extent = ty.extent();
            let buf = rt.context().create_buffer(2 * extent);
            buf.store(0, &pattern(2 * extent, seed + p.rank() as u64))
                .unwrap();
            let k = q.enqueue_kernel("warmup", 50_000 + 10_000 * (seed % 5), &[], || {});
            let up = (p.rank() + 1) % 3;
            let dn = (p.rank() + 2) % 3;
            let es = rt
                .enqueue_send_datatype(
                    &q,
                    &buf,
                    false,
                    0,
                    &ty,
                    pack,
                    up,
                    1,
                    std::slice::from_ref(&k),
                    &p.actor,
                )
                .unwrap();
            let er = rt
                .enqueue_recv_datatype(&q, &buf, false, extent, &ty, pack, dn, 1, &[], &p.actor)
                .unwrap();
            es.wait(&p.actor);
            er.wait(&p.actor);
            rt.shutdown(&p.actor);
            true
        },
    );
    assert!(res.outputs.iter().all(|&ok| ok));
    (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
}

/// 16 seeds × {thread-per-actor oracle, sharded event core}: the
/// fingerprint and makespan of the datatype workload must be identical
/// across execution modes for every seed.
#[test]
fn sixteen_seed_thread_vs_event_matrix() {
    for seed in 0..16 {
        let t = datatype_fingerprint(ExecMode::Threads, seed);
        let e = datatype_fingerprint(ExecMode::Events, seed);
        assert_eq!(t, e, "seed {seed}: thread and event modes must agree");
    }
}

/// 30% data-plane drops on a multi-chunk pipelined-pack transfer: the
/// retry machinery retransmits from the packed host staging copy (pack
/// kernels are *not* re-run), and the delivered region is still
/// bit-identical to the serial reference.
#[test]
fn thirty_percent_drop_replays_packed_chunks() {
    let plan = data_plane_faults(FaultPlan::drops(4242, 0.3));
    let res = run_world_faulty(
        SystemConfig::ricc().cluster.clone(),
        2,
        plan,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_retry_policy(RetryPolicy::new(10, 50_000));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let ty = big_vector().commit().unwrap();
            let extent = ty.extent();
            let buf = rt.context().create_buffer(extent);
            if p.rank() == 0 {
                buf.store(0, &pattern(extent, 77)).unwrap();
                let e = rt
                    .enqueue_send_datatype(
                        &q,
                        &buf,
                        false,
                        0,
                        &ty,
                        PackMode::PipelinedPack,
                        1,
                        9,
                        &[],
                        &p.actor,
                    )
                    .unwrap();
                e.wait(&p.actor);
                assert!(!e.is_failed(), "30% loss must be absorbed by retries");
            } else {
                buf.store(0, &pattern(extent, 88)).unwrap();
                let e = rt
                    .enqueue_recv_datatype(
                        &q,
                        &buf,
                        false,
                        0,
                        &ty,
                        PackMode::PipelinedPack,
                        0,
                        9,
                        &[],
                        &p.actor,
                    )
                    .unwrap();
                e.wait(&p.actor);
                assert!(!e.is_failed());
                let sender = pattern(extent, 77);
                let wire = ty.pack(&sender);
                let mut expected = pattern(extent, 88);
                ty.unpack(&wire, &mut expected).unwrap();
                assert_eq!(
                    buf.load(0, extent).unwrap(),
                    expected,
                    "retransmitted packed chunks must reassemble bit-for-bit"
                );
            }
            rt.shutdown(&p.actor);
            true
        },
    );
    assert!(res.outputs.iter().all(|&ok| ok));
    let summary = ObsSummary::from_trace(&res.trace);
    let retries: u64 = summary.ranks.values().map(|r| r.chunk_retries).sum();
    assert!(
        retries > 0,
        "a 30% drop plan over 8 wire chunks must retransmit at least once"
    );
}

/// Device-pack beats host-pack end-to-end on a strided face: the host
/// path pays the staged PCIe latency once per type-map segment, the
/// device path once per transfer.
#[test]
fn device_pack_beats_host_pack_on_strided_face() {
    let elapsed = |mode: PackMode| {
        let res = run_world_sized(
            SystemConfig::ricc().cluster.clone(),
            2,
            move |p: Process| {
                let rt = ClMpi::new(&p, SystemConfig::ricc());
                let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                let ty = big_vector().commit().unwrap();
                let extent = ty.extent();
                let buf = rt.context().create_buffer(extent);
                if p.rank() == 0 {
                    buf.store(0, &pattern(extent, 3)).unwrap();
                    rt.enqueue_send_datatype(&q, &buf, true, 0, &ty, mode, 1, 2, &[], &p.actor)
                        .unwrap();
                } else {
                    rt.enqueue_recv_datatype(&q, &buf, true, 0, &ty, mode, 0, 2, &[], &p.actor)
                        .unwrap();
                }
                rt.shutdown(&p.actor);
            },
        );
        res.elapsed_ns
    };
    let host = elapsed(PackMode::HostPack);
    let device = elapsed(PackMode::DevicePack);
    let pipelined = elapsed(PackMode::PipelinedPack);
    assert!(
        device < host,
        "device-pack ({device}) must beat host-pack ({host})"
    );
    assert!(
        pipelined < device,
        "pipelined-pack ({pipelined}) must beat one-shot device-pack ({device})"
    );
}
