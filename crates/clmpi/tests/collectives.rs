//! Differential test suite for the device-buffer collectives: every
//! algorithm × every root × friendly and hostile world sizes, checked
//! byte-for-byte against naive host references; a 16-seed determinism
//! matrix; and fault-injection scenarios (lossy ring recovers, dead link
//! poisons every event without deadlocking the engine).

use clmpi::{
    data_plane_faults, ClMpi, CollAlgo, ObsSummary, ReduceOp, RetryPolicy, SystemConfig,
    CL_MPI_TRANSFER_ERROR,
};
use minicl::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
use minimpi::{run_world_faulty, run_world_sized, FaultPlan, Process};
use simtime::XorShift64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// World sizes the differential sweeps run at: powers of two AND the
/// hostile shapes (odd, prime, > 8) where tree/ring index arithmetic
/// actually gets exercised.
const WORLDS: [usize; 5] = [2, 3, 5, 8, 13];

const ALGOS: [CollAlgo; 3] = [CollAlgo::Flat, CollAlgo::Tree, CollAlgo::Ring];

// ----------------------------------------------------------------------
// Broadcast differential
// ----------------------------------------------------------------------

/// Every algorithm, every root, every world size, with an uneven payload
/// (65 537 bytes at offset 17, chunk 4096 → 17 chunks, last one short):
/// the broadcast region matches the root's bytes on every rank and the
/// guard bytes around it stay untouched.
#[test]
fn bcast_matches_host_reference_for_all_algos_roots_and_worlds() {
    const OFFSET: usize = 17;
    const SIZE: usize = 65_537;
    const TAIL: usize = 11;
    const CHUNK: usize = 4096;
    for world in WORLDS {
        for (ai, algo) in ALGOS.into_iter().enumerate() {
            let res = run_world_sized(
                SystemConfig::ricc().cluster.clone(),
                world,
                move |p: Process| {
                    let rt = ClMpi::new(&p, SystemConfig::ricc());
                    let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                    let buf = rt.context().create_buffer(OFFSET + SIZE + TAIL);
                    for root in 0..world {
                        let want = pattern(SIZE, 1000 + (root as u64) * 8 + ai as u64);
                        buf.store(0, &vec![0xAB; OFFSET + SIZE + TAIL]).unwrap();
                        if p.rank() == root {
                            buf.store(OFFSET, &want).unwrap();
                        }
                        let e = rt
                            .enqueue_bcast_buffer_as(
                                &q,
                                &buf,
                                OFFSET,
                                SIZE,
                                root,
                                root as i32,
                                algo,
                                CHUNK,
                                &[],
                                &p.actor,
                            )
                            .unwrap();
                        e.wait(&p.actor);
                        assert!(!e.is_failed(), "{algo:?} root {root} world {world}");
                        assert_eq!(
                            buf.load(OFFSET, SIZE).unwrap(),
                            want,
                            "{algo:?} root {root} world {world} rank {}",
                            p.rank()
                        );
                        assert_eq!(buf.load(0, OFFSET).unwrap(), vec![0xAB; OFFSET]);
                        assert_eq!(buf.load(OFFSET + SIZE, TAIL).unwrap(), vec![0xAB; TAIL]);
                    }
                    rt.shutdown(&p.actor);
                    true
                },
            );
            assert!(res.outputs.iter().all(|&ok| ok));
        }
    }
}

/// Zero-byte and sub-chunk broadcasts complete on every topology (the
/// wire still carries the one-byte algorithm header so non-roots learn
/// their place in the spanning tree).
#[test]
fn degenerate_bcast_sizes_complete_on_every_topology() {
    for algo in ALGOS {
        let res = run_world_sized(
            SystemConfig::ricc().cluster.clone(),
            5,
            move |p: Process| {
                let rt = ClMpi::new(&p, SystemConfig::ricc());
                let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                let buf = rt.context().create_buffer(256);
                for (tag, size) in [(1, 0usize), (2, 1), (3, 255)] {
                    if p.rank() == 1 {
                        buf.store(0, &pattern(256, 5 + tag as u64)).unwrap();
                    }
                    let e = rt
                        .enqueue_bcast_buffer_as(
                            &q,
                            &buf,
                            0,
                            size,
                            1,
                            tag,
                            algo,
                            4096,
                            &[],
                            &p.actor,
                        )
                        .unwrap();
                    e.wait(&p.actor);
                    assert!(!e.is_failed());
                    assert_eq!(
                        buf.load(0, size).unwrap(),
                        pattern(256, 5 + tag as u64)[..size]
                    );
                }
                rt.shutdown(&p.actor);
                true
            },
        );
        assert!(res.outputs.iter().all(|&ok| ok));
    }
}

// ----------------------------------------------------------------------
// Allreduce / reduce differential
// ----------------------------------------------------------------------

/// Integer-valued per-rank contributions, exactly representable in f64.
fn contrib(rank: usize, count: usize) -> Vec<f64> {
    (0..count)
        .map(|i| ((rank * 31 + i * 7) % 1000) as f64 - 300.0)
        .collect()
}

/// Host reference reduction across all ranks.
fn reduced(world: usize, count: usize, op: ReduceOp) -> Vec<f64> {
    let mut acc = contrib(0, count);
    for r in 1..world {
        op.fold(&mut acc, &contrib(r, count));
    }
    acc
}

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Ring allreduce over an uneven element count (1023 is not divisible by
/// any sweep world size except 3) and a forced sub-segment chunk: every
/// rank ends with the exact host reference for Sum, Min and Max.
#[test]
fn allreduce_matches_host_reference_for_all_ops_and_worlds() {
    const COUNT: usize = 1023;
    const OFFSET: usize = 16;
    for world in WORLDS {
        let res = run_world_sized(
            SystemConfig::ricc().cluster.clone(),
            world,
            move |p: Process| {
                let rt = ClMpi::new(&p, SystemConfig::ricc());
                let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                let buf = rt.context().create_buffer(OFFSET + COUNT * 8);
                for (tag, op) in [(1, ReduceOp::Sum), (2, ReduceOp::Min), (3, ReduceOp::Max)] {
                    buf.store(0, &[0xCD; OFFSET]).unwrap();
                    buf.store(OFFSET, &f64s_to_bytes(&contrib(p.rank(), COUNT)))
                        .unwrap();
                    let e = rt
                        .enqueue_allreduce_buffer_as(
                            &q,
                            &buf,
                            OFFSET,
                            COUNT,
                            op,
                            tag,
                            4096,
                            &[],
                            &p.actor,
                        )
                        .unwrap();
                    e.wait(&p.actor);
                    assert!(!e.is_failed());
                    assert_eq!(
                        bytes_to_f64s(&buf.load(OFFSET, COUNT * 8).unwrap()),
                        reduced(world, COUNT, op),
                        "{op:?} world {world} rank {}",
                        p.rank()
                    );
                    assert_eq!(buf.load(0, OFFSET).unwrap(), vec![0xCD; OFFSET]);
                }
                rt.shutdown(&p.actor);
                true
            },
        );
        assert!(res.outputs.iter().all(|&ok| ok));
    }
}

/// The default (selector-less) allreduce path picks a sane chunk on its
/// own and agrees with the reference too.
#[test]
fn allreduce_default_tuning_path_agrees() {
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        5,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(4096 * 8);
            buf.store(0, &f64s_to_bytes(&contrib(p.rank(), 4096)))
                .unwrap();
            let e = rt
                .enqueue_allreduce_buffer(&q, &buf, 0, 4096, ReduceOp::Sum, 9, &[], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed());
            bytes_to_f64s(&buf.load(0, 4096 * 8).unwrap()) == reduced(5, 4096, ReduceOp::Sum)
        },
    );
    assert!(res.outputs.iter().all(|&ok| ok));
}

/// Reduce-to-root, all roots of a prime world: the root ends with the
/// reference; every other rank's buffer is byte-for-byte untouched
/// (MPI_Reduce semantics).
#[test]
fn reduce_to_root_leaves_non_root_buffers_untouched() {
    const COUNT: usize = 1023;
    let res = run_world_sized(
        SystemConfig::ricc().cluster.clone(),
        5,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(COUNT * 8);
            for root in 0..5 {
                let mine = f64s_to_bytes(&contrib(p.rank(), COUNT));
                buf.store(0, &mine).unwrap();
                let e = rt
                    .enqueue_reduce_buffer(
                        &q,
                        &buf,
                        0,
                        COUNT,
                        ReduceOp::Max,
                        root,
                        root as i32,
                        &[],
                        &p.actor,
                    )
                    .unwrap();
                e.wait(&p.actor);
                assert!(!e.is_failed());
                let got = buf.load(0, COUNT * 8).unwrap();
                if p.rank() == root {
                    assert_eq!(
                        bytes_to_f64s(&got),
                        reduced(5, COUNT, ReduceOp::Max),
                        "root {root}"
                    );
                } else {
                    assert_eq!(got, mine, "non-root buffer must stay untouched");
                }
            }
            rt.shutdown(&p.actor);
            true
        },
    );
    assert!(res.outputs.iter().all(|&ok| ok));
}

// ----------------------------------------------------------------------
// Determinism matrix
// ----------------------------------------------------------------------

/// One collective workload (ring bcast + allreduce under 5% data-plane
/// loss), run twice per seed for 16 seeds: the ObsSummary fingerprint —
/// every counter, span and overlap number — is identical across runs,
/// and the payloads still verify.
#[test]
fn sixteen_seed_matrix_fingerprints_identically() {
    const SIZE: usize = 256 << 10;
    const COUNT: usize = 2048;
    let run = |seed: u64| {
        let plan = data_plane_faults(FaultPlan::drops(seed, 0.05));
        let cluster = SystemConfig::ricc().cluster.clone();
        let res = run_world_faulty(cluster, 4, plan, move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_retry_policy(RetryPolicy::new(10, 50_000));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(SIZE);
            if p.rank() == 0 {
                buf.store(0, &pattern(SIZE, seed)).unwrap();
            }
            let e = rt
                .enqueue_bcast_buffer_as(
                    &q,
                    &buf,
                    0,
                    SIZE,
                    0,
                    1,
                    CollAlgo::Ring,
                    32 << 10,
                    &[],
                    &p.actor,
                )
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed(), "5% loss must be absorbed by retries");
            assert_eq!(buf.load(0, SIZE).unwrap(), pattern(SIZE, seed));
            let rbuf = rt.context().create_buffer(COUNT * 8);
            rbuf.store(0, &f64s_to_bytes(&contrib(p.rank(), COUNT)))
                .unwrap();
            let e = rt
                .enqueue_allreduce_buffer_as(
                    &q,
                    &rbuf,
                    0,
                    COUNT,
                    ReduceOp::Sum,
                    2,
                    4096,
                    &[],
                    &p.actor,
                )
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed());
            assert_eq!(
                bytes_to_f64s(&rbuf.load(0, COUNT * 8).unwrap()),
                reduced(4, COUNT, ReduceOp::Sum)
            );
            rt.shutdown(&p.actor);
            true
        });
        assert!(res.outputs.iter().all(|&ok| ok));
        (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
    };
    for seed in 0..16 {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a, b, "seed {seed}: fingerprint must be reproducible");
    }
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

/// A lossy fabric (30% chunk drop) mid-ring: chunks are retried under a
/// generous budget, the broadcast and the allreduce both deliver intact,
/// and the drops are visible in stats and fault counters.
#[test]
fn lossy_ring_collectives_retry_and_complete() {
    const SIZE: usize = 512 << 10;
    const COUNT: usize = 1023;
    let plan = data_plane_faults(FaultPlan::drops(4242, 0.3));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 5, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let stats = rt.enable_stats();
        rt.set_retry_policy(RetryPolicy::new(12, 50_000));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(SIZE);
        if p.rank() == 2 {
            buf.store(0, &pattern(SIZE, 88)).unwrap();
        }
        let e = rt
            .enqueue_bcast_buffer_as(
                &q,
                &buf,
                0,
                SIZE,
                2,
                1,
                CollAlgo::Ring,
                64 << 10,
                &[],
                &p.actor,
            )
            .unwrap();
        e.wait(&p.actor);
        assert!(!e.is_failed(), "30% loss must be absorbed by retries");
        assert_eq!(buf.load(0, SIZE).unwrap(), pattern(SIZE, 88));
        let rbuf = rt.context().create_buffer(COUNT * 8);
        rbuf.store(0, &f64s_to_bytes(&contrib(p.rank(), COUNT)))
            .unwrap();
        let e = rt
            .enqueue_allreduce_buffer_as(&q, &rbuf, 0, COUNT, ReduceOp::Min, 2, 4096, &[], &p.actor)
            .unwrap();
        e.wait(&p.actor);
        assert!(!e.is_failed());
        assert_eq!(
            bytes_to_f64s(&rbuf.load(0, COUNT * 8).unwrap()),
            reduced(5, COUNT, ReduceOp::Min)
        );
        rt.shutdown(&p.actor);
        let f = stats.faults();
        (f.retries, f.failures)
    });
    assert!(
        res.fault_counts.dropped() > 0,
        "the plan must actually bite"
    );
    let retries: u64 = res.outputs.iter().map(|&(r, _)| r).sum();
    assert!(retries > 0, "expected retransmissions under 30% loss");
    assert!(
        res.outputs.iter().all(|&(_, f)| f == 0),
        "no permanent failures"
    );
}

/// A permanently-down data plane: every rank's collective event settles
/// with `CL_MPI_TRANSFER_ERROR`, wait-list dependents are poisoned with
/// the standard −14, and shutdown still quiesces — no deadlock, no hang.
#[test]
fn dead_link_poisons_every_rank_and_dependents_then_quiesces() {
    const SIZE: usize = 64 << 10;
    let plan = data_plane_faults(FaultPlan::drops(7, 1.0));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 3, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_retry_policy(RetryPolicy {
            chunk_timeout_ns: 1_000_000,
            ..RetryPolicy::new(2, 5_000)
        });
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(SIZE);
        if p.rank() == 0 {
            buf.store(0, &pattern(SIZE, 13)).unwrap();
        }
        let e = rt
            .enqueue_bcast_buffer_as(
                &q,
                &buf,
                0,
                SIZE,
                0,
                1,
                CollAlgo::Ring,
                16 << 10,
                &[],
                &p.actor,
            )
            .unwrap();
        let dep = q.enqueue_kernel("after-bcast", 1_000, std::slice::from_ref(&e), || {});
        e.wait(&p.actor);
        dep.wait(&p.actor);
        let bcast_codes = (e.error_code(), dep.error_code());
        let rbuf = rt.context().create_buffer(1024 * 8);
        rbuf.store(0, &f64s_to_bytes(&contrib(p.rank(), 1024)))
            .unwrap();
        let e = rt
            .enqueue_allreduce_buffer_as(&q, &rbuf, 0, 1024, ReduceOp::Sum, 2, 2048, &[], &p.actor)
            .unwrap();
        e.wait(&p.actor);
        let allreduce_code = e.error_code();
        rt.shutdown(&p.actor); // must quiesce with everything failed
        (bcast_codes, allreduce_code)
    });
    for (rank, &((bcast, dep), allreduce)) in res.outputs.iter().enumerate() {
        assert_eq!(bcast, Some(CL_MPI_TRANSFER_ERROR), "rank {rank} bcast");
        assert_eq!(
            dep,
            Some(EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST),
            "rank {rank} dependent"
        );
        assert_eq!(
            allreduce,
            Some(CL_MPI_TRANSFER_ERROR),
            "rank {rank} allreduce"
        );
    }
}
