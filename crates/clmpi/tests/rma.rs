//! Differential epoch/fault battery for the one-sided RMA path.
//!
//! Three matrices prove the window commands end to end:
//!
//! * **Differential correctness** — Put / Get / Accumulate rounds at
//!   worlds {2, 3, 5, 8} on every fabric (Cichlid GbE, RICC IPoIB,
//!   CXL-Pod), bitwise against a host-side serial reference, with the
//!   thread-per-actor oracle and the sharded event core required to
//!   produce identical `ObsSummary` fingerprints; plus a halo exchange
//!   written with `Put` that must land bit-identical to the two-sided
//!   baseline.
//! * **Epoch properties** — seeded random epoch schedules (16-seed
//!   thread-vs-event fingerprint matrix) complete deterministically and
//!   never hang; epoch misuse returns the documented `MpiError`s;
//!   passive-target lock/unlock epochs compose with runtime windows.
//! * **Fault matrix** — 30% data-plane drops retransmit to completion on
//!   the NIC route; a node death mid-epoch fails the put event with
//!   `CL_MPI_TRANSFER_ERROR` (−1100), poisons dependents (−14) and
//!   quiesces; `classify_peer_error` → revoke → shrink recovers with a
//!   window still in flight on the abandoned communicator.

use clmpi::{ClMpi, ObsSummary, ReduceOp, SystemConfig, CL_MPI_TRANSFER_ERROR};
use minicl::EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST;
use minimpi::datatype::f64_as_bytes;
use minimpi::{run_world_faulty_mode, FaultPlan, MpiError, Process, Win, RMA_TAG_BASE};
use simtime::{ExecMode, SimNs, XorShift64};

const WIN: usize = 2048; // exposed window bytes per rank
const SEG: usize = 512; // put/get slice
const ACC_OFF: usize = 1024; // f64 accumulate region (within the window)
const ACC_N: usize = 64; // f64 count (512 bytes)
const BUF: usize = 4096; // device buffer (window shadow + scratch)
const PUT_SCRATCH: usize = 2048; // staging slot for the outgoing put
const GET_LAND: usize = 2560; // landing slot for the incoming get
const ACC_SCRATCH: usize = 3072; // staging slot for the accumulate

/// Per-rank window seed; the accumulate region starts as f64 zeros so
/// the serial reference stays exact integer arithmetic.
fn seed_bytes(rank: usize) -> Vec<u8> {
    let mut v: Vec<u8> = (0..WIN)
        .map(|i| (rank as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect();
    for b in &mut v[ACC_OFF..ACC_OFF + ACC_N * 8] {
        *b = 0;
    }
    v
}

fn put_payload(rank: usize) -> Vec<u8> {
    (0..SEG)
        .map(|i| (rank as u8) ^ (i as u8).wrapping_mul(7))
        .collect()
}

/// Host-side serial reference: rank `rank`'s window contents after the
/// three epochs (ring of puts, ring of gets, all-to-root accumulate).
/// All accumulated values are small exact integers, so the f64 sums are
/// order-independent and bitwise reproducible.
fn expected_window(rank: usize, n: usize) -> Vec<u8> {
    let mut w = seed_bytes(rank);
    let left = (rank + n - 1) % n;
    w[..SEG].copy_from_slice(&put_payload(left));
    if rank == 0 {
        for i in 0..ACC_N {
            let v: f64 = (0..n).map(|r| (r * ACC_N + i) as f64).sum();
            w[ACC_OFF + i * 8..ACC_OFF + (i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
    }
    w
}

/// One differential run: three fenced epochs of one-sided traffic, every
/// rank checked bitwise against the serial reference. Returns the
/// observability fingerprint and virtual makespan for the cross-mode
/// comparison.
fn differential_run(mode: ExecMode, world: usize, name: &'static str) -> (u64, SimNs) {
    let sys = SystemConfig::by_name(name).unwrap();
    let res = run_world_faulty_mode(
        sys.cluster.clone(),
        world,
        FaultPlan::none(),
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::by_name(name).unwrap());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(BUF);
            buf.store(0, &seed_bytes(p.rank())).unwrap();
            let win = rt.expose_buffer_as_window(&buf, WIN, &p.actor).unwrap();
            let right = (p.rank() + 1) % world;
            let left = (p.rank() + world - 1) % world;

            // Epoch 1: ring of puts (my payload → right neighbor's head).
            buf.store(PUT_SCRATCH, &put_payload(p.rank())).unwrap();
            let e_put = rt
                .enqueue_put_buffer(&q, &win, false, PUT_SCRATCH, 0, SEG, right, &[], &p.actor)
                .unwrap();
            let f1 = rt
                .enqueue_win_fence(&win, false, std::slice::from_ref(&e_put), &p.actor)
                .unwrap();
            e_put.wait_result(&p.actor).unwrap();
            f1.wait_result(&p.actor).unwrap();

            // Epoch 2: ring of gets, reading what epoch 1 put at the left
            // neighbor — exercises fence-ordered visibility.
            let e_get = rt
                .enqueue_get_buffer(&q, &win, false, GET_LAND, 0, SEG, left, &[], &p.actor)
                .unwrap();
            let f2 = rt
                .enqueue_win_fence(&win, false, std::slice::from_ref(&e_get), &p.actor)
                .unwrap();
            e_get.wait_result(&p.actor).unwrap();
            f2.wait_result(&p.actor).unwrap();
            let got = buf.load(GET_LAND, SEG).unwrap();

            // Epoch 3: all ranks accumulate into rank 0 (exact integers).
            let vals: Vec<f64> = (0..ACC_N).map(|i| (p.rank() * ACC_N + i) as f64).collect();
            buf.store(ACC_SCRATCH, f64_as_bytes(&vals)).unwrap();
            let e_acc = rt
                .enqueue_accumulate_buffer(
                    &q,
                    &win,
                    false,
                    ACC_SCRATCH,
                    ACC_OFF,
                    ACC_N * 8,
                    0,
                    ReduceOp::Sum,
                    &[],
                    &p.actor,
                )
                .unwrap();
            let f3 = rt
                .enqueue_win_fence(&win, false, std::slice::from_ref(&e_acc), &p.actor)
                .unwrap();
            e_acc.wait_result(&p.actor).unwrap();
            f3.wait_result(&p.actor).unwrap();

            // Sync the settled window back into the device buffer and
            // snapshot both views.
            rt.window_to_buffer(&win, 0, WIN).unwrap();
            let shadow = buf.load(0, WIN).unwrap();
            assert_eq!(shadow, win.win().read_local(), "shadow sync is bitwise");
            q.finish(&p.actor);
            rt.shutdown(&p.actor);
            (shadow, got)
        },
    );
    for (r, (shadow, got)) in res.outputs.iter().enumerate() {
        assert_eq!(
            shadow,
            &expected_window(r, world),
            "window diverges from serial reference at {name} world={world} rank={r}"
        );
        let two_left = (r + world - 2) % world;
        assert_eq!(
            got,
            &put_payload(two_left),
            "get reads stale epoch data at {name} world={world} rank={r}"
        );
    }
    (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
}

/// Worlds {2, 3, 5, 8} × all three fabrics × both exec cores: the serial
/// reference must hold everywhere and the event core must reproduce the
/// thread oracle's fingerprint exactly. (Cichlid has four physical
/// nodes, so its matrix tops out at world 4.)
#[test]
fn put_get_accumulate_differential_worlds_fabrics_modes() {
    for name in ["cichlid", "ricc", "cxl-pod"] {
        let nodes = SystemConfig::by_name(name).unwrap().cluster.nodes;
        for world in [2usize, 3, 4, 5, 8].into_iter().filter(|&w| w <= nodes) {
            let t = differential_run(ExecMode::Threads, world, name);
            let e = differential_run(ExecMode::Events, world, name);
            assert_eq!(t, e, "RMA differential diverges at {name} world={world}");
        }
    }
}

const HALO: usize = 64; // ghost-cell bytes per side
const INTERIOR: usize = 1024;
const FIELD: usize = HALO + INTERIOR + HALO; // [left ghost | interior | right ghost]

fn field_seed(rank: usize) -> Vec<u8> {
    let mut rng = XorShift64::new(0xF1E1D + rank as u64);
    (0..FIELD).map(|_| rng.next_u64() as u8).collect()
}

/// Ring halo exchange over `Put` windows vs the two-sided baseline: the
/// resulting fields must be bitwise identical.
#[test]
fn halo_exchange_via_put_matches_two_sided_baseline() {
    let world = 4;
    let one_sided = move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cxl_pod());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(FIELD);
        buf.store(0, &field_seed(p.rank())).unwrap();
        let win = rt.expose_buffer_as_window(&buf, FIELD, &p.actor).unwrap();
        let right = (p.rank() + 1) % world;
        let left = (p.rank() + world - 1) % world;
        // My right interior edge → right neighbor's left ghost; my left
        // interior edge → left neighbor's right ghost.
        let e1 = rt
            .enqueue_put_buffer(
                &q,
                &win,
                false,
                HALO + INTERIOR - HALO,
                0,
                HALO,
                right,
                &[],
                &p.actor,
            )
            .unwrap();
        let e2 = rt
            .enqueue_put_buffer(
                &q,
                &win,
                false,
                HALO,
                HALO + INTERIOR,
                HALO,
                left,
                &[],
                &p.actor,
            )
            .unwrap();
        let f = rt
            .enqueue_win_fence(&win, false, &[e1.clone(), e2.clone()], &p.actor)
            .unwrap();
        e1.wait_result(&p.actor).unwrap();
        e2.wait_result(&p.actor).unwrap();
        f.wait_result(&p.actor).unwrap();
        rt.window_to_buffer(&win, 0, FIELD).unwrap();
        let field = buf.load(0, FIELD).unwrap();
        rt.shutdown(&p.actor);
        field
    };
    let two_sided = move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cxl_pod());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(FIELD);
        buf.store(0, &field_seed(p.rank())).unwrap();
        let right = (p.rank() + 1) % world;
        let left = (p.rank() + world - 1) % world;
        let es1 = rt
            .enqueue_send_buffer(
                &q,
                &buf,
                false,
                HALO + INTERIOR - HALO,
                HALO,
                right,
                1,
                &[],
                &p.actor,
            )
            .unwrap();
        let es2 = rt
            .enqueue_send_buffer(&q, &buf, false, HALO, HALO, left, 2, &[], &p.actor)
            .unwrap();
        let er1 = rt
            .enqueue_recv_buffer(&q, &buf, false, 0, HALO, left, 1, &[], &p.actor)
            .unwrap();
        let er2 = rt
            .enqueue_recv_buffer(
                &q,
                &buf,
                false,
                HALO + INTERIOR,
                HALO,
                right,
                2,
                &[],
                &p.actor,
            )
            .unwrap();
        for e in [es1, es2, er1, er2] {
            e.wait_result(&p.actor).unwrap();
        }
        let field = buf.load(0, FIELD).unwrap();
        rt.shutdown(&p.actor);
        field
    };
    let sys = SystemConfig::cxl_pod();
    let a = run_world_faulty_mode(
        sys.cluster.clone(),
        world,
        FaultPlan::none(),
        ExecMode::Threads,
        one_sided,
    );
    let b = run_world_faulty_mode(
        sys.cluster.clone(),
        world,
        FaultPlan::none(),
        ExecMode::Threads,
        two_sided,
    );
    assert_eq!(
        a.outputs, b.outputs,
        "halo-via-Put must match the two-sided exchange bitwise"
    );
    for (r, field) in a.outputs.iter().enumerate() {
        let right = (r + 1) % world;
        let left = (r + world - 1) % world;
        let lf = field_seed(left);
        let rf = field_seed(right);
        assert_eq!(&field[..HALO], &lf[INTERIOR..HALO + INTERIOR], "left ghost");
        assert_eq!(
            &field[HALO + INTERIOR..],
            &rf[HALO..2 * HALO],
            "right ghost"
        );
        assert_eq!(
            &field[HALO..HALO + INTERIOR],
            &field_seed(r)[HALO..HALO + INTERIOR],
            "interior untouched"
        );
    }
}

// ---------------------------------------------------------------------
// Epoch properties
// ---------------------------------------------------------------------

const PROP_BUF: usize = 8192;

/// One seeded random epoch schedule: every rank derives the same global
/// plan, executes its own slice, and closes each epoch with a collective
/// fence. All parameters are in range, so every op and fence must settle
/// `Ok` — and the whole run must be reproducible across exec cores.
fn epoch_schedule_fingerprint(mode: ExecMode, seed: u64) -> (u64, SimNs) {
    let world = 4;
    let res = run_world_faulty_mode(
        SystemConfig::cxl_pod().cluster.clone(),
        world,
        FaultPlan::none(),
        mode,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::cxl_pod());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(PROP_BUF);
            buf.store(0, &seed_bytes(p.rank())).unwrap();
            let win = rt.expose_buffer_as_window(&buf, WIN, &p.actor).unwrap();
            let mut rng = XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
            let epochs = 2 + (rng.next_u64() % 3) as usize;
            for _ in 0..epochs {
                // The full world's plan, derived identically everywhere;
                // each rank executes only its own ops.
                let mut events = Vec::new();
                for r in 0..world {
                    let nops = (rng.next_u64() % 4) as usize;
                    for slot in 0..nops {
                        let kind = rng.next_u64() % 3;
                        let target = (rng.next_u64() as usize) % world;
                        let size = 8 * (1 + (rng.next_u64() as usize) % 32); // 8..=256
                        let win_off = 8 * ((rng.next_u64() as usize) % ((WIN - size) / 8));
                        if r != p.rank() {
                            continue;
                        }
                        let e = match kind {
                            0 => {
                                let data: Vec<u8> =
                                    (0..size).map(|i| (seed as u8) ^ (i as u8)).collect();
                                buf.store(PUT_SCRATCH + slot * 512, &data).unwrap();
                                rt.enqueue_put_buffer(
                                    &q,
                                    &win,
                                    false,
                                    PUT_SCRATCH + slot * 512,
                                    win_off,
                                    size,
                                    target,
                                    &[],
                                    &p.actor,
                                )
                            }
                            1 => rt.enqueue_get_buffer(
                                &q,
                                &win,
                                false,
                                4096 + slot * 512,
                                win_off,
                                size,
                                target,
                                &[],
                                &p.actor,
                            ),
                            _ => {
                                let vals: Vec<f64> =
                                    (0..size / 8).map(|i| (i % 7) as f64).collect();
                                buf.store(6144 + slot * 512, f64_as_bytes(&vals)).unwrap();
                                rt.enqueue_accumulate_buffer(
                                    &q,
                                    &win,
                                    false,
                                    6144 + slot * 512,
                                    win_off,
                                    size,
                                    target,
                                    ReduceOp::Sum,
                                    &[],
                                    &p.actor,
                                )
                            }
                        }
                        .expect("in-range op enqueues");
                        events.push(e);
                    }
                }
                let f = rt
                    .enqueue_win_fence(&win, false, &events, &p.actor)
                    .unwrap();
                for e in &events {
                    e.wait_result(&p.actor).expect("in-range op settles Ok");
                }
                f.wait_result(&p.actor).expect("fence settles Ok");
            }
            rt.shutdown(&p.actor);
        },
    );
    (ObsSummary::from_trace(&res.trace).hash(), res.elapsed_ns)
}

/// 16-seed thread-vs-event matrix over random epoch schedules: identical
/// fingerprints and makespans, no hangs, no spurious errors.
#[test]
fn random_epoch_schedules_fingerprint_matrix() {
    for seed in 0..16u64 {
        let t = epoch_schedule_fingerprint(ExecMode::Threads, seed);
        let e = epoch_schedule_fingerprint(ExecMode::Events, seed);
        assert_eq!(t, e, "epoch schedule diverges at seed={seed}");
    }
}

/// Epoch misuse returns the documented `MpiError`s — it never hangs and
/// never panics.
#[test]
fn epoch_misuse_returns_documented_errors() {
    let res = run_world_faulty_mode(
        SystemConfig::cxl_pod().cluster.clone(),
        2,
        FaultPlan::none(),
        ExecMode::Threads,
        |p: Process| {
            let w = Win::create(&p.comm, &p.actor, 256).unwrap();
            // No epoch open yet: access is refused.
            assert!(matches!(
                w.put(1 - p.rank(), 0, &[1u8; 8]),
                Err(MpiError::RmaNoEpoch { .. })
            ));
            // Rank out of range beats the epoch check.
            assert!(matches!(
                w.put(9, 0, &[1u8; 8]),
                Err(MpiError::RankOutOfRange { .. })
            ));
            w.fence(&p.actor).unwrap();
            // Out-of-range window access inside an open epoch.
            assert!(matches!(
                w.put(1 - p.rank(), 250, &[1u8; 8]),
                Err(MpiError::RmaOutOfRange { .. })
            ));
            // Unaligned accumulate.
            assert!(matches!(
                w.accumulate(1 - p.rank(), 0, &[1u8; 7], ReduceOp::Sum),
                Err(MpiError::Truncated { .. })
            ));
            // Nested lock of one target; unlock of an unheld target.
            w.lock(&p.actor, 1 - p.rank()).unwrap();
            assert!(matches!(
                w.lock_request(1 - p.rank()),
                Err(MpiError::RmaAlreadyLocked { .. })
            ));
            w.unlock(&p.actor, 1 - p.rank()).unwrap();
            assert!(matches!(
                w.unlock(&p.actor, 1 - p.rank()),
                Err(MpiError::RmaNotLocked { .. })
            ));
            w.fence(&p.actor).unwrap();
            p.rank()
        },
    );
    assert_eq!(res.outputs.len(), 2);
}

/// Passive-target lock/put/unlock epochs compose with runtime windows:
/// each rank locks its right neighbor, puts its tile, and unlocks; after
/// a barrier every segment holds exactly its left neighbor's tile.
#[test]
fn passive_target_lock_epochs_deliver() {
    let world = 4;
    for mode in [ExecMode::Threads, ExecMode::Events] {
        let res = run_world_faulty_mode(
            SystemConfig::cxl_pod().cluster.clone(),
            world,
            FaultPlan::none(),
            mode,
            move |p: Process| {
                let rt = ClMpi::new(&p, SystemConfig::cxl_pod());
                let buf = rt.context().create_buffer(WIN);
                buf.store(0, &vec![0u8; WIN]).unwrap();
                let win = rt.expose_buffer_as_window(&buf, WIN, &p.actor).unwrap();
                let right = (p.rank() + 1) % world;
                let w = win.win();
                w.lock(&p.actor, right).unwrap();
                let h = w
                    .put(right, p.rank() * 64, &put_payload(p.rank())[..64])
                    .unwrap();
                w.unlock(&p.actor, right).unwrap();
                assert!(h.settled(), "unlock settles every op to the target");
                p.comm.barrier(&p.actor);
                let seg = w.read_local();
                rt.shutdown(&p.actor);
                seg
            },
        );
        for (r, seg) in res.outputs.iter().enumerate() {
            let left = (r + world - 1) % world;
            assert_eq!(
                &seg[left * 64..left * 64 + 64],
                &put_payload(left)[..64],
                "mode {mode:?}: rank {r} must hold its left neighbor's tile"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fault matrix
// ---------------------------------------------------------------------

/// Heavy data-plane drops (scoped to the RMA tag plane) on the NIC
/// route: every one-sided transfer retransmits to completion, the drops
/// and retries are observable, and the delivered bytes are intact.
#[test]
fn lossy_nic_rma_retransmits_and_completes() {
    let plan = FaultPlan::drops(1311, 0.50).with_tag_floor(RMA_TAG_BASE);
    let size = 256 << 10;
    let slice = size / 8; // eight puts → many independent drop rolls
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        2,
        plan,
        ExecMode::Threads,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(size);
            let win = rt.expose_buffer_as_window(&buf, size, &p.actor).unwrap();
            if p.rank() == 0 {
                buf.store(0, &vec![0xA5u8; size]).unwrap();
                for i in 0..8 {
                    let e = rt
                        .enqueue_put_buffer(
                            &q,
                            &win,
                            false,
                            i * slice,
                            i * slice,
                            slice,
                            1,
                            &[],
                            &p.actor,
                        )
                        .unwrap();
                    e.wait_result(&p.actor)
                        .expect("put must retransmit through 50% loss");
                }
            }
            let f = rt.enqueue_win_fence(&win, false, &[], &p.actor).unwrap();
            f.wait_result(&p.actor).expect("fence after lossy epoch");
            let seg = win.win().read_local();
            rt.shutdown(&p.actor);
            seg
        },
    );
    assert_eq!(
        res.outputs[1],
        vec![0xA5u8; size],
        "payload must arrive intact"
    );
    assert!(
        res.fault_counts.dropped() > 0,
        "the plan must actually have dropped RMA transfers"
    );
    let s = ObsSummary::from_trace(&res.trace);
    let r0 = s.ranks[&0];
    assert!(r0.chunk_drops > 0, "drops must be visible in the summary");
    assert!(
        r0.chunk_retries > 0,
        "retries must be visible in the summary"
    );
    assert_eq!(
        r0.rma_bytes, size as u64,
        "delivered put bytes counted once"
    );
}

/// A node death mid-epoch: the in-flight put fails its event with
/// `CL_MPI_TRANSFER_ERROR` (−1100), commands gated on it are poisoned
/// with −14, the closing fence reports the latched epoch error, and the
/// world quiesces instead of hanging.
#[test]
fn node_down_mid_epoch_poisons_dependents_and_quiesces() {
    let t_kill: SimNs = 1_000_000;
    let plan = FaultPlan::none().with_node_down(2, t_kill);
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        3,
        plan,
        ExecMode::Threads,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(64 << 10);
            let win = rt
                .expose_buffer_as_window(&buf, 64 << 10, &p.actor)
                .unwrap();
            // Pad past the scheduled death so the epoch is provably open
            // when the fabric loses node 2.
            q.enqueue_kernel("pad", 2 * t_kill, &[], || {})
                .wait(&p.actor);
            let codes = if p.rank() != 2 {
                let e = rt
                    .enqueue_put_buffer(&q, &win, false, 0, 0, 64 << 10, 2, &[], &p.actor)
                    .unwrap();
                let dep = q.enqueue_kernel("after-put", 1_000, std::slice::from_ref(&e), || {});
                let f = rt.enqueue_win_fence(&win, false, &[], &p.actor).unwrap();
                e.wait(&p.actor);
                dep.wait(&p.actor);
                f.wait(&p.actor);
                (e.error_code(), dep.error_code(), f.error_code())
            } else {
                let f = rt.enqueue_win_fence(&win, false, &[], &p.actor).unwrap();
                f.wait(&p.actor);
                (None, None, f.error_code())
            };
            let failed = rt.failed_ranks(p.actor.now_ns());
            rt.shutdown(&p.actor);
            (codes, failed)
        },
    );
    for r in [0usize, 1] {
        let ((put, dep, fence), failed) = &res.outputs[r];
        assert_eq!(
            *put,
            Some(CL_MPI_TRANSFER_ERROR),
            "rank {r} put fails −1100"
        );
        assert_eq!(
            *dep,
            Some(EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST),
            "rank {r} dependent poisoned −14"
        );
        assert_eq!(
            *fence,
            Some(CL_MPI_TRANSFER_ERROR),
            "rank {r} fence reports the latched epoch error"
        );
        assert_eq!(failed, &vec![2], "rank {r} records the dead peer");
    }
}

/// Recovery with a window in flight: survivors classify the stall as a
/// process failure, notify, revoke and shrink, then open a fresh window
/// on the survivor communicator and complete a ring of puts on it. The
/// abandoned window (with its failed epoch) is simply dropped.
#[test]
fn rma_epoch_recovers_via_classify_revoke_shrink() {
    let t_kill: SimNs = 1_000_000;
    const PATIENCE: SimNs = 5_000_000_000;
    let plan = FaultPlan::none().with_node_down(3, t_kill);
    let world = 4;
    let res = run_world_faulty_mode(
        SystemConfig::ricc().cluster.clone(),
        world,
        plan,
        ExecMode::Threads,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(WIN);
            let win = rt.expose_buffer_as_window(&buf, WIN, &p.actor).unwrap();
            q.enqueue_kernel("pad", 2 * t_kill, &[], || {})
                .wait(&p.actor);
            if p.comm.world().node_down_at(p.rank(), p.actor.now_ns()) {
                rt.shutdown(&p.actor);
                return Vec::new(); // the victim exits
            }
            // A window op in flight toward the dead rank.
            let e = rt
                .enqueue_put_buffer(&q, &win, false, 0, 0, 256, 3, &[], &p.actor)
                .unwrap();
            assert!(e.wait_result(&p.actor).is_err(), "put to a dead rank fails");
            // Classify the failure against the fault plan, then recover.
            let classified =
                p.comm
                    .classify_peer_error(3, p.actor.now_ns(), MpiError::Timeout { waited_ns: 0 });
            assert!(matches!(classified, MpiError::ProcFailed { rank: 3 }));
            for r in rt.failed_ranks(p.actor.now_ns()) {
                rt.notify_proc_failure(r);
            }
            rt.revoke();
            let sub = rt
                .shrink_comm(&p.actor, PATIENCE)
                .expect("survivors agree on the shrunken communicator");
            rt.shutdown(&p.actor);
            // A fresh window over the survivor communicator must work.
            let rt2 = ClMpi::with_comm(sub, SystemConfig::ricc());
            let q2 = rt2.context().create_queue(0, format!("r{}b", p.rank()));
            let buf2 = rt2.context().create_buffer(WIN);
            buf2.store(0, &vec![0u8; WIN]).unwrap();
            let win2 = rt2.expose_buffer_as_window(&buf2, WIN, &p.actor).unwrap();
            let n = rt2.comm().size();
            let me = rt2.comm().rank();
            let right = (me + 1) % n;
            buf2.store(PUT_SCRATCH.min(WIN - 64), &put_payload(me)[..64])
                .unwrap();
            let e2 = rt2
                .enqueue_put_buffer(
                    &q2,
                    &win2,
                    false,
                    PUT_SCRATCH.min(WIN - 64),
                    me * 64,
                    64,
                    right,
                    &[],
                    &p.actor,
                )
                .unwrap();
            let f2 = rt2
                .enqueue_win_fence(&win2, false, std::slice::from_ref(&e2), &p.actor)
                .unwrap();
            e2.wait_result(&p.actor).expect("put on survivors succeeds");
            f2.wait_result(&p.actor)
                .expect("fence on survivors succeeds");
            let seg = win2.win().read_local();
            rt2.shutdown(&p.actor);
            seg
        },
    );
    let survivors: Vec<&Vec<u8>> = res.outputs.iter().filter(|o| !o.is_empty()).collect();
    assert_eq!(survivors.len(), 3, "three survivors recover");
    for (sr, seg) in survivors.iter().enumerate() {
        let left = (sr + 2) % 3;
        assert_eq!(
            &seg[left * 64..left * 64 + 64],
            &put_payload(left)[..64],
            "survivor {sr} holds its left neighbor's tile on the new window"
        );
    }
}
