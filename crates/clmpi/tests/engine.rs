//! Integration tests for the progress engine: event-DAG ordering across
//! CL events and MPI requests, failure poisoning through the DAG, and
//! determinism of virtual-time outcomes across repeated lossy runs.

use clmpi::{data_plane_faults, ClMpi, RetryPolicy, SystemConfig, TransferStrategy};
use minicl::{CL_MPI_TRANSFER_ERROR, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST};
use minimpi::{run_world_faulty, run_world_sized, FaultPlan, Process};
use simtime::XorShift64;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// A diamond DAG mixing both dependency kinds the engine multiplexes:
///
/// ```text
///        rank 0                      rank 1
///   kernel K ──┬─► send #1 ─────► recv #1 ──┬─► kernel J
///              └─► send #2 ─────► recv #2 ──┤
///   plain MPI isend #7 ─► event_from_request ┘
/// ```
///
/// Kernel J must start only after both device transfers landed *and* the
/// wrapped plain-MPI request completed; all three legs progress on one
/// engine per rank with no host blocking.
#[test]
fn diamond_dag_orders_cl_events_and_mpi_requests() {
    const SIZE: usize = 1 << 20;
    let cluster = SystemConfig::cichlid().cluster.clone();
    let res = run_world_sized(cluster, 2, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::cichlid());
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(2 * SIZE);
        if p.rank() == 0 {
            buf.store(0, &pattern(SIZE, 1)).unwrap();
            buf.store(SIZE, &pattern(SIZE, 2)).unwrap();
            // Top of the diamond: a kernel "producing" both halves.
            let ek = q.enqueue_kernel("produce", 2_000_000, &[], || {});
            let wait = [ek];
            let e1 = rt
                .enqueue_send_buffer(&q, &buf, false, 0, SIZE, 1, 1, &wait, &p.actor)
                .unwrap();
            let e2 = rt
                .enqueue_send_buffer(&q, &buf, false, SIZE, SIZE, 1, 2, &wait, &p.actor)
                .unwrap();
            // Third leg: a plain (non-clMPI) message the receiver wraps
            // into an event.
            p.comm.send(&p.actor, 1, 7, &pattern(64, 3));
            e1.wait(&p.actor);
            e2.wait(&p.actor);
            let produced_at = wait[0].completion_time().expect("kernel completed");
            assert!(
                e1.completion_time().expect("send 1 completed") > produced_at
                    && e2.completion_time().expect("send 2 completed") > produced_at,
                "sends must start only after the producing kernel"
            );
            rt.shutdown(&p.actor);
            (true, 0)
        } else {
            let e1 = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, SIZE, 0, 1, &[], &p.actor)
                .unwrap();
            let e2 = rt
                .enqueue_recv_buffer(&q, &buf, false, SIZE, SIZE, 0, 2, &[], &p.actor)
                .unwrap();
            let req = p.comm.irecv(&p.actor, Some(0), Some(7));
            let (em, outcome) = rt.event_from_request(req);
            // Bottom of the diamond: a kernel gated on all three legs.
            let ej = q.enqueue_kernel(
                "consume",
                1_000_000,
                &[e1.clone(), e2.clone(), em.clone()],
                || {},
            );
            ej.wait(&p.actor);
            for (e, name) in [(&e1, "recv 1"), (&e2, "recv 2"), (&em, "mpi request")] {
                assert!(!e.is_failed(), "{name} must complete");
                assert!(
                    ej.completion_time().expect("kernel completed")
                        >= e.completion_time().unwrap_or_else(|| panic!("{name}")),
                    "consuming kernel must run after {name}"
                );
            }
            assert_eq!(buf.load(0, SIZE).unwrap(), pattern(SIZE, 1));
            assert_eq!(buf.load(SIZE, SIZE).unwrap(), pattern(SIZE, 2));
            let payload = outcome.take().expect("wrapped receive carries payload");
            assert_eq!(payload.data, pattern(64, 3));
            rt.shutdown(&p.actor);
            (true, payload.data.len())
        }
    });
    assert!(res.outputs.iter().all(|&(ok, _)| ok));
    assert_eq!(res.outputs[1].1, 64);
}

/// A transfer that fails permanently (retry budget exhausted on a
/// black-hole fabric) must poison every command gated on its event:
/// the failed transfer reports `CL_MPI_TRANSFER_ERROR`, its dependents
/// `CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST` — transitively.
#[test]
fn permanent_failure_poisons_dependent_commands() {
    let plan = data_plane_faults(FaultPlan::drops(11, 1.0));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            chunk_timeout_ns: 50_000_000,
            ..RetryPolicy::default()
        });
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(1 << 16);
        let codes = if p.rank() == 0 {
            rt.set_forced_strategy(Some(TransferStrategy::Pinned));
            let e1 = rt
                .enqueue_send_buffer(&q, &buf, false, 0, 1 << 16, 1, 1, &[], &p.actor)
                .unwrap();
            let e2 = rt
                .enqueue_send_buffer(
                    &q,
                    &buf,
                    false,
                    0,
                    1 << 16,
                    1,
                    2,
                    std::slice::from_ref(&e1),
                    &p.actor,
                )
                .unwrap();
            let e3 = rt
                .enqueue_send_buffer(
                    &q,
                    &buf,
                    false,
                    0,
                    1 << 16,
                    1,
                    3,
                    std::slice::from_ref(&e2),
                    &p.actor,
                )
                .unwrap();
            e3.wait(&p.actor);
            (e1.error_code(), e2.error_code(), e3.error_code())
        } else {
            (None, None, None)
        };
        rt.shutdown(&p.actor);
        codes
    });
    let (c1, c2, c3) = res.outputs[0];
    assert_eq!(c1, Some(CL_MPI_TRANSFER_ERROR), "root failure is -1100");
    assert_eq!(
        c2,
        Some(EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST),
        "direct dependent is poisoned with -14"
    );
    assert_eq!(
        c3,
        Some(EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST),
        "poisoning propagates transitively"
    );
}

/// The determinism claim of the engine design: virtual-time outcomes
/// (final elapsed time, payload integrity, retry-shaped completion
/// times) depend only on the seeded fault plan, never on host-thread
/// interleaving. Sixteen seeds, each run twice; both runs must agree
/// exactly.
#[test]
fn lossy_runs_are_deterministic_across_reruns() {
    const SIZE: usize = 1 << 18;
    let run = |seed: u64| {
        let plan = data_plane_faults(FaultPlan::drops(seed, 0.05));
        let cluster = SystemConfig::ricc().cluster.clone();
        let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 16)));
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(SIZE);
            let digest = if p.rank() == 0 {
                buf.store(0, &pattern(SIZE, seed ^ 0xabc)).unwrap();
                let e = rt
                    .enqueue_send_buffer(&q, &buf, false, 0, SIZE, 1, 1, &[], &p.actor)
                    .unwrap();
                // A host-side leg races the device-side one on the same
                // engine.
                let hreq = rt.isend_cl(&p.actor, 1, 2, &pattern(1 << 12, seed));
                e.wait(&p.actor);
                hreq.wait(&p.actor);
                e.completion_time().unwrap_or(0)
            } else {
                let e = rt
                    .enqueue_recv_buffer(&q, &buf, false, 0, SIZE, 0, 1, &[], &p.actor)
                    .unwrap();
                let hreq = rt.irecv_cl(&p.actor, 0, 2, 1 << 12);
                e.wait(&p.actor);
                hreq.event.wait(&p.actor);
                let body = buf.load(0, SIZE).unwrap();
                let host = hreq.data.read(|h| h.as_slice().to_vec());
                assert_eq!(body, pattern(SIZE, seed ^ 0xabc));
                assert_eq!(host, pattern(1 << 12, seed));
                e.completion_time().unwrap_or(0)
            };
            rt.shutdown(&p.actor);
            digest
        });
        (
            res.elapsed_ns,
            res.outputs.clone(),
            res.fault_counts.dropped(),
        )
    };
    for seed in 0..16u64 {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(
            a, b,
            "seed {seed}: two runs of the same world must agree exactly"
        );
    }
}
