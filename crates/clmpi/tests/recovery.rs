//! Rank-failure recovery suite for the clMPI runtime: the 16-run
//! re-route matrix (every victim rank at worlds 3/5/8 — survivors
//! shrink and every collective algorithm still delivers on the dense
//! survivor communicator), the poison-not-hang guarantee for
//! collectives issued on a communicator with a dead member, and a
//! 16-seed × 2-run determinism matrix over a full
//! fail → shrink → resume scenario on a lossy fabric.

use clmpi::{data_plane_faults, ClMpi, CollAlgo, ObsSummary, ReduceOp, SystemConfig};
use minimpi::{run_world_faulty, FaultPlan, Process};
use simtime::{SimNs, XorShift64};

const ALGOS: [CollAlgo; 3] = [CollAlgo::Flat, CollAlgo::Tree, CollAlgo::Ring];

/// Agreement patience for shrink after a plan-scheduled kill (virtual).
/// Must exceed the collective chunk deadline (1 s): the slowest survivor
/// may wait out a full deadline before it notices the failure.
const PATIENCE: SimNs = 5_000_000_000;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

// ----------------------------------------------------------------------
// Re-route matrix: every victim, hostile world sizes
// ----------------------------------------------------------------------

/// Kill each rank of worlds 3, 5 and 8 in turn (16 runs). The survivors
/// shrink the world communicator, rebuild a runtime on the dense
/// survivor communicator, and every broadcast algorithm plus the ring
/// allreduce must deliver byte-exact payloads there — the collective
/// topologies are computed from communicator-local ranks, so they
/// re-route around the hole automatically.
#[test]
fn collectives_reroute_on_shrunken_comm_for_every_victim() {
    const SIZE: usize = 4109; // uneven: 5 chunks of 1024, last one short
    const CHUNK: usize = 1024;
    const COUNT: usize = 37; // allreduce f64 cells
    for world in [3usize, 5, 8] {
        for victim in 0..world {
            let plan = FaultPlan::none().with_node_down(victim, 0);
            let res = run_world_faulty(
                SystemConfig::ricc().cluster.clone(),
                world,
                plan,
                move |p: Process| {
                    if p.comm.world().node_down_at(p.rank(), 0) {
                        return 0usize; // the victim never participates
                    }
                    let sub = p
                        .comm
                        .shrink(&p.actor, PATIENCE)
                        .expect("survivors agree on the shrunken communicator");
                    assert_eq!(sub.size(), world - 1);
                    let rt = ClMpi::with_comm(sub.clone(), SystemConfig::ricc());
                    let q = rt.context().create_queue(0, format!("r{}", p.rank()));
                    // Broadcast: every algorithm, root 0 of the survivors.
                    let buf = rt.context().create_buffer(SIZE);
                    for (ai, algo) in ALGOS.into_iter().enumerate() {
                        let want = pattern(SIZE, 7000 + (world * 31 + victim * 7 + ai) as u64);
                        buf.store(0, &vec![0u8; SIZE]).unwrap();
                        if sub.rank() == 0 {
                            buf.store(0, &want).unwrap();
                        }
                        let e = rt
                            .enqueue_bcast_buffer_as(
                                &q,
                                &buf,
                                0,
                                SIZE,
                                0,
                                ai as i32,
                                algo,
                                CHUNK,
                                &[],
                                &p.actor,
                            )
                            .unwrap();
                        e.wait_result(&p.actor).unwrap_or_else(|err| {
                            panic!(
                                "{algo:?} on shrunk comm (world {world}, victim {victim}): {err:?}"
                            )
                        });
                        assert_eq!(
                            buf.load(0, SIZE).unwrap(),
                            want,
                            "{algo:?} world {world} victim {victim} sub-rank {}",
                            sub.rank()
                        );
                    }
                    // Ring allreduce over the survivors.
                    let vals: Vec<f64> = (0..COUNT)
                        .map(|i| (sub.rank() + 1) as f64 * (i + 1) as f64)
                        .collect();
                    let abuf = rt.context().create_buffer(COUNT * 8);
                    abuf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                        .unwrap();
                    let e = rt
                        .enqueue_allreduce_buffer(
                            &q,
                            &abuf,
                            0,
                            COUNT,
                            ReduceOp::Sum,
                            5,
                            &[],
                            &p.actor,
                        )
                        .unwrap();
                    e.wait_result(&p.actor).expect("allreduce on shrunk comm");
                    let n = sub.size() as f64;
                    let got = minimpi::datatype::bytes_to_f64(&abuf.load(0, COUNT * 8).unwrap());
                    for (i, g) in got.iter().enumerate() {
                        let want = n * (n + 1.0) / 2.0 * (i + 1) as f64;
                        assert!(
                            (g - want).abs() < 1e-9,
                            "allreduce cell {i}: {g} vs {want} (world {world}, victim {victim})"
                        );
                    }
                    rt.shutdown(&p.actor);
                    1usize
                },
            );
            assert_eq!(
                res.outputs.iter().sum::<usize>(),
                world - 1,
                "world {world} victim {victim}: every survivor verified"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Poison, never hang
// ----------------------------------------------------------------------

/// Collectives issued on a communicator with a dead member must settle
/// every event as failed within bounded virtual time — no hang, and the
/// engine drains cleanly afterwards.
#[test]
fn world_collectives_poison_not_hang_with_dead_member() {
    const SIZE: usize = 8192;
    let plan = FaultPlan::none().with_node_down(2, 0);
    let res = run_world_faulty(
        SystemConfig::ricc().cluster.clone(),
        4,
        plan,
        move |p: Process| {
            if p.comm.world().node_down_at(p.rank(), 0) {
                return (0u64, 0u64);
            }
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            let stats = rt.enable_stats();
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let buf = rt.context().create_buffer(SIZE);
            buf.store(0, &pattern(SIZE, 99)).unwrap();
            let eb = rt
                .enqueue_bcast_buffer(&q, &buf, 0, SIZE, 0, 1, &[], &p.actor)
                .unwrap();
            let ea = rt
                .enqueue_allreduce_buffer(&q, &buf, 0, SIZE / 8, ReduceOp::Sum, 2, &[], &p.actor)
                .unwrap();
            eb.wait(&p.actor);
            ea.wait(&p.actor);
            assert!(
                eb.is_failed() || ea.is_failed(),
                "rank {}: a collective touching the dead rank must poison",
                p.rank()
            );
            // The engine drains: no machine leaks waiting on the dead rank.
            rt.shutdown(&p.actor);
            (stats.faults().proc_failures, 1)
        },
    );
    let (failures, survivors): (u64, u64) = res
        .outputs
        .iter()
        .fold((0, 0), |(f, s), o| (f + o.0, s + o.1));
    assert_eq!(survivors, 3);
    assert!(
        failures > 0,
        "at least one survivor classified the dead peer (got {failures})"
    );
}

// ----------------------------------------------------------------------
// Determinism matrix
// ----------------------------------------------------------------------

/// One full recovery scenario on a lossy fabric: iterated allreduces on
/// the world communicator until the scheduled kill poisons one, then
/// notify → revoke → shrink → rebuild → two more allreduces on the
/// survivor communicator. Returns the run's observability fingerprint.
fn recovery_fingerprint(seed: u64, t_kill: SimNs) -> (u64, bool) {
    const COUNT: usize = 512;
    let plan = data_plane_faults(FaultPlan::drops(seed, 0.02)).with_node_down(3, t_kill);
    let res = run_world_faulty(
        SystemConfig::ricc().cluster.clone(),
        4,
        plan,
        move |p: Process| {
            let rt = ClMpi::new(&p, SystemConfig::ricc());
            rt.enable_stats();
            let q = rt.context().create_queue(0, format!("r{}", p.rank()));
            let vals: Vec<f64> = (0..COUNT).map(|i| (p.rank() + i) as f64).collect();
            let buf = rt.context().create_buffer(COUNT * 8);
            let mut failed = false;
            for _ in 0..8 {
                buf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                    .unwrap();
                let e = rt
                    .enqueue_allreduce_buffer(&q, &buf, 0, COUNT, ReduceOp::Sum, 4, &[], &p.actor)
                    .unwrap();
                if e.wait_result(&p.actor).is_err() {
                    failed = true;
                    break;
                }
            }
            rt.shutdown(&p.actor);
            if p.comm.world().node_down_at(p.rank(), p.actor.now_ns()) {
                return false; // the victim exits
            }
            // Completion agreement: a kill inside the *last* allreduce
            // can leave one survivor clean while the rest fail, so
            // whether to recover must itself be agreed on.
            let clean = p
                .comm
                .agree(&p.actor, u64::from(!failed), PATIENCE)
                .expect("completion agreement");
            if clean == 0 {
                for r in rt.failed_ranks(p.actor.now_ns()) {
                    rt.notify_proc_failure(r);
                }
                rt.revoke();
                let sub = rt
                    .shrink_comm(&p.actor, PATIENCE)
                    .expect("survivors agree on the shrunken communicator");
                let rt2 = ClMpi::with_comm(sub, SystemConfig::ricc());
                rt2.enable_stats();
                let q2 = rt2.context().create_queue(0, format!("r{}b", p.rank()));
                for _ in 0..2 {
                    buf.store(0, minimpi::datatype::f64_as_bytes(&vals))
                        .unwrap();
                    let e = rt2
                        .enqueue_allreduce_buffer(
                            &q2,
                            &buf,
                            0,
                            COUNT,
                            ReduceOp::Sum,
                            4,
                            &[],
                            &p.actor,
                        )
                        .unwrap();
                    e.wait_result(&p.actor)
                        .expect("allreduce on the survivor communicator");
                }
                rt2.shutdown(&p.actor);
            }
            clean == 0
        },
    );
    let recovered = res.outputs.iter().any(|&f| f);
    (ObsSummary::from_trace(&res.trace).hash(), recovered)
}

/// 16 seeds × 2 runs: the whole kill-shrink-resume scenario — lossy
/// data plane included — must produce a byte-identical observability
/// summary on repetition. This is the repo's recovery determinism gate.
#[test]
fn recovery_scenario_fingerprint_is_deterministic_across_16_seeds() {
    let mut recovered_runs = 0;
    for seed in 0..16u64 {
        // Mid-run kill: late enough that the world communicator is busy,
        // early enough that iterations remain to resume.
        let t_kill = 2_000_000 + seed * 250_000;
        let (a, ra) = recovery_fingerprint(seed, t_kill);
        let (b, rb) = recovery_fingerprint(seed, t_kill);
        assert_eq!(a, b, "seed {seed}: fingerprint differs across reruns");
        assert_eq!(
            ra, rb,
            "seed {seed}: recovery outcome differs across reruns"
        );
        recovered_runs += usize::from(ra);
    }
    assert!(
        recovered_runs > 0,
        "at least some kills must land mid-run and exercise recovery"
    );
}
