//! Integration tests for the structured observability pipeline: Chrome
//! trace export (lanes + causal send/recv flow links), byte-identical
//! deterministic exports across same-seed runs, live counters, and the
//! adaptive probe-starvation regression under fault injection.

use clmpi::{
    data_plane_faults, obs, AdaptiveSelector, ClMpi, ObsSummary, RetryPolicy, SystemConfig,
    TransferStrategy,
};
use minimpi::{run_world_faulty, FaultPlan, Process, WorldResult};
use simtime::XorShift64;
use std::sync::Arc;

fn pattern(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift64::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// One traced 2-rank workload: a kernel on each rank's GPU lane, then a
/// pipelined device→device transfer under a mildly lossy fabric — enough
/// structure to exercise host/dev/net tracks, compute overlap, and the
/// drop/retry child spans.
fn traced_exchange(seed: u64) -> WorldResult<u64> {
    let size = 256 << 10;
    let plan = data_plane_faults(FaultPlan::drops(seed, 0.05));
    let cluster = SystemConfig::ricc().cluster.clone();
    run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        rt.set_forced_strategy(Some(TransferStrategy::Pipelined(1 << 16)));
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        q.set_trace(p.comm.world().trace().clone(), format!("r{}.gpu", p.rank()));
        let buf = rt.context().create_buffer(size);
        let k = q.enqueue_kernel("compute", 400_000, &[], || {});
        if p.rank() == 0 {
            buf.store(0, &pattern(size, seed)).unwrap();
            let e = rt
                .enqueue_send_buffer(&q, &buf, false, 0, size, 1, 4, &[k], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed());
        } else {
            let e = rt
                .enqueue_recv_buffer(&q, &buf, false, 0, size, 0, 4, &[k], &p.actor)
                .unwrap();
            e.wait(&p.actor);
            assert!(!e.is_failed());
            assert_eq!(buf.load(0, size).unwrap(), pattern(size, seed));
        }
        rt.shutdown(&p.actor);
        let c = rt.obs_counters();
        assert_eq!(c.submitted, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.failed, 0);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.max_in_flight, 1);
        p.actor.now_ns()
    })
}

/// The generated Chrome trace validates as JSON and contains the host,
/// device, and net lanes with causally-linked send/recv op spans.
#[test]
fn chrome_trace_has_linked_host_dev_net_lanes() {
    let res = traced_exchange(42);
    assert_eq!(res.trace.reversed_spans(), 0, "no causality bugs");

    let json = obs::chrome_trace(&res.trace);
    obs::validate_json(&json).expect("chrome trace is well-formed JSON");

    // ≥3 structured lanes per the acceptance criteria: host (op
    // envelopes), device (staging hops), net (wire chunks) — plus the
    // legacy compute/comm lanes.
    for lane in ["r0.host", "r0.dev", "r0.net", "r1.host", "r0.gpu"] {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"{lane}\"}}")),
            "missing lane {lane}"
        );
    }
    // The send op envelope and its matched receive, linked by a flow pair.
    assert!(json.contains("\"cat\":\"op.send\""));
    assert!(json.contains("\"cat\":\"op.recv\""));
    assert!(json.contains("\"cat\":\"stage.d2h\""));
    assert!(json.contains("\"cat\":\"chunk\""));
    assert!(json.contains("\"ph\":\"s\""), "flow start event present");
    assert!(json.contains("\"ph\":\"f\""), "flow finish event present");

    // Child spans carry their causal parent link.
    let ops = res.trace.ops();
    let send = ops
        .iter()
        .find(|o| o.cat == "op.send")
        .expect("send envelope recorded");
    assert!(
        ops.iter()
            .any(|o| o.parent == Some(send.id) && o.cat == "chunk"),
        "wire chunks are children of the send op"
    );
    assert!(send.peer == Some(1) && send.tag.is_some() && send.ok);

    // The summary sees both ranks and a meaningful overlap window.
    let summary = ObsSummary::from_trace(&res.trace);
    assert_eq!(summary.ranks.len(), 2);
    assert_eq!(summary.ranks[&0].ops, 1);
    assert_eq!(summary.ranks[&0].bytes_sent, 256 << 10);
    assert_eq!(summary.ranks[&1].bytes_received, 256 << 10);
    assert_eq!(summary.reversed_spans, 0);
    obs::validate_json(&summary.to_json()).expect("summary is well-formed JSON");
    let r0 = &summary.overlap.ranks[0];
    assert!(r0.compute_ns > 0 && r0.comm_ns > 0);
}

/// Same seed → byte-identical exports, run to run: the Chrome trace and
/// the summary JSON compare equal as strings, and a 16-seed loop agrees
/// on the summary hash.
#[test]
fn exports_are_byte_identical_across_same_seed_runs() {
    let a = traced_exchange(7);
    let b = traced_exchange(7);
    assert_eq!(
        obs::chrome_trace(&a.trace),
        obs::chrome_trace(&b.trace),
        "chrome trace must be byte-identical for the same seed"
    );
    assert_eq!(
        ObsSummary::from_trace(&a.trace).to_json(),
        ObsSummary::from_trace(&b.trace).to_json(),
        "summary JSON must be byte-identical for the same seed"
    );

    for seed in 0..16u64 {
        let h1 = ObsSummary::from_trace(&traced_exchange(seed).trace).hash();
        let h2 = ObsSummary::from_trace(&traced_exchange(seed).trace).hash();
        assert_eq!(h1, h2, "summary hash diverged for seed {seed}");
    }
}

/// Regression (adaptive probe starvation): a probe transfer that fails
/// permanently used to never reach `observe()`, so its strategy stayed
/// `pending` forever and `choose()` re-handed the failing candidate
/// indefinitely. With `observe_failure` wired into the engine's failure
/// path, failed probes retire their candidate, and when every candidate
/// fails the class falls back to `candidates[0]`.
#[test]
fn failed_probes_retire_candidates_under_fault_injection() {
    let size = 64 << 10;
    // Total data-plane loss: every probe exhausts its retry budget.
    let plan = data_plane_faults(FaultPlan::drops(99, 1.0));
    let cluster = SystemConfig::ricc().cluster.clone();
    let res = run_world_faulty(cluster, 2, plan, move |p: Process| {
        let rt = ClMpi::new(&p, SystemConfig::ricc());
        let sel = Arc::new(AdaptiveSelector::with_candidates(vec![
            TransferStrategy::Pinned,
            TransferStrategy::Mapped,
        ]));
        rt.set_adaptive(Some(sel.clone()));
        rt.set_retry_policy(RetryPolicy {
            chunk_timeout_ns: 2_000_000,
            ..RetryPolicy::new(2, 10_000)
        });
        let q = rt.context().create_queue(0, format!("r{}", p.rank()));
        let buf = rt.context().create_buffer(size);
        // Two probe rounds: each hands out the next pending candidate;
        // each fails permanently and must retire it. Before the fix this
        // loop would probe Pinned both times and never converge.
        let mut probed = Vec::new();
        for tag in 0..2 {
            let e = if p.rank() == 0 {
                probed.push(sel.choose(size));
                rt.enqueue_send_buffer(&q, &buf, false, 0, size, 1, tag, &[], &p.actor)
                    .unwrap()
            } else {
                rt.enqueue_recv_buffer(&q, &buf, false, 0, size, 0, tag, &[], &p.actor)
                    .unwrap()
            };
            e.wait(&p.actor);
            assert!(e.is_failed(), "total loss must fail the transfer");
        }
        rt.shutdown(&p.actor);
        let c = rt.obs_counters();
        assert_eq!(c.submitted, 2);
        assert_eq!(c.failed, 2);
        assert_eq!(c.completed, 0);
        (
            probed,
            sel.failures_for(size),
            sel.winner_for(size),
            sel.choose(size),
        )
    });
    let (probed, failures, winner, post_choice) = res.outputs[0].clone();
    assert_eq!(
        probed,
        vec![TransferStrategy::Pinned, TransferStrategy::Mapped],
        "the rotation must move past a failed probe instead of starving"
    );
    assert_eq!(
        failures,
        vec![TransferStrategy::Pinned, TransferStrategy::Mapped]
    );
    assert_eq!(
        winner,
        Some(TransferStrategy::Pinned),
        "all candidates failed: fall back to candidates[0]"
    );
    assert_eq!(post_choice, TransferStrategy::Pinned);
    // The failed ops are visible in the structured spans too.
    let failed_sends = res
        .trace
        .ops()
        .iter()
        .filter(|o| o.cat == "op.send" && !o.ok)
        .count();
    assert_eq!(failed_sends, 2);
    assert!(
        res.trace.ops().iter().any(|o| o.cat == "drop"),
        "observed chunk losses appear as drop child spans"
    );
}
