//! Structured observability: spans, counters, overlap accounting, and
//! deterministic exporters.
//!
//! The paper's core claims are *timing* claims — Fig. 4's overlap
//! diagrams and the Himeno win only exist as relationships between host,
//! device, and network activity over time. This module turns the
//! engine's raw activity records ([`simtime::Trace`]: plain Gantt spans
//! plus structured [`OpSpan`]s with stable ids and causal parent links)
//! into machine-readable artifacts:
//!
//! * [`ObsSummary`] — per-rank counters (ops submitted/completed/failed,
//!   queue depth, chunk drops/retries, bytes) and a per-rank
//!   **overlap/idle accounting** pass that computes compute-vs-
//!   communication overlap directly from spans, reproducing Fig. 4
//!   quantitatively. Serialized with [`ObsSummary::to_json`]; fingerprint
//!   with [`ObsSummary::hash`].
//! * [`chrome_trace`] — Chrome `trace_events` JSON, loadable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev): one
//!   process per rank, one thread per lane (`host` / `dev` / `net` /
//!   `gpu*`), `X` duration events for every span, and `s`/`f` flow
//!   events linking each send operation to its matched receive.
//!
//! Everything here is a pure function of the trace contents: two runs
//! with the same seed produce **byte-identical** exports (the repo's
//! determinism tests assert exactly that). No wall clock, no unordered
//! collections, no randomness.

use std::collections::BTreeMap;

use simtime::{OpSpan, SimNs, Trace};

// ----------------------------------------------------------------------
// Stable op ids
// ----------------------------------------------------------------------

/// Bits reserved for per-op child spans (chunks, retries, stages).
const CHILD_BITS: u64 = 16;
/// Bits reserved for the per-rank operation sequence number.
const SEQ_BITS: u64 = 24;

/// Stable id of the `seq`-th operation submitted by `rank`. Ids are
/// allocated per rank from the submission sequence, so the numbering is
/// a pure function of each rank's program order — never of cross-rank
/// thread interleaving.
pub fn op_id(rank: usize, seq: u64) -> u64 {
    ((rank as u64) << (SEQ_BITS + CHILD_BITS)) | ((seq & ((1 << SEQ_BITS) - 1)) << CHILD_BITS)
}

/// Allocator of child-span ids under one operation id. Owned by the
/// operation's state machine, so allocation order is the machine's own
/// step order — deterministic by the engine's FIFO stepping.
#[derive(Debug, Clone, Copy)]
pub struct ChildIds {
    base: u64,
    next: u64,
}

impl ChildIds {
    /// Child-id allocator for the operation `base` (itself from
    /// [`op_id`]).
    pub fn new(base: u64) -> Self {
        ChildIds { base, next: 1 }
    }

    /// The operation's own id.
    pub fn op(&self) -> u64 {
        self.base
    }

    /// Allocate the next child id (saturates inside the op's id block —
    /// a pathological >65k-child op would reuse the last id rather than
    /// collide with a neighbor op).
    pub fn child(&mut self) -> u64 {
        let k = self.next.min((1 << CHILD_BITS) - 1);
        self.next += 1;
        self.base | k
    }
}

// ----------------------------------------------------------------------
// Live per-rank counters
// ----------------------------------------------------------------------

/// Live per-rank operation counters, maintained by the runtime as
/// operations are submitted and settle. Snapshot via
/// [`crate::ClMpi::obs_counters`]. At quiescent points (after
/// `shutdown`) the values are deterministic; mid-run `max_in_flight`
/// may observe either side of a same-instant submit/settle pair, so the
/// exported summary recomputes queue depth from spans instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Operations submitted to the engine (transfer + interop machines).
    pub submitted: u64,
    /// Operations that settled successfully.
    pub completed: u64,
    /// Operations that settled with an error.
    pub failed: u64,
    /// Maximum observed in-flight operation count (queue depth).
    pub max_in_flight: u64,
    /// Payload bytes of successfully completed sends.
    pub bytes_sent: u64,
    /// Payload bytes of successfully completed receives.
    pub bytes_received: u64,
}

impl ObsCounters {
    /// Operations submitted but not yet settled.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed - self.failed
    }

    pub(crate) fn note_submitted(&mut self) {
        self.submitted += 1;
        self.max_in_flight = self.max_in_flight.max(self.in_flight());
    }

    pub(crate) fn note_settled(&mut self, ok: bool, sent: u64, received: u64) {
        if ok {
            self.completed += 1;
            self.bytes_sent += sent;
            self.bytes_received += received;
        } else {
            self.failed += 1;
        }
    }
}

// ----------------------------------------------------------------------
// Lane classification and overlap accounting
// ----------------------------------------------------------------------

/// What a lane's busy time counts as in the overlap accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneClass {
    /// Device compute (`r{N}.gpu*` — kernel executions and queue
    /// commands).
    Compute,
    /// Communication (`r{N}.comm` / `r{N}.net` / `r{N}.dev` — network
    /// injections and PCIe staging hops).
    Comm,
    /// Neither (op envelopes on `r{N}.host`, fault annotations).
    Other,
}

/// Parse `r{N}.{kind}` into the owning rank and the accounting class.
fn classify(lane: &str) -> Option<(u32, LaneClass)> {
    let rest = lane.strip_prefix('r')?;
    let dot = rest.find('.')?;
    let rank: u32 = rest[..dot].parse().ok()?;
    let kind = &rest[dot + 1..];
    let class = if kind.starts_with("gpu") {
        LaneClass::Compute
    } else if kind.starts_with("comm") || kind.starts_with("net") || kind.starts_with("dev") {
        LaneClass::Comm
    } else {
        LaneClass::Other
    };
    Some((rank, class))
}

/// Merge intervals into a disjoint sorted union; returns total length.
fn union_len(intervals: &mut Vec<(SimNs, SimNs)>) -> SimNs {
    intervals.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(SimNs, SimNs)> = None;
    let mut merged = Vec::with_capacity(intervals.len());
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some(done) => {
                total += done.1 - done.0;
                merged.push(done);
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some(done) = cur {
        total += done.1 - done.0;
        merged.push(done);
    }
    *intervals = merged;
    total
}

/// Length of the intersection of two *disjoint sorted* interval lists.
fn intersection_len(a: &[(SimNs, SimNs)], b: &[(SimNs, SimNs)]) -> SimNs {
    let (mut i, mut j, mut total) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Per-rank compute/communication overlap accounting (the quantitative
/// Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankOverlap {
    /// The rank.
    pub rank: u32,
    /// Busy time in compute lanes (union, so stacked kernels count once).
    pub compute_ns: SimNs,
    /// Busy time in communication lanes (union).
    pub comm_ns: SimNs,
    /// Time where compute and communication were busy simultaneously.
    pub overlap_ns: SimNs,
    /// Share of communication hidden under compute:
    /// `100 * overlap / comm` (0 when there was no communication).
    pub hidden_pct: f64,
    /// Time inside the report window where the rank was neither
    /// computing nor communicating.
    pub idle_ns: SimNs,
}

/// The overlap accounting of one run: one row per rank plus the common
/// accounting window.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapReport {
    /// Per-rank rows, ordered by rank.
    pub ranks: Vec<RankOverlap>,
    /// Accounting window `[start, end)` — the earliest span start and
    /// latest span end across all classified lanes.
    pub window: (SimNs, SimNs),
}

impl OverlapReport {
    /// Compute the report from raw `(lane, start, end)` intervals. Lanes
    /// that don't parse as `r{N}.{kind}` and `Other`-class lanes are
    /// ignored.
    pub fn from_intervals<'a, I>(intervals: I) -> OverlapReport
    where
        I: IntoIterator<Item = (&'a str, SimNs, SimNs)>,
    {
        // Per rank: (compute intervals, communication intervals).
        type ClassIntervals = (Vec<(SimNs, SimNs)>, Vec<(SimNs, SimNs)>);
        let mut per_rank: BTreeMap<u32, ClassIntervals> = BTreeMap::new();
        let mut window: Option<(SimNs, SimNs)> = None;
        for (lane, start, end) in intervals {
            let Some((rank, class)) = classify(lane) else {
                continue;
            };
            if class == LaneClass::Other {
                continue;
            }
            let w = window.get_or_insert((start, end));
            w.0 = w.0.min(start);
            w.1 = w.1.max(end);
            let entry = per_rank.entry(rank).or_default();
            match class {
                LaneClass::Compute => entry.0.push((start, end)),
                LaneClass::Comm => entry.1.push((start, end)),
                LaneClass::Other => {}
            }
        }
        let window = window.unwrap_or((0, 0));
        let ranks = per_rank
            .into_iter()
            .map(|(rank, (mut compute, mut comm))| {
                let compute_ns = union_len(&mut compute);
                let comm_ns = union_len(&mut comm);
                let overlap_ns = intersection_len(&compute, &comm);
                let hidden_pct = if comm_ns > 0 {
                    100.0 * overlap_ns as f64 / comm_ns as f64
                } else {
                    0.0
                };
                let mut busy: Vec<(SimNs, SimNs)> =
                    compute.iter().chain(comm.iter()).copied().collect();
                let busy_ns = union_len(&mut busy);
                RankOverlap {
                    rank,
                    compute_ns,
                    comm_ns,
                    overlap_ns,
                    hidden_pct,
                    idle_ns: (window.1 - window.0).saturating_sub(busy_ns),
                }
            })
            .collect();
        OverlapReport { ranks, window }
    }

    /// Compute the report from a trace: plain spans and structured op
    /// spans both contribute (intervals covered by both — e.g. the
    /// legacy `r0.comm` d2h bar and the structured `r0.dev` stage span —
    /// are unioned, never double-counted).
    pub fn from_trace(trace: &Trace) -> OverlapReport {
        let spans = trace.spans();
        let ops = trace.ops();
        Self::from_intervals(
            spans
                .iter()
                .map(|s| (s.lane.as_str(), s.start, s.end))
                .chain(ops.iter().map(|o| (o.track.as_str(), o.start, o.end))),
        )
    }

    /// Render a fixed-width text table (the quantitative Fig. 4).
    pub fn render(&self) -> String {
        let mut out =
            String::from("rank   compute_ms      comm_ms   overlap_ms   hidden%      idle_ms\n");
        let ms = |n: SimNs| n as f64 / 1e6;
        for r in &self.ranks {
            out.push_str(&format!(
                "{:>4}  {:>11.3}  {:>11.3}  {:>11.3}  {:>8.2}  {:>11.3}\n",
                r.rank,
                ms(r.compute_ns),
                ms(r.comm_ns),
                ms(r.overlap_ns),
                r.hidden_pct,
                ms(r.idle_ns),
            ));
        }
        out
    }
}

// ----------------------------------------------------------------------
// Machine-readable summary
// ----------------------------------------------------------------------

/// Per-rank counters derived from the structured span store (a pure
/// function of the trace, unlike the live [`ObsCounters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankSummary {
    /// Top-level operations recorded (`op.*` categories).
    pub ops: u64,
    /// ... of which settled successfully.
    pub ops_ok: u64,
    /// ... of which settled with an error.
    pub ops_failed: u64,
    /// Maximum number of simultaneously in-flight operations (queue
    /// depth), from a sweep over the op envelopes.
    pub max_in_flight: u64,
    /// Wire chunks observed lost by the sender.
    pub chunk_drops: u64,
    /// Retransmissions issued.
    pub chunk_retries: u64,
    /// Payload bytes of successful send-side operations.
    pub bytes_sent: u64,
    /// Payload bytes of successful receive-side operations.
    pub bytes_received: u64,
    /// Payload bytes of successful collective operations (`op.bcast`,
    /// `op.allreduce`, `op.reduce` envelopes). Kept separate from the
    /// point-to-point byte counters: a collective moves each payload byte
    /// across several wire hops, so its envelope bytes are a *logical*
    /// volume, not a wire volume.
    pub coll_bytes: u64,
    /// Payload bytes of successful one-sided operations (`op.put`,
    /// `op.get`, `op.acc` envelopes). Kept apart from the two-sided byte
    /// counters like the collective volume: window traffic bypasses the
    /// matching path, so mixing the totals would hide which transport
    /// carried the bytes.
    pub rma_bytes: u64,
    /// Peer-failure notifications observed (`op.failure` annotations —
    /// dead-peer detections by in-flight machines plus explicit
    /// [`crate::ClMpi::notify_proc_failure`] calls). Recovery
    /// annotations are control-plane records, not operations: they never
    /// count into `ops` / `ops_ok` / `ops_failed` or the queue-depth
    /// sweep.
    pub proc_failures: u64,
    /// Communicator revocations recorded (`op.revoke`).
    pub revokes: u64,
    /// Communicator shrinks recorded (`op.shrink`), successful or not.
    pub shrinks: u64,
    /// Checkpoint restores recorded (`op.restore`), successful or not.
    /// (Checkpoint *writes* are ordinary operations — `op.ckpt` counts
    /// into `ops` — but restores are the recovery path, so they are
    /// tallied here as well as in the op counters.)
    pub restores: u64,
}

/// The compact machine-readable summary of one run: per-rank counters,
/// the overlap accounting, and the trace-health counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSummary {
    /// Per-rank counters, keyed by rank.
    pub ranks: BTreeMap<u32, RankSummary>,
    /// The quantitative Fig. 4.
    pub overlap: OverlapReport,
    /// Spans recorded with reversed endpoints (must be 0; see
    /// [`Trace::reversed_spans`]).
    pub reversed_spans: u64,
    /// Total structured op spans in the trace.
    pub total_ops: u64,
    /// Total plain spans in the trace.
    pub total_spans: u64,
}

impl ObsSummary {
    /// Derive the summary from a trace.
    pub fn from_trace(trace: &Trace) -> ObsSummary {
        let ops = trace.ops();
        let spans = trace.spans();
        let mut ranks: BTreeMap<u32, RankSummary> = BTreeMap::new();
        // Envelope sweep events per rank for queue depth: (t, kind) with
        // ends (0) ordered before starts (1) at equal instants — ops are
        // half-open intervals.
        let mut sweeps: BTreeMap<u32, Vec<(SimNs, u8)>> = BTreeMap::new();
        for o in &ops {
            let r = ranks.entry(o.rank).or_default();
            match o.cat.as_str() {
                "drop" => r.chunk_drops += 1,
                "retry" => r.chunk_retries += 1,
                // Recovery annotations: control-plane records emitted by
                // the runtime without an op submission — tallied apart
                // so `ops` stays reconcilable with the live counters.
                "op.failure" => r.proc_failures += 1,
                "op.revoke" => r.revokes += 1,
                "op.shrink" => r.shrinks += 1,
                cat if cat.starts_with("op.") => {
                    // Restores are real (submitted) operations that are
                    // *also* the recovery path, so they count twice:
                    // once into the op totals below, once here.
                    if cat == "op.restore" {
                        r.restores += 1;
                    }
                    r.ops += 1;
                    if o.ok {
                        r.ops_ok += 1;
                        if cat == "op.send" || cat == "op.isend" {
                            r.bytes_sent += o.bytes;
                        } else if cat == "op.recv" || cat == "op.irecv" {
                            r.bytes_received += o.bytes;
                        } else if cat == "op.bcast" || cat == "op.allreduce" || cat == "op.reduce" {
                            r.coll_bytes += o.bytes;
                        } else if cat == "op.put" || cat == "op.get" || cat == "op.acc" {
                            r.rma_bytes += o.bytes;
                        }
                    } else {
                        r.ops_failed += 1;
                    }
                    // The sweep treats envelopes as half-open [start, end)
                    // intervals (ends sort before starts at equal
                    // instants, so back-to-back ops don't read as
                    // overlapping). A zero-duration envelope — e.g. a
                    // fence that closes at its own submit instant because
                    // every peer already arrived — therefore contributes
                    // no overlap and must be skipped: pushing it would
                    // process its end before its start and underflow the
                    // depth counter.
                    if o.start < o.end {
                        let sweep = sweeps.entry(o.rank).or_default();
                        sweep.push((o.start, 1));
                        sweep.push((o.end, 0));
                    }
                }
                _ => {}
            }
        }
        for (rank, mut events) in sweeps {
            events.sort_unstable();
            let (mut depth, mut max) = (0u64, 0u64);
            for (_, kind) in events {
                if kind == 1 {
                    depth += 1;
                    max = max.max(depth);
                } else {
                    depth -= 1;
                }
            }
            if let Some(r) = ranks.get_mut(&rank) {
                r.max_in_flight = max;
            }
        }
        ObsSummary {
            ranks,
            overlap: OverlapReport::from_trace(trace),
            reversed_spans: trace.reversed_spans(),
            total_ops: ops.len() as u64,
            total_spans: spans.len() as u64,
        }
    }

    /// Serialize as deterministic JSON (stable key order, fixed float
    /// formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"ranks\": {\n");
        let n = self.ranks.len();
        for (i, (rank, r)) in self.ranks.iter().enumerate() {
            out.push_str(&format!(
                "    \"{rank}\": {{ \"ops\": {}, \"ops_ok\": {}, \"ops_failed\": {}, \
                 \"max_in_flight\": {}, \"chunk_drops\": {}, \"chunk_retries\": {}, \
                 \"bytes_sent\": {}, \"bytes_received\": {}, \"coll_bytes\": {}, \
                 \"rma_bytes\": {}, \"proc_failures\": {}, \"revokes\": {}, \"shrinks\": {}, \
                 \"restores\": {} }}{}\n",
                r.ops,
                r.ops_ok,
                r.ops_failed,
                r.max_in_flight,
                r.chunk_drops,
                r.chunk_retries,
                r.bytes_sent,
                r.bytes_received,
                r.coll_bytes,
                r.rma_bytes,
                r.proc_failures,
                r.revokes,
                r.shrinks,
                r.restores,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  },\n  \"overlap\": {\n");
        out.push_str(&format!(
            "    \"window_ns\": [{}, {}],\n    \"ranks\": [\n",
            self.overlap.window.0, self.overlap.window.1
        ));
        let n = self.overlap.ranks.len();
        for (i, r) in self.overlap.ranks.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"rank\": {}, \"compute_ns\": {}, \"comm_ns\": {}, \
                 \"overlap_ns\": {}, \"hidden_pct\": {:.4}, \"idle_ns\": {} }}{}\n",
                r.rank,
                r.compute_ns,
                r.comm_ns,
                r.overlap_ns,
                r.hidden_pct,
                r.idle_ns,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  },\n");
        out.push_str(&format!(
            "  \"reversed_spans\": {},\n  \"total_ops\": {},\n  \"total_spans\": {}\n}}\n",
            self.reversed_spans, self.total_ops, self.total_spans
        ));
        out
    }

    /// FNV-1a fingerprint of the serialized summary — the value the
    /// 16-seed determinism tests compare across runs.
    pub fn hash(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }
}

/// FNV-1a over a byte stream; the repo's standard stable fingerprint.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ----------------------------------------------------------------------
// Chrome trace_events exporter
// ----------------------------------------------------------------------

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with nanosecond precision, formatted
/// deterministically.
fn us(ns: SimNs) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// `(pid, sort key)` of a lane: ranked lanes map to their rank,
/// rank-less lanes (e.g. `net.fault`) to a shared trailing process.
fn lane_pid(lane: &str) -> u32 {
    classify(lane).map(|(r, _)| r).unwrap_or(u32::MAX)
}

/// Export the whole trace — plain Gantt spans and structured op spans —
/// as Chrome `trace_events` JSON, loadable in `chrome://tracing` or
/// Perfetto.
///
/// Layout: one *process* per rank (`rank N`), one *thread* per lane
/// (`rN.host`, `rN.gpu*`, `rN.dev`, `rN.net`, …). Every span becomes an
/// `X` (complete) event; op spans carry their stable `id`, `parent`
/// link, byte count and outcome in `args`. Each send operation is
/// causally linked to its matched receive with a `s`/`f` flow-event
/// pair, matched deterministically by `(src, dst, tag)` flow order.
///
/// The output is a pure function of the trace: same seed, same bytes.
pub fn chrome_trace(trace: &Trace) -> String {
    let spans = trace.spans();
    let ops = trace.ops();

    // Deterministic lane table: sorted by (pid, name); tids assigned in
    // that order, globally unique so Perfetto never merges lanes.
    let mut lanes: Vec<String> = Vec::new();
    for s in &spans {
        if !lanes.contains(&s.lane) {
            lanes.push(s.lane.clone());
        }
    }
    for o in &ops {
        if !lanes.contains(&o.track) {
            lanes.push(o.track.clone());
        }
    }
    lanes.sort_by(|a, b| lane_pid(a).cmp(&lane_pid(b)).then(a.cmp(b)));
    let tid_of = |lane: &str| -> usize { lanes.iter().position(|l| l == lane).unwrap_or(0) };

    let mut ev: Vec<String> = Vec::new();
    for (tid, lane) in lanes.iter().enumerate() {
        let pid = lane_pid(lane);
        let pname = if pid == u32::MAX {
            "fabric".to_string()
        } else {
            format!("rank {pid}")
        };
        ev.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(&pname)
        ));
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(lane)
        ));
    }

    // Plain spans: anonymous X events. Sorted order from Trace::spans()
    // plus full-content ties makes the output order deterministic.
    for s in &spans {
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{}}}",
            esc(&s.label),
            lane_pid(&s.lane),
            tid_of(&s.lane),
            us(s.start),
            us(s.end - s.start),
        ));
    }

    // Structured op spans: X events with identity args.
    for o in &ops {
        let mut args = format!("\"id\":{},\"bytes\":{},\"ok\":{}", o.id, o.bytes, o.ok);
        if let Some(p) = o.parent {
            args.push_str(&format!(",\"parent\":{p}"));
        }
        if let Some(p) = o.peer {
            args.push_str(&format!(",\"peer\":{p}"));
        }
        if let Some(t) = o.tag {
            args.push_str(&format!(",\"tag\":{t}"));
        }
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            esc(&o.name),
            esc(&o.cat),
            o.rank,
            tid_of(&o.track),
            us(o.start),
            us(o.end - o.start),
        ));
    }

    // Causal send→recv flow links: k-th send of flow (src, dst, tag)
    // pairs with the k-th recv of the same flow — both sides ordered by
    // their per-rank ids, which follow program order.
    let mut sends: BTreeMap<(u32, u32, i32), Vec<&OpSpan>> = BTreeMap::new();
    let mut recvs: BTreeMap<(u32, u32, i32), Vec<&OpSpan>> = BTreeMap::new();
    for o in &ops {
        let (Some(peer), Some(tag)) = (o.peer, o.tag) else {
            continue;
        };
        match o.cat.as_str() {
            "op.send" | "op.isend" => sends.entry((o.rank, peer, tag)).or_default().push(o),
            "op.recv" | "op.irecv" => recvs.entry((peer, o.rank, tag)).or_default().push(o),
            _ => {}
        }
    }
    let mut flow = 0u64;
    for (key, ss) in &sends {
        let Some(rr) = recvs.get(key) else { continue };
        for (s, r) in ss.iter().zip(rr.iter()) {
            flow += 1;
            ev.push(format!(
                "{{\"name\":\"xfer\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{flow},\
                 \"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.rank,
                tid_of(&s.track),
                us(s.start),
            ));
            ev.push(format!(
                "{{\"name\":\"xfer\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow},\
                 \"pid\":{},\"tid\":{},\"ts\":{}}}",
                r.rank,
                tid_of(&r.track),
                us(r.end.max(s.start)),
            ));
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ----------------------------------------------------------------------
// Minimal JSON validator (zero-dependency acceptance check)
// ----------------------------------------------------------------------

/// Validate that `s` is one well-formed JSON value. The workspace has no
/// serde; this hand-rolled recursive-descent checker is what the
/// exporter tests (and external consumers of `BENCH_*.json`) rely on to
/// prove the hand-written JSON stays syntactically valid.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
        None => Err(format!("unexpected end of input at {pos}")),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| {
        let s = p;
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        (p, p > s)
    };
    let (p, any) = digits(b, pos);
    if !any {
        return Err(format!("bad number at byte {start}"));
    }
    pos = p;
    if b.get(pos) == Some(&b'.') {
        let (p, any) = digits(b, pos + 1);
        if !any {
            return Err(format!("bad fraction at byte {pos}"));
        }
        pos = p;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        let mut p = pos + 1;
        if matches!(b.get(p), Some(b'+' | b'-')) {
            p += 1;
        }
        let (p, any) = digits(b, p);
        if !any {
            return Err(format!("bad exponent at byte {pos}"));
        }
        pos = p;
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos += 1; // opening quote
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                match b.get(pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                    Some(b'u') => {
                        if pos + 6 > b.len()
                            || !b[pos + 2..pos + 6].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                };
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = value(b, skip_ws(b, pos + 1))?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::Trace;

    fn op(id: u64, track: &str, cat: &str, start: SimNs, end: SimNs) -> OpSpan {
        OpSpan {
            id,
            parent: None,
            rank: classify(track).map(|(r, _)| r).unwrap_or(0),
            track: track.into(),
            name: format!("op{id}"),
            cat: cat.into(),
            start,
            end,
            bytes: 0,
            ok: true,
            peer: None,
            tag: None,
        }
    }

    #[test]
    fn op_ids_are_disjoint_across_ranks_and_seqs() {
        let a = op_id(0, 0);
        let b = op_id(0, 1);
        let c = op_id(1, 0);
        assert!(a < b && b < c);
        let mut kids = ChildIds::new(a);
        assert_eq!(kids.op(), a);
        let k1 = kids.child();
        let k2 = kids.child();
        assert!(k1 > a && k2 > k1 && k2 < b, "children stay in the block");
    }

    #[test]
    fn lane_classification_parses_rank_and_kind() {
        assert_eq!(classify("r3.gpu0"), Some((3, LaneClass::Compute)));
        assert_eq!(classify("r0.comm"), Some((0, LaneClass::Comm)));
        assert_eq!(classify("r12.net"), Some((12, LaneClass::Comm)));
        assert_eq!(classify("r1.dev"), Some((1, LaneClass::Comm)));
        assert_eq!(classify("r1.host"), Some((1, LaneClass::Other)));
        assert_eq!(classify("r1.fault"), Some((1, LaneClass::Other)));
        assert_eq!(classify("net.fault"), None);
    }

    #[test]
    fn overlap_accounting_on_known_spans() {
        // Compute [0,100), comm [50,150): comm=100, overlap=50 → 50%
        // hidden; window [0,150), busy [0,150) → idle 0.
        let report = OverlapReport::from_intervals([
            ("r0.gpu", 0, 100),
            ("r0.comm", 50, 150),
            // Second rank: fully hidden communication + idle tail.
            ("r1.gpu", 0, 100),
            ("r1.net", 20, 60),
        ]);
        assert_eq!(report.window, (0, 150));
        let r0 = report.ranks[0];
        assert_eq!(
            (r0.compute_ns, r0.comm_ns, r0.overlap_ns, r0.idle_ns),
            (100, 100, 50, 0)
        );
        assert!((r0.hidden_pct - 50.0).abs() < 1e-9);
        let r1 = report.ranks[1];
        assert_eq!(
            (r1.compute_ns, r1.comm_ns, r1.overlap_ns, r1.idle_ns),
            (100, 40, 40, 50)
        );
        assert!((r1.hidden_pct - 100.0).abs() < 1e-9);
        let table = report.render();
        assert!(table.contains("hidden%"));
        assert!(table.contains("100.00"));
    }

    #[test]
    fn overlap_unions_duplicate_cover() {
        // The same interval recorded on the legacy comm lane AND the
        // structured dev track must count once.
        let report = OverlapReport::from_intervals([
            ("r0.comm", 10, 20),
            ("r0.dev", 10, 20),
            ("r0.gpu", 0, 5),
        ]);
        assert_eq!(report.ranks[0].comm_ns, 10);
        assert_eq!(report.ranks[0].overlap_ns, 0);
    }

    #[test]
    fn overlap_zero_comm_reports_zero_pct() {
        let report = OverlapReport::from_intervals([("r0.gpu", 0, 10)]);
        assert_eq!(report.ranks[0].hidden_pct, 0.0);
    }

    #[test]
    fn summary_counts_ops_drops_retries_and_depth() {
        let t = Trace::new();
        let mut send = op(op_id(0, 0), "r0.host", "op.send", 0, 100);
        send.bytes = 64;
        send.peer = Some(1);
        send.tag = Some(7);
        t.record_op(send);
        let mut fail = op(op_id(0, 1), "r0.host", "op.send", 10, 50);
        fail.ok = false;
        t.record_op(fail);
        t.record_op(op(op_id(0, 0) | 1, "r0.net", "drop", 20, 20));
        t.record_op(op(op_id(0, 0) | 2, "r0.net", "retry", 20, 30));
        let mut recv = op(op_id(1, 0), "r1.host", "op.recv", 0, 120);
        recv.bytes = 64;
        recv.peer = Some(0);
        recv.tag = Some(7);
        t.record_op(recv);
        let mut bcast = op(op_id(1, 1), "r1.host", "op.bcast", 130, 200);
        bcast.bytes = 256;
        t.record_op(bcast);
        let s = ObsSummary::from_trace(&t);
        let r0 = s.ranks[&0];
        assert_eq!((r0.ops, r0.ops_ok, r0.ops_failed), (2, 1, 1));
        assert_eq!((r0.chunk_drops, r0.chunk_retries), (1, 1));
        assert_eq!(r0.bytes_sent, 64);
        assert_eq!(r0.max_in_flight, 2, "two ops overlap in [10,50)");
        let r1 = s.ranks[&1];
        assert_eq!(r1.bytes_received, 64);
        assert_eq!(r1.coll_bytes, 256, "collective envelopes count apart");
        assert_eq!(r1.bytes_sent, 0, "bcast bytes never alias p2p bytes");
        assert_eq!(r1.max_in_flight, 1);
        let mut put = op(op_id(1, 2), "r1.host", "op.put", 210, 260);
        put.bytes = 512;
        put.peer = Some(0);
        t.record_op(put);
        let s = ObsSummary::from_trace(&t);
        let r1 = s.ranks[&1];
        assert_eq!(r1.rma_bytes, 512, "one-sided envelopes count apart");
        assert_eq!(r1.bytes_sent, 0, "put bytes never alias p2p bytes");
        assert!(s.to_json().contains("\"rma_bytes\": 512"));
        assert_eq!(s.total_ops, 7);
        // The serialized summary is valid JSON and hashes stably.
        validate_json(&s.to_json()).unwrap();
        assert_eq!(s.hash(), ObsSummary::from_trace(&t).hash());
    }

    #[test]
    fn summary_tallies_recovery_annotations_apart_from_ops() {
        let t = Trace::new();
        // One ordinary op, then a failure/revoke/shrink trio (control
        // plane: outside the op totals) and a restore (a real op that is
        // also tallied as recovery).
        t.record_op(op(op_id(0, 0), "r0.host", "op.send", 0, 100));
        let mut fail = op(op_id(0, 1), "r0.host", "op.failure", 40, 40);
        fail.ok = false;
        t.record_op(fail);
        t.record_op(op(op_id(0, 2), "r0.host", "op.revoke", 50, 50));
        t.record_op(op(op_id(0, 3), "r0.host", "op.shrink", 50, 90));
        t.record_op(op(op_id(0, 4), "r0.host", "op.restore", 100, 140));
        let s = ObsSummary::from_trace(&t);
        let r0 = s.ranks[&0];
        assert_eq!((r0.proc_failures, r0.revokes, r0.shrinks), (1, 1, 1));
        assert_eq!(r0.restores, 1);
        assert_eq!((r0.ops, r0.ops_ok), (2, 2), "send + restore only");
        let json = s.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"proc_failures\": 1"));
        assert!(json.contains("\"restores\": 1"));
    }

    #[test]
    fn summary_exposes_reversed_spans() {
        let t = Trace::new();
        t.record("r0.gpu", "k", 50, 10); // reversed!
        let s = ObsSummary::from_trace(&t);
        assert_eq!(s.reversed_spans, 1);
        assert!(s.to_json().contains("\"reversed_spans\": 1"));
    }

    #[test]
    fn chrome_trace_exports_lanes_events_and_flows() {
        let t = Trace::new();
        t.record("r0.gpu", "kernel", 0, 50);
        let mut send = op(op_id(0, 0), "r0.host", "op.send", 0, 100);
        send.peer = Some(1);
        send.tag = Some(7);
        send.bytes = 1024;
        t.record_op(send);
        t.record_op(op(op_id(0, 0) | 1, "r0.net", "chunk", 10, 90));
        t.record_op(op(op_id(0, 0) | 2, "r0.dev", "stage.d2h", 0, 10));
        let mut recv = op(op_id(1, 0), "r1.host", "op.recv", 5, 120);
        recv.peer = Some(0);
        recv.tag = Some(7);
        t.record_op(recv);
        let json = chrome_trace(&t);
        validate_json(&json).unwrap();
        for lane in ["r0.host", "r0.net", "r0.dev", "r1.host", "r0.gpu"] {
            assert!(json.contains(&format!("\"name\":\"{lane}\"")), "{lane}");
        }
        assert!(json.contains("\"ph\":\"s\""), "flow source event");
        assert!(json.contains("\"ph\":\"f\""), "flow target event");
        assert!(json.contains("\"cat\":\"op.send\""));
        assert!(json.contains("\"cat\":\"op.recv\""));
        // Deterministic: exporting twice gives identical bytes.
        assert_eq!(json, chrome_trace(&t));
    }

    #[test]
    fn chrome_timestamps_are_sub_microsecond_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e4, true, null, \"x\\n\"]}").unwrap();
        validate_json("[]").unwrap();
        validate_json("{}").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("01abc").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn live_counters_track_inflight_and_depth() {
        let mut c = ObsCounters::default();
        c.note_submitted();
        c.note_submitted();
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.max_in_flight, 2);
        c.note_settled(true, 100, 0);
        c.note_submitted();
        c.note_settled(false, 0, 0);
        c.note_settled(true, 0, 50);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.max_in_flight, 2);
        assert_eq!((c.completed, c.failed), (2, 1));
        assert_eq!((c.bytes_sent, c.bytes_received), (100, 50));
    }
}
