//! Future-work extension (paper §IV-C / §VI): a collective communication
//! command for device buffers.
//!
//! The paper deliberately ships no collective commands — blocking MPI
//! collectives need no OpenCL-side synchronization — but notes that once
//! non-blocking collectives exist, "it will be effective to further
//! extend OpenCL to use its event management mechanism for the
//! synchronization". This module prototypes that extension:
//! [`ClMpi::enqueue_bcast_buffer`] broadcasts a device buffer from a root
//! rank to every rank's device, returning an ordinary event so kernels
//! can chain on its completion — the same programming model as the
//! point-to-point commands.

use std::sync::Arc;

use minicl::{Buffer, ClError, ClResult, CommandQueue, Device, Event, UserEvent};
use minimpi::{Datatype, Rank, Tag};
use simtime::{Actor, SimNs};

use crate::data_tag;
use crate::engine::{deps_settled, EngineOp, Step};
use crate::runtime::{ClMpi, Inner};
use crate::strategy::{ResolvedStrategy, TransferStrategy};

impl ClMpi {
    /// Broadcast `size` bytes at `offset` of `buf` from `root`'s device
    /// to the same region of every rank's `buf`. Non-blocking: returns an
    /// event that completes when this rank's part is done (root: all
    /// sends injected; others: data in device memory). Gated on
    /// `wait_list`. Every rank must call this collectively with the same
    /// `size` and `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_bcast_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        root: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if root >= self.comm().size() {
            return Err(ClError::InvalidValue(format!("root {root} out of range")));
        }
        if self.rank() != root {
            // Receivers reuse the point-to-point receive path: the wire
            // chunks are whatever the root produced.
            return self
                .enqueue_recv_buffer(queue, buf, false, offset, size, root, tag, wait_list, actor);
        }
        // Root: one device→host staging pass, then per-destination
        // network injections (serialized on the root's NIC, as a flat
        // broadcast is). A machine on the rank's engine, like every
        // command.
        let ue = self.context().create_user_event(format!("bcast→all#{tag}"));
        let event = ue.event();
        self.inner.engine.submit(Box::new(BcastOp {
            inner: self.inner.clone(),
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            wire_tag: data_tag(tag),
            strategy: self.resolve(size),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-bcast-r{}-t{tag}", self.rank()),
            state: BcastState::WaitDeps,
        }));
        Ok(event)
    }
}

/// The root side of `enqueue_bcast_buffer`: wait list → one staging +
/// fan-out burst (all reservations made at the deps-ready instant) →
/// completion at the last injection's end.
struct BcastOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    wire_tag: Tag,
    strategy: TransferStrategy,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    state: BcastState,
}

enum BcastState {
    WaitDeps,
    Finish { done_at: SimNs },
    Done,
}

impl EngineOp for BcastOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match self.state {
                BcastState::WaitDeps => {
                    // The prototype ignores dependency failures (like the
                    // blocking `Event::wait_all` it grew from): the
                    // broadcast proceeds once every dependency settled.
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let plan = ResolvedStrategy::plan(self.strategy, self.size);
                    let pcie = self.device.spec().pcie;
                    let t0 = now;
                    let mut done_at = t0;
                    // Stage each chunk once; send it to every destination.
                    let mut first = true;
                    let nranks = self.inner.comm.size();
                    let me = self.inner.comm.rank();
                    for &(coff, clen) in &plan.chunks {
                        let bytes = self
                            .buf
                            .load(self.offset + coff, clen)
                            .expect("range checked at enqueue");
                        let staged_end = match self.strategy {
                            TransferStrategy::Mapped => t0 + pcie.map_setup_ns,
                            _ => {
                                let earliest = if first { t0 + pcie.pin_setup_ns } else { t0 };
                                self.device
                                    .d2h_link()
                                    .reserve_duration(pcie.staged_ns(clen, true), earliest)
                                    .end
                            }
                        };
                        first = false;
                        for r in 0..nranks {
                            if r == me {
                                // Local copy: the root's own region
                                // already holds the data.
                                continue;
                            }
                            let req = self.inner.comm.isend_raw(
                                actor,
                                r,
                                self.wire_tag,
                                Datatype::ClMem,
                                &bytes,
                                staged_end,
                                None,
                            );
                            done_at = done_at.max(req.known_completion().expect("send known"));
                        }
                    }
                    self.state = BcastState::Finish { done_at };
                }
                BcastState::Finish { done_at } => {
                    if now < done_at {
                        return Step::Park(Some(done_at));
                    }
                    self.ue.set_complete(done_at).expect("bcast completed once");
                    self.state = BcastState::Done;
                    return Step::Done;
                }
                BcastState::Done => return Step::Done,
            }
        }
    }
}
