//! Pipelined device-buffer collectives (paper §IV-C / §VI, extended).
//!
//! The paper deliberately ships no collective commands — blocking MPI
//! collectives need no OpenCL-side synchronization — but notes that once
//! non-blocking collectives exist, "it will be effective to further
//! extend OpenCL to use its event management mechanism for the
//! synchronization". This module builds that extension the way a modern
//! comms stack would:
//!
//! * [`ClMpi::enqueue_bcast_buffer`] — broadcast a device buffer region
//!   from a root rank to every rank's device. Three algorithms
//!   ([`CollAlgo`]): a **flat** fan-out (the historical prototype,
//!   serialized on the root's NIC), a **binomial tree**, and a
//!   **pipelined ring** in which every non-root rank store-and-forwards
//!   each chunk as it arrives — chunk *k* goes back on the wire while
//!   chunk *k+1* is still in flight, so the broadcast streams instead of
//!   scaling with the root's out-degree.
//! * [`ClMpi::enqueue_allreduce_buffer`] /
//!   [`ClMpi::enqueue_reduce_buffer`] — ring reduce-scatter followed by
//!   ring allgather (allreduce) or a segment gather to the root
//!   (reduce), over `f64` elements with [`minimpi::ReduceOp`]
//!   Sum/Min/Max.
//!
//! All commands return ordinary events, so kernels chain on them exactly
//! like the point-to-point commands; wait-list failures poison the
//! collective event with −14, transfer failures with
//! `CL_MPI_TRANSFER_ERROR` (−1100), like every other machine.
//!
//! ### Wire protocol
//!
//! Only the **root** decides the broadcast algorithm and chunk size
//! (through the per-collective [`crate::adaptive::CollectiveSelector`]
//! or a static heuristic). Every broadcast wire message is
//! `[1-byte algorithm id] ++ payload-chunk`; a non-root rank posts a
//! wildcard-source receive, reads the header of the first chunk to learn
//! the topology (and its parent from the message source), then forwards
//! the verbatim message to its derived children. The ring reduction is
//! fixed-topology, so only the sender-local chunk size is tuned —
//! receivers drain by expected byte count, relying on minimpi's
//! per-`(source, tag)` FIFO delivery, so ranks with divergent chunk
//! choices still interoperate.
//!
//! Collective traffic lives in its own tag region above the
//! point-to-point data plane (see [`crate::CLMPI_COLL_TAG_BASE`]), so
//! `data_plane_faults` plans exercise it and user/control tags never
//! collide with it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use minicl::{
    Buffer, ClError, ClResult, CommandQueue, Device, Event, UserEvent, WaitListStatus,
    CL_MPI_TRANSFER_ERROR, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST,
};
use minimpi::{MpiError, Rank, ReduceOp, Request, Tag};
use simtime::{Actor, SimNs};

use crate::engine::{
    poll_deps, record_child, record_envelope, record_failure, ChunkStep, EngineOp,
    ReliableChunkSend, Step,
};
use crate::obs::ChildIds;
use crate::runtime::{ClMpi, Inner};
use crate::strategy::chunk_layout;
use crate::system::SystemConfig;

/// Host-side fold rate charged for reduction arithmetic (bytes/s). The
/// reduction itself is a host loop in this simulation; the charge keeps
/// the `reduce` child spans visible on the dev track without dominating
/// the wire time.
pub(crate) const REDUCE_BPS: f64 = 8e9;

/// A broadcast algorithm choice (the collective analogue of
/// [`crate::TransferStrategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollAlgo {
    /// Root sends the full payload to every rank, serialized on the
    /// root's NIC. Optimal at world ≤ 2, pathological beyond.
    Flat,
    /// Binomial tree: interior ranks re-forward each chunk to their
    /// subtree as it arrives; latency grows with ⌈log₂ n⌉.
    Tree,
    /// Pipelined ring (chain): each rank forwards chunk *k* to its
    /// successor while chunk *k+1* is still inbound; bandwidth-optimal
    /// for large payloads.
    Ring,
}

impl CollAlgo {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            CollAlgo::Flat => "flat",
            CollAlgo::Tree => "tree",
            CollAlgo::Ring => "ring",
        }
    }

    /// The wire header byte identifying this algorithm.
    pub(crate) fn id(&self) -> u8 {
        match self {
            CollAlgo::Flat => 1,
            CollAlgo::Tree => 2,
            CollAlgo::Ring => 3,
        }
    }

    pub(crate) fn from_id(id: u8) -> Option<CollAlgo> {
        match id {
            1 => Some(CollAlgo::Flat),
            2 => Some(CollAlgo::Tree),
            3 => Some(CollAlgo::Ring),
            _ => None,
        }
    }
}

/// One point in the collective tuning space: an algorithm plus the
/// pipeline chunk size it moves the payload in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollTuning {
    /// The dissemination topology.
    pub algo: CollAlgo,
    /// Wire chunk size in bytes (≥ 1).
    pub chunk: usize,
}

/// The static per-(size, world) broadcast policy used when no
/// [`crate::adaptive::CollectiveSelector`] is attached: trivial worlds
/// fan out flat, latency-bound payloads climb the tree, bandwidth-bound
/// payloads stream around the ring.
pub(crate) fn default_bcast_tuning(cfg: &SystemConfig, size: usize, world: usize) -> CollTuning {
    let algo = if world <= 2 {
        CollAlgo::Flat
    } else if size < (1 << 20) {
        CollAlgo::Tree
    } else {
        CollAlgo::Ring
    };
    // A ring only pipelines when each link sees several chunks: with m
    // chunks the last rank finishes after m + n − 2 injections, so m must
    // dominate n. Cap the chunk so m ≈ 4(n − 1) while keeping chunks
    // large enough (≥ 64 KiB) that per-chunk overheads stay negligible.
    let chunk = match algo {
        CollAlgo::Ring => (size / (4 * (world - 1)))
            .clamp(64 << 10, cfg.default_pipeline_block)
            .min(size.max(1)),
        _ => cfg.default_pipeline_block,
    };
    CollTuning { algo, chunk }
}

/// Children of `me` in the dissemination topology rooted at `root` over
/// `n` ranks. The union over all ranks is a spanning tree: every
/// non-root rank has exactly one parent.
pub(crate) fn bcast_children(algo: CollAlgo, root: Rank, n: usize, me: Rank) -> Vec<Rank> {
    match algo {
        CollAlgo::Flat => {
            if me == root {
                (0..n).filter(|&r| r != root).collect()
            } else {
                Vec::new()
            }
        }
        CollAlgo::Tree => {
            // Virtual ranks rotate the root to 0 (the reference binomial
            // construction minimpi's host bcast uses): vrank v's children
            // are v|mask for each mask below v's lowest set bit.
            let v = (me + n - root) % n;
            let top = if v == 0 {
                n.next_power_of_two()
            } else {
                v & v.wrapping_neg()
            };
            let mut out = Vec::new();
            let mut mask = top >> 1;
            while mask >= 1 {
                let child = v | mask;
                if child < n {
                    out.push((child + root) % n);
                }
                mask >>= 1;
            }
            out
        }
        CollAlgo::Ring => {
            let next = (me + 1) % n;
            if n > 1 && next != root {
                vec![next]
            } else {
                Vec::new()
            }
        }
    }
}

/// Element-wise `(offset, len)` of each of the `n` ring segments of a
/// `count`-element vector: near-equal splits, the remainder spread over
/// the leading segments (segments may be empty when `count < n`).
pub(crate) fn seg_bounds(count: usize, n: usize) -> Vec<(usize, usize)> {
    let base = count / n;
    let rem = count % n;
    let mut out = Vec::with_capacity(n);
    let mut off = 0;
    for j in 0..n {
        let len = base + usize::from(j < rem);
        out.push((off, len));
        off += len;
    }
    out
}

/// Receive-patience deadline for one collective chunk: only armed when
/// the world actually injects faults, so fault-free runs park
/// indefinitely on matching instead of waking on dead timers. Free
/// function (not a method) so machines can call it while their state
/// enum is mutably borrowed.
fn chunk_deadline_for(inner: &Inner, now: SimNs) -> Option<(SimNs, SimNs)> {
    inner.comm.world().has_faults().then(|| {
        let patience = inner.retry.lock().chunk_timeout_ns;
        (now + patience, patience)
    })
}

fn merge_hint(a: Option<SimNs>, b: Option<SimNs>) -> Option<SimNs> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

// ----------------------------------------------------------------------
// Serial reliable-send queue (the store-and-forward engine primitive)
// ----------------------------------------------------------------------

struct QueuedSend {
    send: ReliableChunkSend,
    /// Span start for the recorded child (the instant the injection was
    /// armed / allowed to begin).
    start: SimNs,
    name: String,
    cat: &'static str,
}

/// A FIFO of [`ReliableChunkSend`]s driven head-first: on a perfect
/// fabric every queued injection resolves in the same engine pass (the
/// fate of an `isend_raw` is known at injection), so serial stepping
/// equals the old burst; under faults the head's backoff timer
/// serializes the retries deterministically.
struct SendQueue {
    q: VecDeque<QueuedSend>,
    /// Latest injection end among completed sends.
    done_at: SimNs,
}

impl SendQueue {
    fn new() -> Self {
        SendQueue {
            q: VecDeque::new(),
            done_at: 0,
        }
    }

    fn push(&mut self, send: ReliableChunkSend, start: SimNs, name: String, cat: &'static str) {
        self.q.push_back(QueuedSend {
            send,
            start,
            name,
            cat,
        });
    }

    fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Step the head injection as far as possible at `now`. `Ok(None)`:
    /// queue drained (all injections delivered; the last ends at
    /// `done_at`). `Ok(Some(t))`: head is waiting until `t`. `Err`: head
    /// exhausted its retry budget at the carried instant.
    fn drive(
        &mut self,
        inner: &Inner,
        ids: &mut ChildIds,
        now: SimNs,
        actor: &Actor,
    ) -> Result<Option<SimNs>, (SimNs, ClError)> {
        while let Some(head) = self.q.front_mut() {
            match head.send.step(inner, ids, now, actor) {
                ChunkStep::Progressed => continue,
                ChunkStep::Park(t) => return Ok(Some(t)),
                ChunkStep::Sent(done) => {
                    record_child(
                        inner,
                        ids,
                        "net",
                        std::mem::take(&mut head.name),
                        head.cat,
                        head.start,
                        done,
                        head.send.len() as u64,
                        true,
                    );
                    self.done_at = self.done_at.max(done);
                    self.q.pop_front();
                }
                ChunkStep::Failed(at) => {
                    let e = head.send.exhaustion_error();
                    self.q.clear();
                    return Err((at, e));
                }
            }
        }
        Ok(None)
    }
}

// ----------------------------------------------------------------------
// Public API
// ----------------------------------------------------------------------

impl ClMpi {
    /// Broadcast `size` bytes at `offset` of `buf` from `root`'s device
    /// to the same region of every rank's `buf`. Non-blocking: returns
    /// an event that completes when this rank's part is done (root: all
    /// injections and forwards delivered; others: data in device memory
    /// and forwarded downstream). Gated on `wait_list`; a failed
    /// dependency poisons the event with −14. Every rank must call this
    /// collectively with the same `size` and `tag`.
    ///
    /// The algorithm and chunk size are the **root's** choice — through
    /// the attached [`ClMpi::set_bcast_adaptive`] selector, else the
    /// static per-(size, world) heuristic; receivers learn the topology
    /// from the wire.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_bcast_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        root: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        let n = self.comm().size();
        let tuning = if self.rank() == root {
            if let Some(sel) = self.inner.coll_bcast.lock().as_ref() {
                sel.choose(size, n)
            } else {
                default_bcast_tuning(&self.inner.cfg, size, n)
            }
        } else {
            // Receivers take the topology from the wire header.
            default_bcast_tuning(&self.inner.cfg, size, n)
        };
        let report = self.inner.coll_bcast.lock().is_some();
        self.submit_bcast(
            queue, buf, offset, size, root, tag, tuning, report, wait_list, actor,
        )
    }

    /// [`ClMpi::enqueue_bcast_buffer`] with an explicit algorithm and
    /// chunk size (benchmarks and the differential test suite). Never
    /// reports to the selector. The `algo`/`chunk` arguments only matter
    /// on the root; other ranks still learn the topology from the wire.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_bcast_buffer_as(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        root: Rank,
        tag: Tag,
        algo: CollAlgo,
        chunk: usize,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        if chunk == 0 {
            return Err(ClError::InvalidValue("collective chunk must be ≥ 1".into()));
        }
        self.submit_bcast(
            queue,
            buf,
            offset,
            size,
            root,
            tag,
            CollTuning { algo, chunk },
            false,
            wait_list,
            actor,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_bcast(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        root: Rank,
        tag: Tag,
        tuning: CollTuning,
        report: bool,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        let _ = actor;
        buf.check_range(offset, size)?;
        if root >= self.comm().size() {
            return Err(ClError::InvalidValue(format!("root {root} out of range")));
        }
        let wire_tag = crate::checked_coll_tag(crate::COLL_SPACE_BCAST, tag)?;
        let me = self.rank();
        let ue = self
            .context()
            .create_user_event(format!("bcast@{root}#{tag}"));
        let event = ue.event();
        let ids = self.inner.new_op();
        let submit_ns = self.inner.clock.now_ns();
        if me == root {
            self.inner.engine.submit(Box::new(BcastRootOp {
                inner: self.inner.clone(),
                device: queue.device().clone(),
                buf: buf.clone(),
                offset,
                size,
                wire_tag,
                user_tag: tag,
                tuning,
                report,
                wait: wait_list.to_vec(),
                ue,
                label: format!("clmpi-bcast-root-r{me}-t{tag}"),
                ids,
                submit_ns,
                t0: 0,
                queue: SendQueue::new(),
                state: RootState::WaitDeps,
            }));
        } else {
            self.inner.engine.submit(Box::new(BcastRecvOp {
                inner: self.inner.clone(),
                device: queue.device().clone(),
                buf: buf.clone(),
                offset,
                size,
                root,
                wire_tag,
                user_tag: tag,
                wait: wait_list.to_vec(),
                ue,
                label: format!("clmpi-bcast-recv-r{me}-t{tag}"),
                ids,
                submit_ns,
                t0: 0,
                algo: None,
                parent: None,
                children: Vec::new(),
                received: 0,
                chunk_idx: 0,
                last_h2d_end: 0,
                queue: SendQueue::new(),
                state: RecvBcastState::WaitDeps,
            }));
        }
        Ok(event)
    }

    /// All-reduce `count` `f64` elements at byte `offset` of `buf` under
    /// `op` across every rank: ring reduce-scatter followed by ring
    /// allgather. Every rank's region is overwritten with the reduced
    /// vector; the returned event completes when this rank's result is
    /// in device memory and its last injection delivered. Collective:
    /// every rank must call with the same `count`, `op` and `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_allreduce_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        count: usize,
        op: ReduceOp,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        let n = self.comm().size();
        let size = count
            .checked_mul(8)
            .ok_or_else(|| ClError::InvalidValue(format!("allreduce count {count} overflows")))?;
        let (chunk, report) = if let Some(sel) = self.inner.coll_allreduce.lock().as_ref() {
            (sel.choose(size, n).chunk, true)
        } else {
            (self.inner.cfg.default_pipeline_block, false)
        };
        self.submit_ring_reduce(
            queue,
            buf,
            offset,
            count,
            op,
            RingKind::Allreduce,
            tag,
            chunk,
            report,
            wait_list,
            actor,
        )
    }

    /// [`ClMpi::enqueue_allreduce_buffer`] with an explicit chunk size;
    /// never reports to the selector.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_allreduce_buffer_as(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        count: usize,
        op: ReduceOp,
        tag: Tag,
        chunk: usize,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        if chunk == 0 {
            return Err(ClError::InvalidValue("collective chunk must be ≥ 1".into()));
        }
        self.submit_ring_reduce(
            queue,
            buf,
            offset,
            count,
            op,
            RingKind::Allreduce,
            tag,
            chunk,
            false,
            wait_list,
            actor,
        )
    }

    /// Reduce `count` `f64` elements at byte `offset` of `buf` under
    /// `op` onto `root`: ring reduce-scatter, then each rank sends its
    /// owned reduced segment to the root. Only the **root's** buffer
    /// region is overwritten (MPI_Reduce semantics); other ranks' events
    /// complete when their segment is delivered.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_reduce_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        count: usize,
        op: ReduceOp,
        root: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        if root >= self.comm().size() {
            return Err(ClError::InvalidValue(format!("root {root} out of range")));
        }
        self.submit_ring_reduce(
            queue,
            buf,
            offset,
            count,
            op,
            RingKind::ReduceToRoot(root),
            tag,
            self.inner.cfg.default_pipeline_block,
            false,
            wait_list,
            actor,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_ring_reduce(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        count: usize,
        op: ReduceOp,
        kind: RingKind,
        tag: Tag,
        chunk: usize,
        report: bool,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        let _ = actor;
        let size = count
            .checked_mul(8)
            .ok_or_else(|| ClError::InvalidValue(format!("reduce count {count} overflows")))?;
        buf.check_range(offset, size)?;
        let space = match kind {
            RingKind::Allreduce => crate::COLL_SPACE_ALLREDUCE,
            RingKind::ReduceToRoot(_) => crate::COLL_SPACE_REDUCE,
        };
        let wire_tag = crate::checked_coll_tag(space, tag)?;
        let me = self.rank();
        let (what, peer) = match kind {
            RingKind::Allreduce => ("allreduce".to_string(), String::new()),
            RingKind::ReduceToRoot(root) => ("reduce".to_string(), format!("@{root}")),
        };
        let ue = self
            .context()
            .create_user_event(format!("{what}{peer}#{tag}"));
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(RingReduceOp {
            inner: self.inner.clone(),
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            count,
            op,
            kind,
            wire_tag,
            user_tag: tag,
            chunk: chunk.max(1),
            report,
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-{what}-r{me}-t{tag}"),
            ids,
            submit_ns: self.inner.clock.now_ns(),
            t0: 0,
            host: Vec::new(),
            queue: SendQueue::new(),
            state: RingState::WaitDeps,
        }));
        Ok(event)
    }
}

// ----------------------------------------------------------------------
// Broadcast: root machine
// ----------------------------------------------------------------------

/// The root side of a broadcast: wait list → per-chunk d2h staging →
/// reliable injections to each direct child (pipelined: chunk *k*'s
/// sends are armed as soon as its staging reservation lands) →
/// completion at the last delivered injection.
struct BcastRootOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    wire_tag: Tag,
    user_tag: Tag,
    tuning: CollTuning,
    report: bool,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    t0: SimNs,
    queue: SendQueue,
    state: RootState,
}

enum RootState {
    WaitDeps,
    Drive,
    Finish { done_at: SimNs },
    Done,
}

impl BcastRootOp {
    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        if self.report && !matches!(outcome, Err(ClError::EventFailed { .. })) {
            if let Some(sel) = self.inner.coll_bcast.lock().as_ref() {
                let n = self.inner.comm.size();
                if ok {
                    sel.observe(self.size, n, self.tuning, at.saturating_sub(self.t0));
                } else {
                    sel.observe_failure(self.size, n, self.tuning);
                }
            }
        }
        if ok {
            if let Some(stats) = self.inner.stats.lock().as_ref() {
                stats.record(
                    "bcast",
                    self.tuning.algo.name(),
                    self.size,
                    at.saturating_sub(self.t0),
                );
            }
        }
        let me = self.inner.comm.rank();
        record_envelope(
            &self.inner,
            &self.ids,
            "op.bcast",
            format!("bcast@{me}#{}", self.user_tag),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            None,
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, if ok { self.size as u64 } else { 0 }, 0);
        match outcome {
            Ok(()) => self
                .ue
                .set_complete(at)
                .expect("bcast event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("bcast event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("bcast event settled once"),
        }
        self.state = RootState::Done;
        Step::Done
    }
}

impl EngineOp for BcastRootOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &self.state {
                RootState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        self.t0 = now;
                        let n = self.inner.comm.size();
                        let me = self.inner.comm.rank();
                        let children = bcast_children(self.tuning.algo, me, n, me);
                        if children.is_empty() {
                            // World of one: nothing on the wire.
                            self.state = RootState::Finish { done_at: now };
                            continue;
                        }
                        let pcie = self.device.spec().pcie;
                        let mut first = true;
                        for (k, &(coff, clen)) in chunk_layout(self.size, self.tuning.chunk.max(1))
                            .iter()
                            .enumerate()
                        {
                            let payload = self
                                .buf
                                .load(self.offset + coff, clen)
                                .expect("range checked at enqueue");
                            let send_from = if clen == 0 {
                                now
                            } else {
                                let earliest = if first { now + pcie.pin_setup_ns } else { now };
                                first = false;
                                let d2h = self
                                    .device
                                    .d2h_link()
                                    .reserve_duration(pcie.staged_ns(clen, true), earliest);
                                record_child(
                                    &self.inner,
                                    &mut self.ids,
                                    "dev",
                                    "d2h".into(),
                                    "stage.d2h",
                                    d2h.start,
                                    d2h.end,
                                    clen as u64,
                                    true,
                                );
                                d2h.end
                            };
                            let mut msg = Vec::with_capacity(clen + 1);
                            msg.push(self.tuning.algo.id());
                            msg.extend_from_slice(&payload);
                            for &c in &children {
                                self.queue.push(
                                    ReliableChunkSend::new(
                                        &self.inner,
                                        c,
                                        self.wire_tag,
                                        msg.clone(),
                                        send_from,
                                        None,
                                    ),
                                    send_from,
                                    format!("bcast[{k}]→r{c}"),
                                    "chunk",
                                );
                            }
                        }
                        self.state = RootState::Drive;
                    }
                },
                RootState::Drive => {
                    match self.queue.drive(&self.inner, &mut self.ids, now, actor) {
                        Err((at, e)) => return self.settle(Err(e), at.max(now)),
                        Ok(Some(t)) => return Step::Park(Some(t)),
                        Ok(None) => {
                            self.state = RootState::Finish {
                                done_at: self.queue.done_at.max(now),
                            };
                        }
                    }
                }
                RootState::Finish { done_at } => {
                    let d = *done_at;
                    if now < d {
                        return Step::Park(Some(d));
                    }
                    return self.settle(Ok(()), d);
                }
                RootState::Done => return Step::Done,
            }
        }
    }
}

// ----------------------------------------------------------------------
// Broadcast: non-root store-and-forward machine
// ----------------------------------------------------------------------

/// A non-root broadcast participant: posts a wildcard-source receive,
/// learns the topology from the first chunk's header, then for every
/// arriving chunk simultaneously stages it to the device **and**
/// re-forwards the verbatim wire message to its derived children — the
/// store-and-forward pipeline that lets chunk *k* travel downstream
/// while chunk *k+1* is still inbound.
struct BcastRecvOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    root: Rank,
    wire_tag: Tag,
    user_tag: Tag,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    t0: SimNs,
    algo: Option<CollAlgo>,
    parent: Option<Rank>,
    children: Vec<Rank>,
    received: usize,
    chunk_idx: usize,
    last_h2d_end: SimNs,
    queue: SendQueue,
    state: RecvBcastState,
}

enum RecvBcastState {
    WaitDeps,
    Setup {
        resume_at: SimNs,
    },
    AwaitChunk {
        req: Request,
        deadline: Option<(SimNs, SimNs)>, // (expiry instant, patience)
    },
    /// Payload complete; flush the remaining forwards.
    Drain,
    Finish {
        done_at: SimNs,
    },
    Done,
}

impl BcastRecvOp {
    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        record_envelope(
            &self.inner,
            &self.ids,
            "op.bcast",
            format!("bcast@{}#{}", self.root, self.user_tag),
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            Some(self.root),
            Some(self.wire_tag),
        );
        self.inner
            .note_settled(ok, 0, if ok { self.size as u64 } else { 0 });
        match outcome {
            Ok(()) => self
                .ue
                .set_complete(at)
                .expect("bcast event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("bcast event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("bcast event settled once"),
        }
        self.state = RecvBcastState::Done;
        Step::Done
    }

    /// Post the receive for the next wire chunk. The first post is
    /// wildcard-source (the parent is unknown until the header arrives);
    /// later posts pin the learned parent.
    fn post_chunk(&mut self, now: SimNs, actor: &Actor) {
        let req = self
            .inner
            .comm
            .irecv(actor, self.parent, Some(self.wire_tag));
        let deadline = self.inner.comm.world().has_faults().then(|| {
            let patience = self.inner.retry.lock().chunk_timeout_ns;
            (now + patience, patience)
        });
        self.state = RecvBcastState::AwaitChunk { req, deadline };
    }

    /// Cancel the posted receive (failure paths) so the matcher does not
    /// hand a later message to a dead machine.
    fn abandon_recv(&mut self) {
        if let RecvBcastState::AwaitChunk { req, .. } =
            std::mem::replace(&mut self.state, RecvBcastState::Done)
        {
            req.cancel();
        }
    }
}

impl EngineOp for BcastRecvOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                RecvBcastState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        self.t0 = now;
                        let pcie = self.device.spec().pcie;
                        self.state = RecvBcastState::Setup {
                            resume_at: now + pcie.pin_setup_ns,
                        };
                    }
                },
                RecvBcastState::Setup { resume_at } => {
                    let r = *resume_at;
                    if now < r {
                        return Step::Park(Some(r));
                    }
                    self.post_chunk(now, actor);
                }
                RecvBcastState::AwaitChunk { .. } => {
                    // Forwards first: a forward failure poisons the whole
                    // collective on this rank.
                    let fwd_hint = match self.queue.drive(&self.inner, &mut self.ids, now, actor) {
                        Ok(h) => h,
                        Err((at, e)) => {
                            self.abandon_recv();
                            return self.settle(Err(e), at.max(now));
                        }
                    };
                    let RecvBcastState::AwaitChunk { req, deadline } = &mut self.state else {
                        unreachable!("matched above")
                    };
                    let deadline = *deadline;
                    if let Some(result) = req.test(actor) {
                        let r = result.expect("matched receive yields a payload");
                        let msg = r.data;
                        if msg.is_empty() {
                            return self.settle(
                                Err(ClError::TransferFailed(
                                    "broadcast chunk missing its algorithm header".into(),
                                )),
                                now,
                            );
                        }
                        if let Some(algo) = self.algo {
                            if algo.id() != msg[0] {
                                return self.settle(
                                    Err(ClError::TransferFailed(format!(
                                        "broadcast algorithm id changed mid-stream ({} → {})",
                                        algo.id(),
                                        msg[0]
                                    ))),
                                    now,
                                );
                            }
                        } else {
                            let Some(algo) = CollAlgo::from_id(msg[0]) else {
                                return self.settle(
                                    Err(ClError::TransferFailed(format!(
                                        "unknown broadcast algorithm id {}",
                                        msg[0]
                                    ))),
                                    now,
                                );
                            };
                            self.algo = Some(algo);
                            self.parent = Some(r.status.source);
                            self.children = bcast_children(
                                algo,
                                self.root,
                                self.inner.comm.size(),
                                self.inner.comm.rank(),
                            );
                        }
                        let payload_len = msg.len() - 1;
                        if self.received + payload_len > self.size {
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "broadcast overflow: got {} bytes into a {}-byte region",
                                    self.received + payload_len,
                                    self.size
                                ))),
                                now,
                            );
                        }
                        if payload_len > 0 {
                            self.buf
                                .store(self.offset + self.received, &msg[1..])
                                .expect("range checked at enqueue");
                            let pcie = self.device.spec().pcie;
                            let h2d = self
                                .device
                                .h2d_link()
                                .reserve_duration(pcie.staged_ns(payload_len, true), now);
                            record_child(
                                &self.inner,
                                &mut self.ids,
                                "dev",
                                "h2d".into(),
                                "stage.h2d",
                                h2d.start,
                                h2d.end,
                                payload_len as u64,
                                true,
                            );
                            self.last_h2d_end = self.last_h2d_end.max(h2d.end);
                        }
                        // Store-and-forward: re-inject the verbatim wire
                        // message (header included) to every child now —
                        // while later chunks are still inbound.
                        for i in 0..self.children.len() {
                            let c = self.children[i];
                            self.queue.push(
                                ReliableChunkSend::new(
                                    &self.inner,
                                    c,
                                    self.wire_tag,
                                    msg.clone(),
                                    now,
                                    None,
                                ),
                                now,
                                format!("fwd[{}]→r{c}", self.chunk_idx),
                                "forward",
                            );
                        }
                        self.chunk_idx += 1;
                        self.received += payload_len;
                        if self.received >= self.size {
                            self.state = RecvBcastState::Drain;
                        } else {
                            self.post_chunk(now, actor);
                        }
                    } else if let Some(at) = req.known_completion() {
                        // Matched, in flight: arrival is committed.
                        return Step::Park(merge_hint(fwd_hint, Some(at.max(now + 1))));
                    } else if self
                        .inner
                        .peer_failed(self.parent.unwrap_or(self.root), now)
                    {
                        // The upstream process (the learned parent, or
                        // the root before the first chunk reveals one)
                        // is dead and nothing is in flight: no further
                        // chunk can arrive. Abort-and-poison now instead
                        // of waiting out the chunk patience (ULFM lets a
                        // failed peer fail pending communication).
                        let upstream = self.parent.unwrap_or(self.root);
                        self.abandon_recv();
                        if let Some(stats) = self.inner.stats.lock().as_ref() {
                            stats.note_proc_failure();
                        }
                        record_failure(&self.inner, &mut self.ids, upstream, now);
                        return self.settle(
                            Err(ClError::TransferFailed(format!(
                                "broadcast chunk from rank {upstream} (tag {}): {}",
                                self.wire_tag,
                                MpiError::ProcFailed { rank: upstream }
                            ))),
                            now,
                        );
                    } else if let Some((at, patience)) = deadline {
                        if now >= at {
                            self.abandon_recv();
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.note_failure();
                            }
                            let e = MpiError::Timeout {
                                waited_ns: patience,
                            };
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "broadcast chunk from {} (tag {}) gave up: {e}",
                                    self.parent
                                        .map(|p| p.to_string())
                                        .unwrap_or_else(|| "any".into()),
                                    self.wire_tag
                                ))),
                                now,
                            );
                        }
                        return Step::Park(merge_hint(fwd_hint, Some(at)));
                    } else {
                        return Step::Park(fwd_hint);
                    }
                }
                RecvBcastState::Drain => {
                    match self.queue.drive(&self.inner, &mut self.ids, now, actor) {
                        Err((at, e)) => return self.settle(Err(e), at.max(now)),
                        Ok(Some(t)) => return Step::Park(Some(t)),
                        Ok(None) => {
                            self.state = RecvBcastState::Finish {
                                done_at: self.last_h2d_end.max(self.queue.done_at).max(now),
                            };
                        }
                    }
                }
                RecvBcastState::Finish { done_at } => {
                    let d = *done_at;
                    if now < d {
                        return Step::Park(Some(d));
                    }
                    return self.settle(Ok(()), d);
                }
                RecvBcastState::Done => return Step::Done,
            }
        }
    }
}

// ----------------------------------------------------------------------
// Ring reduction machine (allreduce and reduce-to-root)
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingKind {
    Allreduce,
    ReduceToRoot(Rank),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingPhase {
    ReduceScatter,
    Allgather,
}

/// The in-progress receive of one ring segment (possibly several wire
/// chunks; the receiver drains by byte count).
struct SegRecv {
    req: Request,
    deadline: Option<(SimNs, SimNs)>,
    seg: usize,
    got: usize,
    data: Vec<u8>,
}

enum SegVerdict {
    /// Segment complete (fold charged); effective completion instant.
    Complete(SimNs),
    /// Still waiting; wake hint.
    Pending(Option<SimNs>),
    /// Receive failed permanently.
    Fail(ClError, SimNs),
}

/// Root-side state of the reduce-to-root segment gather: every other
/// rank streams its owned reduced segment; chunks are written straight
/// into a byte image of the full region.
struct GatherState {
    req: Request,
    deadline: Option<(SimNs, SimNs)>,
    /// Bytes received so far per source (chunk offset within its
    /// segment).
    per_src: BTreeMap<Rank, usize>,
    got: usize,
    expect: usize,
    image: Vec<u8>,
}

/// `enqueue_allreduce_buffer` / `enqueue_reduce_buffer` as one machine:
/// d2h load → n−1 reduce-scatter rounds (send segment `(me−k) mod n` to
/// the successor, receive and fold segment `(me−k−1) mod n` from the
/// predecessor) → either n−1 allgather rounds + h2d store (allreduce)
/// or a segment gather to the root (reduce). Rounds are synchronous:
/// round *k+1*'s sends are armed no earlier than round *k*'s
/// completion, which is what makes the folded data available to
/// forward (a conservative but deterministic pipeline).
struct RingReduceOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    count: usize,
    op: ReduceOp,
    kind: RingKind,
    wire_tag: Tag,
    user_tag: Tag,
    chunk: usize,
    report: bool,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    t0: SimNs,
    host: Vec<f64>,
    queue: SendQueue,
    state: RingState,
}

enum RingState {
    WaitDeps,
    /// The d2h load of the local contribution is crossing PCIe.
    Load {
        end: SimNs,
    },
    Round {
        phase: RingPhase,
        idx: usize,
        start: SimNs,
        recv: Option<SegRecv>,
        recv_done: Option<SimNs>,
    },
    /// Non-root reduce: the owned segment is streaming to the root.
    GatherSend,
    /// Root reduce: collecting every other rank's owned segment.
    GatherRoot {
        gs: Box<GatherState>,
    },
    /// The final h2d store is crossing PCIe.
    Store {
        end: SimNs,
    },
    Finish {
        done_at: SimNs,
    },
    Done,
}

impl RingReduceOp {
    fn size(&self) -> usize {
        self.count * 8
    }

    fn prev(&self) -> Rank {
        let n = self.inner.comm.size();
        (self.inner.comm.rank() + n - 1) % n
    }

    fn chunk_deadline(&self, now: SimNs) -> Option<(SimNs, SimNs)> {
        chunk_deadline_for(&self.inner, now)
    }

    fn settle(&mut self, outcome: ClResult<()>, at: SimNs) -> Step {
        let ok = outcome.is_ok();
        let n = self.inner.comm.size();
        if self.report && !matches!(outcome, Err(ClError::EventFailed { .. })) {
            if let Some(sel) = self.inner.coll_allreduce.lock().as_ref() {
                let tuning = CollTuning {
                    algo: CollAlgo::Ring,
                    chunk: self.chunk,
                };
                if ok {
                    sel.observe(self.size(), n, tuning, at.saturating_sub(self.t0));
                } else {
                    sel.observe_failure(self.size(), n, tuning);
                }
            }
        }
        let (cat, name, peer, what) = match self.kind {
            RingKind::Allreduce => (
                "op.allreduce",
                format!("allreduce#{}", self.user_tag),
                None,
                "allreduce",
            ),
            RingKind::ReduceToRoot(root) => (
                "op.reduce",
                format!("reduce@{root}#{}", self.user_tag),
                Some(root),
                "reduce",
            ),
        };
        if ok {
            if let Some(stats) = self.inner.stats.lock().as_ref() {
                stats.record(what, "ring", self.size(), at.saturating_sub(self.t0));
            }
        }
        record_envelope(
            &self.inner,
            &self.ids,
            cat,
            name,
            self.submit_ns,
            at,
            self.size() as u64,
            ok,
            peer,
            Some(self.wire_tag),
        );
        let me = self.inner.comm.rank();
        let (sent, received) = match self.kind {
            RingKind::Allreduce => (self.size() as u64, self.size() as u64),
            RingKind::ReduceToRoot(root) if me == root => (0, self.size() as u64),
            RingKind::ReduceToRoot(_) => (self.size() as u64, 0),
        };
        self.inner
            .note_settled(ok, if ok { sent } else { 0 }, if ok { received } else { 0 });
        match outcome {
            Ok(()) => self
                .ue
                .set_complete(at)
                .expect("reduce event completed once"),
            Err(ClError::EventFailed { .. }) => self
                .ue
                .set_failed(at, EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                .expect("reduce event settled once"),
            Err(_) => self
                .ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("reduce event settled once"),
        }
        self.state = RingState::Done;
        Step::Done
    }

    /// Cancel whatever receive the current state holds (failure paths).
    fn abandon_recv(&mut self) {
        match std::mem::replace(&mut self.state, RingState::Done) {
            RingState::Round { recv: Some(sr), .. } => {
                sr.req.cancel();
            }
            RingState::GatherRoot { gs } => {
                gs.req.cancel();
            }
            _ => {}
        }
    }

    /// Arm round `idx` of `phase` starting at `start`: queue the send
    /// segment's chunks and post the receive for the inbound segment.
    fn begin_round(&mut self, phase: RingPhase, idx: usize, start: SimNs, actor: &Actor) {
        let n = self.inner.comm.size();
        let me = self.inner.comm.rank();
        let next = (me + 1) % n;
        let segs = seg_bounds(self.count, n);
        let (send_seg, recv_seg) = match phase {
            RingPhase::ReduceScatter => ((me + n - idx) % n, (me + 2 * n - idx - 1) % n),
            RingPhase::Allgather => ((me + n + 1 - idx) % n, (me + n - idx) % n),
        };
        let tagn = match phase {
            RingPhase::ReduceScatter => "rs",
            RingPhase::Allgather => "ag",
        };
        let (soff_el, slen_el) = segs[send_seg];
        if slen_el > 0 {
            let sdata: Vec<u8> = self.host[soff_el..soff_el + slen_el]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            for (k, &(coff, clen)) in chunk_layout(sdata.len(), self.chunk).iter().enumerate() {
                self.queue.push(
                    ReliableChunkSend::new(
                        &self.inner,
                        next,
                        self.wire_tag,
                        sdata[coff..coff + clen].to_vec(),
                        start,
                        None,
                    ),
                    start,
                    format!("{tagn}[{idx}][{k}]→r{next}"),
                    "chunk",
                );
            }
        }
        let (_, rlen_el) = segs[recv_seg];
        let (recv, recv_done) = if rlen_el > 0 {
            let req = self
                .inner
                .comm
                .irecv(actor, Some(self.prev()), Some(self.wire_tag));
            (
                Some(SegRecv {
                    req,
                    deadline: self.chunk_deadline(start),
                    seg: recv_seg,
                    got: 0,
                    data: vec![0u8; rlen_el * 8],
                }),
                None,
            )
        } else {
            (None, Some(start))
        };
        self.state = RingState::Round {
            phase,
            idx,
            start,
            recv,
            recv_done,
        };
    }

    /// Drain as many wire chunks of the inbound segment as are ready at
    /// `now`; fold (reduce-scatter) or copy (allgather) when complete.
    fn drive_seg_recv(
        &mut self,
        sr: &mut SegRecv,
        phase: RingPhase,
        now: SimNs,
        actor: &Actor,
    ) -> SegVerdict {
        loop {
            if let Some(result) = sr.req.test(actor) {
                let r = result.expect("matched receive yields a payload");
                if sr.got + r.data.len() > sr.data.len() {
                    return SegVerdict::Fail(
                        ClError::TransferFailed(format!(
                            "ring segment overflow: got {} bytes into a {}-byte segment",
                            sr.got + r.data.len(),
                            sr.data.len()
                        )),
                        now,
                    );
                }
                sr.data[sr.got..sr.got + r.data.len()].copy_from_slice(&r.data);
                sr.got += r.data.len();
                if sr.got == sr.data.len() {
                    let n = self.inner.comm.size();
                    let (off_el, len_el) = seg_bounds(self.count, n)[sr.seg];
                    let vals: Vec<f64> = sr
                        .data
                        .chunks_exact(8)
                        .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunks")))
                        .collect();
                    return match phase {
                        RingPhase::ReduceScatter => {
                            self.op.fold(&mut self.host[off_el..off_el + len_el], &vals);
                            let fold_ns = (sr.got as f64 * 1e9 / REDUCE_BPS).round() as SimNs;
                            record_child(
                                &self.inner,
                                &mut self.ids,
                                "dev",
                                format!("reduce[{}]", sr.seg),
                                "reduce",
                                now,
                                now + fold_ns,
                                sr.got as u64,
                                true,
                            );
                            SegVerdict::Complete(now + fold_ns)
                        }
                        RingPhase::Allgather => {
                            self.host[off_el..off_el + len_el].copy_from_slice(&vals);
                            SegVerdict::Complete(now)
                        }
                    };
                }
                // More wire chunks of this segment to come.
                sr.req = self
                    .inner
                    .comm
                    .irecv(actor, Some(self.prev()), Some(self.wire_tag));
                sr.deadline = self.chunk_deadline(now);
                continue;
            }
            if let Some(at) = sr.req.known_completion() {
                return SegVerdict::Pending(Some(at.max(now + 1)));
            }
            if self.inner.peer_failed(self.prev(), now) {
                // The predecessor is dead and nothing is in flight: the
                // ring is broken, no segment chunk can ever arrive.
                let prev = self.prev();
                if let Some(stats) = self.inner.stats.lock().as_ref() {
                    stats.note_proc_failure();
                }
                record_failure(&self.inner, &mut self.ids, prev, now);
                return SegVerdict::Fail(
                    ClError::TransferFailed(format!(
                        "ring segment from rank {prev} (tag {}): {}",
                        self.wire_tag,
                        MpiError::ProcFailed { rank: prev }
                    )),
                    now,
                );
            }
            if let Some((at, patience)) = sr.deadline {
                if now >= at {
                    if let Some(stats) = self.inner.stats.lock().as_ref() {
                        stats.note_failure();
                    }
                    let e = MpiError::Timeout {
                        waited_ns: patience,
                    };
                    return SegVerdict::Fail(
                        ClError::TransferFailed(format!(
                            "ring segment from rank {} (tag {}) gave up: {e}",
                            self.prev(),
                            self.wire_tag
                        )),
                        now,
                    );
                }
                return SegVerdict::Pending(Some(at));
            }
            return SegVerdict::Pending(None);
        }
    }

    /// The round is fully done (sends delivered, segment folded); move
    /// to the next round or the terminal phase.
    fn advance_round(&mut self, phase: RingPhase, idx: usize, at: SimNs, actor: &Actor) {
        let n = self.inner.comm.size();
        let me = self.inner.comm.rank();
        match phase {
            RingPhase::ReduceScatter if idx + 1 < n - 1 => {
                self.begin_round(RingPhase::ReduceScatter, idx + 1, at, actor);
            }
            RingPhase::ReduceScatter => {
                // Reduce-scatter done: this rank owns the fully reduced
                // segment (me+1) mod n.
                match self.kind {
                    RingKind::Allreduce => self.begin_round(RingPhase::Allgather, 0, at, actor),
                    RingKind::ReduceToRoot(root) if me == root => self.begin_gather_root(at, actor),
                    RingKind::ReduceToRoot(root) => {
                        let segs = seg_bounds(self.count, n);
                        let own = (me + 1) % n;
                        let (ooff, olen) = segs[own];
                        if olen > 0 {
                            let bytes: Vec<u8> = self.host[ooff..ooff + olen]
                                .iter()
                                .flat_map(|v| v.to_le_bytes())
                                .collect();
                            for (k, &(coff, clen)) in
                                chunk_layout(bytes.len(), self.chunk).iter().enumerate()
                            {
                                self.queue.push(
                                    ReliableChunkSend::new(
                                        &self.inner,
                                        root,
                                        self.wire_tag,
                                        bytes[coff..coff + clen].to_vec(),
                                        at,
                                        None,
                                    ),
                                    at,
                                    format!("gather[{k}]→r{root}"),
                                    "chunk",
                                );
                            }
                        }
                        self.state = RingState::GatherSend;
                    }
                }
            }
            RingPhase::Allgather if idx + 1 < n - 1 => {
                self.begin_round(RingPhase::Allgather, idx + 1, at, actor);
            }
            RingPhase::Allgather => {
                let bytes: Vec<u8> = self.host.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.begin_store(bytes, at);
            }
        }
    }

    /// Root side of reduce-to-root: collect every other rank's owned
    /// segment into a byte image of the region.
    fn begin_gather_root(&mut self, at: SimNs, actor: &Actor) {
        let n = self.inner.comm.size();
        let me = self.inner.comm.rank();
        let segs = seg_bounds(self.count, n);
        let own = (me + 1) % n;
        let expect = (self.count - segs[own].1) * 8;
        if expect == 0 {
            // Degenerate split: every foreign segment is empty.
            let bytes: Vec<u8> = self.host.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.begin_store(bytes, at);
            return;
        }
        let image: Vec<u8> = self.host.iter().flat_map(|v| v.to_le_bytes()).collect();
        let req = self.inner.comm.irecv(actor, None, Some(self.wire_tag));
        self.state = RingState::GatherRoot {
            gs: Box::new(GatherState {
                req,
                deadline: self.chunk_deadline(at),
                per_src: BTreeMap::new(),
                got: 0,
                expect,
                image,
            }),
        };
    }

    /// Write the final region bytes to the device: buffer store plus one
    /// h2d staging reservation.
    fn begin_store(&mut self, bytes: Vec<u8>, at: SimNs) {
        self.buf
            .store(self.offset, &bytes)
            .expect("range checked at enqueue");
        let pcie = self.device.spec().pcie;
        let h2d = self
            .device
            .h2d_link()
            .reserve_duration(pcie.staged_ns(bytes.len(), true), at);
        record_child(
            &self.inner,
            &mut self.ids,
            "dev",
            "h2d".into(),
            "stage.h2d",
            h2d.start,
            h2d.end,
            bytes.len() as u64,
            true,
        );
        self.state = RingState::Store { end: h2d.end };
    }
}

impl EngineOp for RingReduceOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, actor: &Actor) -> Step {
        loop {
            match &mut self.state {
                RingState::WaitDeps => match poll_deps(&self.wait) {
                    WaitListStatus::Pending => return Step::Park(None),
                    WaitListStatus::Failed { code, label } => {
                        return self.settle(Err(ClError::EventFailed { code, label }), now);
                    }
                    WaitListStatus::Ready => {
                        self.t0 = now;
                        let n = self.inner.comm.size();
                        if n == 1 || self.count == 0 {
                            // Identity reduction: the local contribution
                            // is already the result, in place.
                            self.state = RingState::Finish { done_at: now };
                            continue;
                        }
                        let bytes = self
                            .buf
                            .load(self.offset, self.size())
                            .expect("range checked at enqueue");
                        self.host = bytes
                            .chunks_exact(8)
                            .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunks")))
                            .collect();
                        let sz = self.size() as u64;
                        let pcie = self.device.spec().pcie;
                        let d2h = self.device.d2h_link().reserve_duration(
                            pcie.staged_ns(self.size(), true),
                            now + pcie.pin_setup_ns,
                        );
                        record_child(
                            &self.inner,
                            &mut self.ids,
                            "dev",
                            "d2h".into(),
                            "stage.d2h",
                            d2h.start,
                            d2h.end,
                            sz,
                            true,
                        );
                        self.state = RingState::Load { end: d2h.end };
                    }
                },
                RingState::Load { end } => {
                    let e = *end;
                    if now < e {
                        return Step::Park(Some(e));
                    }
                    self.begin_round(RingPhase::ReduceScatter, 0, e.max(now), actor);
                }
                RingState::Round { .. } => {
                    let send_hint = match self.queue.drive(&self.inner, &mut self.ids, now, actor) {
                        Ok(h) => h,
                        Err((at, e)) => {
                            self.abandon_recv();
                            return self.settle(Err(e), at.max(now));
                        }
                    };
                    let (phase, idx, start) = match &self.state {
                        RingState::Round {
                            phase, idx, start, ..
                        } => (*phase, *idx, *start),
                        _ => unreachable!("matched above"),
                    };
                    // Take the pending receive out of the state so the
                    // fold can borrow host/op/ids freely.
                    let taken = match &mut self.state {
                        RingState::Round { recv, .. } => recv.take(),
                        _ => unreachable!("matched above"),
                    };
                    let mut recv_hint = None;
                    if let Some(mut sr) = taken {
                        match self.drive_seg_recv(&mut sr, phase, now, actor) {
                            SegVerdict::Complete(at) => {
                                if let RingState::Round { recv_done, .. } = &mut self.state {
                                    *recv_done = Some(at);
                                }
                            }
                            SegVerdict::Pending(hint) => {
                                recv_hint = hint;
                                if let RingState::Round { recv, .. } = &mut self.state {
                                    *recv = Some(sr);
                                }
                            }
                            SegVerdict::Fail(e, at) => {
                                sr.req.cancel();
                                return self.settle(Err(e), at.max(now));
                            }
                        }
                    }
                    let recv_done = match &self.state {
                        RingState::Round { recv_done, .. } => *recv_done,
                        _ => unreachable!("matched above"),
                    };
                    if self.queue.is_empty() {
                        if let Some(rd) = recv_done {
                            let round_end = rd.max(self.queue.done_at).max(start);
                            if now < round_end {
                                return Step::Park(Some(round_end));
                            }
                            self.advance_round(phase, idx, round_end.max(now), actor);
                            continue;
                        }
                    }
                    return Step::Park(merge_hint(send_hint, recv_hint));
                }
                RingState::GatherSend => {
                    match self.queue.drive(&self.inner, &mut self.ids, now, actor) {
                        Err((at, e)) => return self.settle(Err(e), at.max(now)),
                        Ok(Some(t)) => return Step::Park(Some(t)),
                        Ok(None) => {
                            // MPI_Reduce semantics: a non-root buffer is
                            // left untouched — no device store.
                            self.state = RingState::Finish {
                                done_at: self.queue.done_at.max(now),
                            };
                        }
                    }
                }
                RingState::GatherRoot { gs } => {
                    if let Some(result) = gs.req.test(actor) {
                        let r = result.expect("matched receive yields a payload");
                        let n = self.inner.comm.size();
                        let src = r.status.source;
                        let seg = (src + 1) % n;
                        let (off_el, len_el) = seg_bounds(self.count, n)[seg];
                        let within = gs.per_src.entry(src).or_insert(0);
                        if *within + r.data.len() > len_el * 8 {
                            let got = *within + r.data.len();
                            self.abandon_recv();
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "reduce gather overflow from rank {src}: {got} bytes \
                                     into a {}-byte segment",
                                    len_el * 8
                                ))),
                                now,
                            );
                        }
                        let base = off_el * 8 + *within;
                        gs.image[base..base + r.data.len()].copy_from_slice(&r.data);
                        *within += r.data.len();
                        gs.got += r.data.len();
                        if gs.got == gs.expect {
                            let fold_ns = (gs.expect as f64 * 1e9 / REDUCE_BPS).round() as SimNs;
                            let bytes = std::mem::take(&mut gs.image);
                            record_child(
                                &self.inner,
                                &mut self.ids,
                                "dev",
                                "reduce[gather]".into(),
                                "reduce",
                                now,
                                now + fold_ns,
                                bytes.len() as u64,
                                true,
                            );
                            self.begin_store(bytes, now + fold_ns);
                            continue;
                        }
                        gs.req = self.inner.comm.irecv(actor, None, Some(self.wire_tag));
                        gs.deadline = chunk_deadline_for(&self.inner, now);
                    } else if let Some(at) = gs.req.known_completion() {
                        return Step::Park(Some(at.max(now + 1)));
                    } else if let Some(dead) = {
                        // A contributor whose segment is still incomplete
                        // and whose process is dead can never finish the
                        // gather; nothing is in flight, so fail fast.
                        let n = self.inner.comm.size();
                        let me = self.inner.comm.rank();
                        let segs = seg_bounds(self.count, n);
                        (0..n).find(|&r| {
                            r != me
                                && segs[(r + 1) % n].1 > 0
                                && gs.per_src.get(&r).copied().unwrap_or(0)
                                    < segs[(r + 1) % n].1 * 8
                                && self.inner.peer_failed(r, now)
                        })
                    } {
                        self.abandon_recv();
                        if let Some(stats) = self.inner.stats.lock().as_ref() {
                            stats.note_proc_failure();
                        }
                        record_failure(&self.inner, &mut self.ids, dead, now);
                        return self.settle(
                            Err(ClError::TransferFailed(format!(
                                "reduce gather (tag {}): {}",
                                self.wire_tag,
                                MpiError::ProcFailed { rank: dead }
                            ))),
                            now,
                        );
                    } else if let Some((at, patience)) = gs.deadline {
                        if now >= at {
                            self.abandon_recv();
                            if let Some(stats) = self.inner.stats.lock().as_ref() {
                                stats.note_failure();
                            }
                            let e = MpiError::Timeout {
                                waited_ns: patience,
                            };
                            return self.settle(
                                Err(ClError::TransferFailed(format!(
                                    "reduce gather (tag {}) gave up: {e}",
                                    self.wire_tag
                                ))),
                                now,
                            );
                        }
                        return Step::Park(Some(at));
                    } else {
                        return Step::Park(None);
                    }
                }
                RingState::Store { end } => {
                    let e = *end;
                    if now < e {
                        return Step::Park(Some(e));
                    }
                    self.state = RingState::Finish {
                        done_at: e.max(self.queue.done_at),
                    };
                }
                RingState::Finish { done_at } => {
                    let d = *done_at;
                    if now < d {
                        return Step::Park(Some(d));
                    }
                    return self.settle(Ok(()), d);
                }
                RingState::Done => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the topology from the root; every rank must be reached
    /// exactly once (spanning tree over the world).
    fn assert_spanning(algo: CollAlgo, root: Rank, n: usize) {
        let mut seen = vec![false; n];
        let mut queue = vec![root];
        seen[root] = true;
        while let Some(r) = queue.pop() {
            for c in bcast_children(algo, root, n, r) {
                assert!(c < n, "{algo:?} n={n} root={root}: child {c} out of range");
                assert!(
                    !seen[c],
                    "{algo:?} n={n} root={root}: rank {c} has two parents"
                );
                seen[c] = true;
                queue.push(c);
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{algo:?} n={n} root={root}: not all ranks reached: {seen:?}"
        );
    }

    #[test]
    fn every_topology_spans_every_world_and_root() {
        for n in [1, 2, 3, 5, 8, 13] {
            for root in 0..n {
                for algo in [CollAlgo::Flat, CollAlgo::Tree, CollAlgo::Ring] {
                    assert_spanning(algo, root, n);
                }
            }
        }
    }

    #[test]
    fn binomial_children_match_hand_check_for_five_ranks() {
        // n=5, root=0: 0→{4,2,1}, 2→{3}, leaves elsewhere.
        assert_eq!(bcast_children(CollAlgo::Tree, 0, 5, 0), vec![4, 2, 1]);
        assert_eq!(bcast_children(CollAlgo::Tree, 0, 5, 2), vec![3]);
        assert!(bcast_children(CollAlgo::Tree, 0, 5, 1).is_empty());
        assert!(bcast_children(CollAlgo::Tree, 0, 5, 3).is_empty());
        assert!(bcast_children(CollAlgo::Tree, 0, 5, 4).is_empty());
    }

    #[test]
    fn ring_chain_stops_before_the_root() {
        assert_eq!(bcast_children(CollAlgo::Ring, 2, 4, 2), vec![3]);
        assert_eq!(bcast_children(CollAlgo::Ring, 2, 4, 3), vec![0]);
        assert_eq!(bcast_children(CollAlgo::Ring, 2, 4, 0), vec![1]);
        assert!(bcast_children(CollAlgo::Ring, 2, 4, 1).is_empty());
        assert!(bcast_children(CollAlgo::Ring, 0, 1, 0).is_empty());
    }

    #[test]
    fn seg_bounds_cover_exactly_with_leading_remainder() {
        assert_eq!(seg_bounds(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
        assert_eq!(seg_bounds(2, 4), vec![(0, 1), (1, 1), (2, 0), (2, 0)]);
        for (count, n) in [(0, 3), (1, 13), (1023, 5), (4096, 8)] {
            let segs = seg_bounds(count, n);
            assert_eq!(segs.len(), n);
            let total: usize = segs.iter().map(|s| s.1).sum();
            assert_eq!(total, count);
            let mut off = 0;
            for &(o, l) in &segs {
                assert_eq!(o, off);
                off += l;
            }
        }
    }

    #[test]
    fn algo_ids_round_trip() {
        for algo in [CollAlgo::Flat, CollAlgo::Tree, CollAlgo::Ring] {
            assert_eq!(CollAlgo::from_id(algo.id()), Some(algo));
        }
        assert_eq!(CollAlgo::from_id(0), None);
        assert_eq!(CollAlgo::from_id(99), None);
    }

    #[test]
    fn default_tuning_picks_flat_tree_ring_by_shape() {
        let cfg = SystemConfig::ricc();
        assert_eq!(default_bcast_tuning(&cfg, 64 << 20, 2).algo, CollAlgo::Flat);
        assert_eq!(default_bcast_tuning(&cfg, 4 << 10, 8).algo, CollAlgo::Tree);
        assert_eq!(default_bcast_tuning(&cfg, 42 << 20, 8).algo, CollAlgo::Ring);
        // The ring chunk shrinks with world size so every link streams
        // several chunks — a single-chunk ring is a serial relay.
        let t = default_bcast_tuning(&cfg, 2 << 20, 4);
        assert_eq!(t.algo, CollAlgo::Ring);
        assert!(
            t.chunk * 4 <= 2 << 20,
            "ring chunk {} must pipeline a 2 MiB payload",
            t.chunk
        );
        assert!(t.chunk >= 64 << 10);
    }
}
