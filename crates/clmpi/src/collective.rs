//! Future-work extension (paper §IV-C / §VI): a collective communication
//! command for device buffers.
//!
//! The paper deliberately ships no collective commands — blocking MPI
//! collectives need no OpenCL-side synchronization — but notes that once
//! non-blocking collectives exist, "it will be effective to further
//! extend OpenCL to use its event management mechanism for the
//! synchronization". This module prototypes that extension:
//! [`ClMpi::enqueue_bcast_buffer`] broadcasts a device buffer from a root
//! rank to every rank's device, returning an ordinary event so kernels
//! can chain on its completion — the same programming model as the
//! point-to-point commands.

use minicl::{Buffer, ClError, ClResult, CommandQueue, Event};
use minimpi::{Datatype, Rank, Tag};
use simtime::Actor;

use crate::data_tag;
use crate::runtime::ClMpi;
use crate::strategy::{ResolvedStrategy, TransferStrategy};

impl ClMpi {
    /// Broadcast `size` bytes at `offset` of `buf` from `root`'s device
    /// to the same region of every rank's `buf`. Non-blocking: returns an
    /// event that completes when this rank's part is done (root: all
    /// sends injected; others: data in device memory). Gated on
    /// `wait_list`. Every rank must call this collectively with the same
    /// `size` and `tag`.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_bcast_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        root: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if root >= self.comm().size() {
            return Err(ClError::InvalidValue(format!("root {root} out of range")));
        }
        if self.rank() != root {
            // Receivers reuse the point-to-point receive path: the wire
            // chunks are whatever the root produced.
            return self
                .enqueue_recv_buffer(queue, buf, false, offset, size, root, tag, wait_list, actor);
        }
        // Root: one device→host staging pass, then per-destination
        // network injections (serialized on the root's NIC, as a flat
        // broadcast is). Runs on a runtime thread like every command.
        let ue = self.context().create_user_event(format!("bcast→all#{tag}"));
        let event = ue.event();
        let inner = self.inner_handle();
        let strategy = self.resolved_for(size);
        let wait: Vec<Event> = wait_list.to_vec();
        let buf = buf.clone();
        let device = queue.device().clone();
        let nranks = self.comm().size();
        let me = self.rank();
        self.spawn_runtime_job(format!("clmpi-bcast-r{me}-t{tag}"), move |a| {
            Event::wait_all(&wait, a);
            let plan = ResolvedStrategy::plan(strategy, size);
            let pcie = device.spec().pcie;
            let t0 = a.now_ns();
            let mut done_at = t0;
            // Stage each chunk once; send it to every destination.
            let mut first = true;
            for &(coff, clen) in &plan.chunks {
                let bytes = buf
                    .load(offset + coff, clen)
                    .expect("range checked at enqueue");
                let staged_end = match strategy {
                    TransferStrategy::Mapped => t0 + pcie.map_setup_ns,
                    _ => {
                        let earliest = if first { t0 + pcie.pin_setup_ns } else { t0 };
                        device
                            .d2h_link()
                            .reserve_duration(pcie.staged_ns(clen, true), earliest)
                            .end
                    }
                };
                first = false;
                for r in 0..nranks {
                    if r == me {
                        // Local copy: the root's own region already holds
                        // the data.
                        continue;
                    }
                    let req = inner.comm_handle().isend_raw(
                        a,
                        r,
                        data_tag(tag),
                        Datatype::ClMem,
                        &bytes,
                        staged_end,
                        None,
                    );
                    done_at = done_at.max(req.known_completion().expect("send known"));
                }
            }
            a.advance_until(done_at);
            ue.set_complete(a.now_ns()).expect("bcast completed once");
        });
        Ok(event)
    }
}
