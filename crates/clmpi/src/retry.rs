//! Retry policy for inter-node transfers under lossy fabrics.
//!
//! The simulated NIC observes a message's fate at injection time (the
//! fabric's link-layer NACK model, see `simnet::FaultPlan`), so recovery
//! is **sender-driven**: a lost wire chunk is retransmitted after an
//! exponential backoff in virtual time. The backoff stands in for the
//! timeout-and-ack round trip a real reliable transport would pay.

use simtime::SimNs;

/// How the runtime reacts to observed chunk loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Transmission attempts per wire chunk (>= 1). Exhausting the budget
    /// fails the transfer permanently.
    pub max_attempts: u32,
    /// Backoff before the first retransmit, virtual ns.
    pub backoff_base_ns: SimNs,
    /// Multiplier applied to the backoff after every failed attempt.
    pub backoff_factor: u32,
    /// Consecutive chunk losses (without an intervening delivery) after
    /// which the runtime degrades pipelined transfers to pinned: fewer,
    /// larger messages expose fewer per-message loss draws.
    pub degrade_after: u32,
    /// Receiver-side patience per wire chunk, virtual ns. Only consulted
    /// when the world runs under a fault plan; must exceed the sender's
    /// worst-case retry schedule or the receiver gives up first.
    pub chunk_timeout_ns: SimNs,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff_base_ns: 200_000, // 200 us
            backoff_factor: 2,
            degrade_after: 3,
            chunk_timeout_ns: 1_000_000_000, // 1 s virtual
        }
    }
}

impl RetryPolicy {
    /// Policy with an explicit attempt budget and base backoff; other
    /// fields take their defaults.
    pub fn new(max_attempts: u32, backoff_base_ns: SimNs) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff_base_ns,
            ..Default::default()
        }
    }

    /// Backoff before retransmit number `attempt` (1-based):
    /// `base * factor^(attempt-1)`, saturating.
    pub fn backoff_ns(&self, attempt: u32) -> SimNs {
        let factor =
            (self.backoff_factor.max(1) as SimNs).saturating_pow(attempt.saturating_sub(1));
        self.backoff_base_ns.saturating_mul(factor)
    }

    /// Worst-case virtual time spent in backoffs for one chunk (upper
    /// bound callers can use to size receiver timeouts).
    pub fn total_backoff_ns(&self) -> SimNs {
        (1..self.max_attempts).fold(0u64, |acc, attempt| {
            acc.saturating_add(self.backoff_ns(attempt))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::new(4, 1_000);
        assert_eq!(p.backoff_ns(1), 1_000);
        assert_eq!(p.backoff_ns(2), 2_000);
        assert_eq!(p.backoff_ns(3), 4_000);
        assert_eq!(p.total_backoff_ns(), 7_000);
    }

    #[test]
    fn attempt_budget_never_below_one() {
        assert_eq!(RetryPolicy::new(0, 10).max_attempts, 1);
    }

    #[test]
    fn huge_attempts_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            backoff_base_ns: u64::MAX / 2,
            ..RetryPolicy::new(200, 0)
        };
        let _ = p.backoff_ns(200); // must not panic
        let _ = p.total_backoff_ns();
    }
}
