//! The clMPI runtime: inter-node communication commands and MPI interop.
//!
//! ### Implementation notes (vs. paper §V-A)
//!
//! The paper implements the extension *on top of* a proprietary OpenCL:
//! inter-node communication commands return **user events** that mimic
//! command events, and a runtime-internal thread executes the MPI calls so
//! the host thread is never blocked. This reproduction does the same, the
//! paper's way: one long-lived per-rank progress thread (the
//! [`crate::Engine`]) multiplexes every outstanding command as a
//! cooperative state machine — chunked transfers, MPI request wrappers,
//! collective fan-outs, file I/O, and the retry/backoff timers of the
//! failure model (see `engine.rs` for the execution model). Transfers
//! begin when their wait lists complete and progress with no host
//! involvement; resource contention (PCIe, NIC) is fully accounted
//! through the shared reservation timelines.
//!
//! This module is the *control plane*: argument validation, strategy
//! resolution, machine construction and submission. The only places it
//! blocks the calling actor are the explicitly blocking API flavors,
//! each marked `// blocking-api:` for the CI lint.

use simtime::plock::Mutex;
use std::sync::Arc;

use minicl::{Buffer, ClError, ClResult, CommandQueue, Context, Device, Event, HostBuffer};
use minimpi::{
    Comm, CommittedType, MpiError, Process, Rank, RecvResult, ReduceOp, Request, Tag, Win,
};
use simtime::{Actor, Monitor, SimClock, SimNs, Trace};

use crate::data_tag;
use crate::engine::{
    record_envelope, AccumulateOp, Engine, EventFromRequestOp, GetOp, HostSendOp, IrecvClOp,
    Lowering, PutOp, RecvOp, ResultSlot, SendOp, SendSlot, WinFenceOp,
};
use crate::obs::{ChildIds, ObsCounters};
use crate::retry::RetryPolicy;
use crate::strategy::{PackMode, ResolvedStrategy, TransferStrategy};
use crate::system::SystemConfig;

/// Loss bookkeeping behind the degradation heuristic.
#[derive(Default)]
pub(crate) struct FaultState {
    /// Chunk losses observed since the last successful delivery.
    pub(crate) consecutive_drops: u32,
    /// Once set, pipelined transfers resolve to pinned (fewer wire
    /// messages → fewer loss draws) until [`ClMpi::reset_degradation`].
    pub(crate) degraded: bool,
}

pub(crate) struct Inner {
    pub(crate) comm: Comm,
    pub(crate) ctx: Context,
    pub(crate) device: Device,
    pub(crate) cfg: SystemConfig,
    pub(crate) clock: SimClock,
    pub(crate) engine: Engine,
    pub(crate) forced: Mutex<Option<TransferStrategy>>,
    pub(crate) trace: Trace,
    pub(crate) stats: Mutex<Option<crate::stats::TransferStats>>,
    pub(crate) adaptive: Mutex<Option<Arc<crate::adaptive::AdaptiveSelector>>>,
    /// Per-(peer, size) tuner for one-sided wire lowerings; `None` means
    /// window traffic takes the class-routed RMA path unconditionally.
    pub(crate) rma_adaptive: Mutex<Option<Arc<crate::adaptive::PeerSelector>>>,
    /// Per-collective tuners (algorithm + chunk keyed on size × world);
    /// `None` falls back to the static heuristic.
    pub(crate) coll_bcast: Mutex<Option<Arc<crate::adaptive::CollectiveSelector>>>,
    pub(crate) coll_allreduce: Mutex<Option<Arc<crate::adaptive::CollectiveSelector>>>,
    pub(crate) retry: Mutex<RetryPolicy>,
    pub(crate) fault_state: Mutex<FaultState>,
    /// Next per-rank operation sequence number (stable op ids).
    pub(crate) op_seq: Mutex<u64>,
    /// Live per-rank operation counters (see [`crate::obs::ObsCounters`]).
    pub(crate) obs: Mutex<ObsCounters>,
    /// Communicator-local ranks explicitly reported failed
    /// ([`ClMpi::notify_proc_failure`]); machines consult this set in
    /// addition to the fault plan's schedule.
    pub(crate) failed: Mutex<std::collections::BTreeSet<Rank>>,
}

impl Inner {
    /// Allocate the stable id block of the next operation and count the
    /// submission. Called on the submitting thread only, so each rank's
    /// numbering follows its own program order — never the real-time
    /// interleaving of engine threads.
    pub(crate) fn new_op(&self) -> ChildIds {
        // Allocate under op_seq alone, then count under obs alone — the
        // submission counter does not need to be atomic with the id
        // allocation, and holding both guards would order op_seq before
        // obs for every submitter.
        let ids = {
            let mut seq = self.op_seq.lock();
            let ids = ChildIds::new(crate::obs::op_id(self.comm.rank(), *seq));
            *seq += 1;
            ids
        };
        self.obs.lock().note_submitted();
        ids
    }

    /// Count an operation settlement (engine-side).
    pub(crate) fn note_settled(&self, ok: bool, sent: u64, received: u64) {
        self.obs.lock().note_settled(ok, sent, received);
    }

    /// Allocate an id block for a control-plane recovery span (failure
    /// notification, revoke, shrink) without counting an operation
    /// submission — recovery spans are summarized into the recovery
    /// counters of [`crate::obs::ObsSummary`], not the op counters.
    pub(crate) fn new_span_ids(&self) -> ChildIds {
        let mut seq = self.op_seq.lock();
        let ids = ChildIds::new(crate::obs::op_id(self.comm.rank(), *seq));
        *seq += 1;
        ids
    }

    /// True if communicator-local rank `local` is known failed at `t`:
    /// either explicitly reported ([`ClMpi::notify_proc_failure`]) or
    /// dead per the fabric's fault-plan schedule (the deterministic
    /// ground truth the ULFM-style layer classifies against).
    pub(crate) fn peer_failed(&self, local: Rank, t: SimNs) -> bool {
        if self.failed.lock().contains(&local) {
            return true;
        }
        self.comm.is_proc_failed(local, t)
    }
}

/// The per-rank clMPI runtime: binds one MPI endpoint to one OpenCL
/// context/device and provides the extension API.
#[derive(Clone)]
pub struct ClMpi {
    pub(crate) inner: Arc<Inner>,
}

impl ClMpi {
    /// Create the runtime for `p`'s rank under system config `cfg`. Builds
    /// a fresh [`Context`] holding `cfg.device` and starts the rank's
    /// progress engine (the calling thread must be a running clock actor,
    /// which `run_world` rank closures always are).
    pub fn new(p: &Process, cfg: SystemConfig) -> Self {
        Self::with_comm(p.comm.clone(), cfg)
    }

    /// Create a runtime directly on `comm` (everything else — clock,
    /// trace — derives from its world). This is the rebuild path after a
    /// rank failure: `shrink` the old runtime's communicator, shut the
    /// old runtime down, and start a fresh one on the survivor
    /// communicator. The calling thread must be a running clock actor.
    pub fn with_comm(comm: Comm, cfg: SystemConfig) -> Self {
        let clock = comm.world().clock().clone();
        let ctx = Context::new(clock.clone(), &[cfg.device]);
        let device = ctx.device(0).clone();
        let trace = comm.world().trace().clone();
        let engine = Engine::start(
            &clock,
            format!("clmpi-engine-r{}", comm.rank()),
            comm.rank() as u64,
        );
        ClMpi {
            inner: Arc::new(Inner {
                comm,
                ctx,
                device,
                cfg,
                clock,
                engine,
                forced: Mutex::new(None),
                trace,
                stats: Mutex::new(None),
                adaptive: Mutex::new(None),
                rma_adaptive: Mutex::new(None),
                coll_bcast: Mutex::new(None),
                coll_allreduce: Mutex::new(None),
                retry: Mutex::new(RetryPolicy::default()),
                fault_state: Mutex::new(FaultState::default()),
                op_seq: Mutex::new(0),
                obs: Mutex::new(ObsCounters::default()),
                failed: Mutex::new(std::collections::BTreeSet::new()),
            }),
        }
    }

    /// The OpenCL context this runtime manages.
    pub fn context(&self) -> &Context {
        &self.inner.ctx
    }

    /// The communicator device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The MPI endpoint.
    pub fn comm(&self) -> &Comm {
        &self.inner.comm
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.inner.cfg
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.inner.comm.rank()
    }

    /// The rank's progress engine (the machines behind every command).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Force every subsequent transfer onto `strategy` (`None` restores
    /// automatic selection). Used by the Fig. 8 strategy sweeps.
    pub fn set_forced_strategy(&self, strategy: Option<TransferStrategy>) {
        *self.inner.forced.lock() = strategy;
    }

    /// Attach a measurement-based strategy tuner (see
    /// [`crate::adaptive::AdaptiveSelector`]); it overrides the static
    /// policy until detached with `None`. A forced strategy
    /// ([`ClMpi::set_forced_strategy`]) still takes precedence.
    pub fn set_adaptive(&self, selector: Option<Arc<crate::adaptive::AdaptiveSelector>>) {
        *self.inner.adaptive.lock() = selector;
    }

    /// Attach a per-(peer, size) tuner for one-sided window traffic (see
    /// [`crate::adaptive::PeerSelector`]): each peer's size class probes
    /// the RMA path against the NIC-side emulations and locks the
    /// fastest — co-located peers converge on the pool port, remote
    /// peers on the NIC. A forced strategy still takes precedence.
    pub fn set_rma_adaptive(&self, selector: Option<Arc<crate::adaptive::PeerSelector>>) {
        *self.inner.rma_adaptive.lock() = selector;
    }

    /// Attach a broadcast tuner (see
    /// [`crate::adaptive::CollectiveSelector`]): the root probes each
    /// (algorithm, chunk) candidate per (size, world) class and locks the
    /// fastest; failed probes are retired like transfer strategies.
    /// `None` restores the static heuristic.
    pub fn set_bcast_adaptive(&self, selector: Option<Arc<crate::adaptive::CollectiveSelector>>) {
        *self.inner.coll_bcast.lock() = selector;
    }

    /// Attach an allreduce chunk-size tuner (ring topology is fixed;
    /// only the pipeline chunk is probed). `None` restores the system
    /// default block.
    pub fn set_allreduce_adaptive(
        &self,
        selector: Option<Arc<crate::adaptive::CollectiveSelector>>,
    ) {
        *self.inner.coll_allreduce.lock() = selector;
    }

    /// Set how transfers react to observed chunk loss (attempt budget,
    /// backoff schedule, degradation threshold, receiver patience).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.inner.retry.lock() = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.inner.retry.lock()
    }

    /// True once repeated chunk loss has degraded pipelined transfers to
    /// pinned (see [`RetryPolicy::degrade_after`]).
    pub fn is_degraded(&self) -> bool {
        self.inner.fault_state.lock().degraded
    }

    /// Clear the degradation latch (e.g. after the operator restored the
    /// link), letting pipelined transfers resolve normally again.
    pub fn reset_degradation(&self) {
        let mut fs = self.inner.fault_state.lock();
        fs.degraded = false;
        fs.consecutive_drops = 0;
    }

    /// Attach (and return) a transfer-statistics collector: every
    /// subsequent transfer records its direction, resolved strategy,
    /// bytes, and virtual duration.
    pub fn enable_stats(&self) -> crate::stats::TransferStats {
        let stats = crate::stats::TransferStats::new();
        *self.inner.stats.lock() = Some(stats.clone());
        stats
    }

    /// Snapshot this rank's live observability counters: operations
    /// submitted/completed/failed, peak queue depth, payload bytes. The
    /// values are deterministic at quiescent points (after
    /// [`ClMpi::shutdown`]); mid-run reads are best-effort introspection
    /// — the exported [`crate::obs::ObsSummary`] recomputes everything
    /// from spans instead.
    pub fn obs_counters(&self) -> ObsCounters {
        *self.inner.obs.lock()
    }

    pub(crate) fn resolve(&self, size: usize) -> TransferStrategy {
        // A forced strategy is an explicit benchmark request: honored
        // verbatim, even under degradation.
        if let Some(forced) = *self.inner.forced.lock() {
            return self.inner.cfg.resolve(forced, size);
        }
        let chosen = if let Some(sel) = self.inner.adaptive.lock().as_ref() {
            self.inner.cfg.resolve(sel.choose(size), size)
        } else {
            self.inner.cfg.resolve(TransferStrategy::Auto, size)
        };
        if matches!(chosen, TransferStrategy::Pipelined(_))
            && self.inner.fault_state.lock().degraded
        {
            return self.inner.cfg.resolve(TransferStrategy::Pinned, size);
        }
        chosen
    }

    /// Strategy resolution for one-sided puts: forced > per-peer tuner >
    /// the class-routed RMA path. Degradation maps pipelined onto pinned
    /// exactly as on the two-sided path.
    pub(crate) fn resolve_rma(&self, peer: Rank, size: usize) -> TransferStrategy {
        if let Some(forced) = *self.inner.forced.lock() {
            return self.inner.cfg.resolve(forced, size);
        }
        let chosen = if let Some(sel) = self.inner.rma_adaptive.lock().as_ref() {
            self.inner.cfg.resolve(sel.choose(peer, size), size)
        } else {
            TransferStrategy::Rma
        };
        if matches!(chosen, TransferStrategy::Pipelined(_))
            && self.inner.fault_state.lock().degraded
        {
            return self.inner.cfg.resolve(TransferStrategy::Pinned, size);
        }
        chosen
    }

    /// Wait (in virtual time) until every outstanding command's machine
    /// has finished. Call before the rank returns.
    pub fn shutdown(&self, actor: &Actor) {
        self.inner.engine.wait_idle(actor);
    }

    // ------------------------------------------------------------------
    // Rank-failure recovery (ULFM-style, over `minimpi`'s surface)
    // ------------------------------------------------------------------

    /// Report communicator-local rank `rank` as failed. In-flight and
    /// future machines touching it abort-and-poison instead of waiting
    /// out their patience; recorded as an `op.failure` span. Idempotent.
    pub fn notify_proc_failure(&self, rank: Rank) {
        if !self.inner.failed.lock().insert(rank) {
            return;
        }
        let now = self.inner.clock.now_ns();
        let ids = self.inner.new_span_ids();
        record_envelope(
            &self.inner,
            &ids,
            "op.failure",
            format!("proc-failure r{rank}"),
            now,
            now,
            0,
            false,
            Some(rank),
            None,
        );
    }

    /// Communicator-local ranks known failed at instant `t`: explicit
    /// notifications plus the fault plan's node-kill schedule.
    pub fn failed_ranks(&self, t: SimNs) -> Vec<Rank> {
        let mut out: std::collections::BTreeSet<Rank> =
            self.inner.failed.lock().iter().copied().collect();
        out.extend(self.inner.comm.failed_ranks(t));
        out.into_iter().collect()
    }

    /// `MPI_Comm_revoke` on the runtime's communicator: every fallible
    /// point-to-point call on it errors with `MpiError::Revoked` on all
    /// members from now on. Recorded as an `op.revoke` span.
    pub fn revoke(&self) {
        self.inner.comm.revoke();
        let now = self.inner.clock.now_ns();
        let ids = self.inner.new_span_ids();
        record_envelope(
            &self.inner,
            &ids,
            "op.revoke",
            "revoke".into(),
            now,
            now,
            0,
            true,
            None,
            None,
        );
    }

    /// `MPI_Comm_shrink`: run the fault-tolerant agreement over the
    /// runtime's communicator and return the survivor communicator with
    /// densely renumbered ranks (see [`Comm::shrink`]). The span
    /// `op.shrink` covers the agreement rounds. The runtime itself keeps
    /// its original communicator — quiesce it with [`ClMpi::shutdown`]
    /// and rebuild with [`ClMpi::with_comm`] on the result.
    pub fn shrink_comm(&self, actor: &Actor, patience_ns: SimNs) -> Result<Comm, MpiError> {
        let t0 = actor.now_ns();
        let res = self.inner.comm.shrink(actor, patience_ns);
        let now = actor.now_ns();
        let ids = self.inner.new_span_ids();
        let name = match &res {
            Ok(c) => format!("shrink {}→{}", self.inner.comm.size(), c.size()),
            Err(e) => format!("shrink failed: {e}"),
        };
        record_envelope(
            &self.inner,
            &ids,
            "op.shrink",
            name,
            t0,
            now,
            0,
            res.is_ok(),
            None,
            None,
        );
        res
    }

    // ------------------------------------------------------------------
    // Inter-node communication commands (paper §IV-A)
    // ------------------------------------------------------------------

    /// `clEnqueueSendBuffer`: send `size` bytes at `offset` of device
    /// buffer `buf` to rank `dst` with `tag`. Gated by `wait_list`;
    /// returns an event that completes when the local send finishes (the
    /// buffer region is reusable). `blocking` waits on `actor`.
    ///
    /// The `queue` argument names the communicator device, exactly as in
    /// the paper — the command itself is ordered by events, not by queue
    /// position (the paper's user-event implementation, §V-A).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_send_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        dst: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if dst >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {dst} out of range")));
        }
        let wire_tag = crate::checked_data_tag(tag)?;
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("send→{dst}#{tag}"));
        let event = ue.event();
        let strategy = self.resolve(size);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(SendOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            size,
            dst,
            tag,
            wire_tag,
            strategy,
            None,
            wait_list.to_vec(),
            ue,
            None,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// `clEnqueueRecvBuffer`: receive `size` bytes into `offset` of device
    /// buffer `buf` from rank `src` with `tag`. Gated by `wait_list`; the
    /// returned event completes when the data is in device memory.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_recv_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        src: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if src >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {src} out of range")));
        }
        let wire_tag = crate::checked_data_tag(tag)?;
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("recv←{src}#{tag}"));
        let event = ue.event();
        let strategy = self.resolve(size);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(RecvOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            size,
            src,
            tag,
            wire_tag,
            strategy,
            None,
            wait_list.to_vec(),
            ue,
            None,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// Combined halo-exchange convenience: enqueue a send of
    /// `(send_offset, size)` to `peer` and a receive into
    /// `(recv_offset, size)` from `peer`, both gated on `wait_list`.
    /// Returns `(send_event, recv_event)`. This is the pattern every
    /// stencil code writes by hand (paper Fig. 6).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_sendrecv_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        send_offset: usize,
        recv_offset: usize,
        size: usize,
        peer: Rank,
        send_tag: Tag,
        recv_tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<(Event, Event)> {
        let es = self.enqueue_send_buffer(
            queue,
            buf,
            false,
            send_offset,
            size,
            peer,
            send_tag,
            wait_list,
            actor,
        )?;
        let er = self.enqueue_recv_buffer(
            queue,
            buf,
            false,
            recv_offset,
            size,
            peer,
            recv_tag,
            wait_list,
            actor,
        )?;
        Ok((es, er))
    }

    // ------------------------------------------------------------------
    // Derived-datatype transfers (TEMPI-style device-side packing)
    // ------------------------------------------------------------------

    /// The wire strategy a pack mode lowers to: the contiguous packed
    /// payload is staged (pinned) for the one-shot modes, or chunked
    /// (pipelined) so pack kernels overlap earlier chunks' wire time.
    fn pack_wire_strategy(&self, mode: PackMode, packed: usize) -> TransferStrategy {
        match mode {
            PackMode::HostPack | PackMode::DevicePack => TransferStrategy::Pinned,
            PackMode::PipelinedPack => self
                .inner
                .cfg
                .resolve(TransferStrategy::Pipelined(0), packed.max(1)),
        }
    }

    /// `clEnqueueSendBufferDatatype`: send the committed derived type
    /// `ty`, described over the region starting at `offset` of device
    /// buffer `buf`, to rank `dst`. Only the type map's bytes
    /// ([`CommittedType::packed_size`]) cross PCIe and the wire; `mode`
    /// decides who canonicalizes them (host gather vs on-device pack
    /// kernel vs pack fused into the pipelined transfer). A contiguous
    /// committed type takes the plain contiguous path unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_send_datatype(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        ty: &CommittedType,
        mode: PackMode,
        dst: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, ty.extent())?;
        if ty.is_contiguous() {
            return self.enqueue_send_buffer(
                queue,
                buf,
                blocking,
                offset,
                ty.packed_size(),
                dst,
                tag,
                wait_list,
                actor,
            );
        }
        if dst >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {dst} out of range")));
        }
        let wire_tag = crate::checked_data_tag(tag)?;
        let packed = ty.packed_size();
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("send-dt→{dst}#{tag}"));
        let event = ue.event();
        let strategy = self.pack_wire_strategy(mode, packed);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(SendOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            packed,
            dst,
            tag,
            wire_tag,
            strategy,
            Some(Lowering {
                ty: ty.clone(),
                mode,
            }),
            wait_list.to_vec(),
            ue,
            None,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// `clEnqueueRecvBufferDatatype`: receive the committed derived type
    /// `ty` into the region starting at `offset` of device buffer `buf`
    /// from rank `src`. The wire carries the packed bytes; `mode` decides
    /// whether the host scatters them segment-by-segment or an on-device
    /// unpack kernel does (with the pipelined mode unpacking chunk *k*
    /// while chunk *k+1* is still on the wire).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_recv_datatype(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        ty: &CommittedType,
        mode: PackMode,
        src: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, ty.extent())?;
        if ty.is_contiguous() {
            return self.enqueue_recv_buffer(
                queue,
                buf,
                blocking,
                offset,
                ty.packed_size(),
                src,
                tag,
                wait_list,
                actor,
            );
        }
        if src >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {src} out of range")));
        }
        let wire_tag = crate::checked_data_tag(tag)?;
        let packed = ty.packed_size();
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("recv-dt←{src}#{tag}"));
        let event = ue.event();
        let strategy = self.pack_wire_strategy(mode, packed);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(RecvOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            packed,
            src,
            tag,
            wire_tag,
            strategy,
            Some(Lowering {
                ty: ty.clone(),
                mode,
            }),
            wait_list.to_vec(),
            ue,
            None,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    // ------------------------------------------------------------------
    // GPU-aware MPI comparator (paper §II related work)
    // ------------------------------------------------------------------

    /// A **GPU-aware MPI** send, as in cudaMPI / MPI-ACC / MVAPICH2-GPU:
    /// the MPI call accepts a device buffer directly and uses the same
    /// optimized transfer path as clMPI — but it blocks **the calling
    /// host thread** until the send completes. The caller must have
    /// already synchronized with any producing kernel (that is the §II
    /// limitation clMPI removes: "the host thread needs to wait for the
    /// kernel execution completion in order to serialize the kernel
    /// execution and the MPI communication").
    #[allow(clippy::too_many_arguments)]
    pub fn gpu_aware_send(
        &self,
        actor: &Actor,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        dst: Rank,
        tag: Tag,
    ) -> ClResult<()> {
        buf.check_range(offset, size)?;
        let strategy = self.resolve(size);
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("gpu-send→{dst}#{tag}"));
        let slot: ResultSlot = Arc::new(Monitor::new(self.inner.clock.clone(), None));
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(SendOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            size,
            dst,
            tag,
            data_tag(tag),
            strategy,
            None,
            Vec::new(),
            ue,
            Some(slot.clone()),
            ids,
            self.inner.clock.now_ns(),
        )));
        // blocking-api: GPU-aware MPI is synchronous by definition.
        slot.wait_labeled(actor, "gpu-aware send", |s| s.take())
    }

    /// GPU-aware MPI receive into a device buffer; blocks the calling
    /// host thread until the data is in device memory.
    #[allow(clippy::too_many_arguments)]
    pub fn gpu_aware_recv(
        &self,
        actor: &Actor,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        src: Rank,
        tag: Tag,
    ) -> ClResult<()> {
        buf.check_range(offset, size)?;
        let strategy = self.resolve(size);
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("gpu-recv←{src}#{tag}"));
        let slot: ResultSlot = Arc::new(Monitor::new(self.inner.clock.clone(), None));
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(RecvOp::new(
            self.inner.clone(),
            queue.device().clone(),
            buf.clone(),
            offset,
            size,
            src,
            tag,
            data_tag(tag),
            strategy,
            None,
            Vec::new(),
            ue,
            Some(slot.clone()),
            ids,
            self.inner.clock.now_ns(),
        )));
        // blocking-api: GPU-aware MPI is synchronous by definition.
        slot.wait_labeled(actor, "gpu-aware recv", |s| s.take())
    }

    // ------------------------------------------------------------------
    // MPI interoperability (paper §IV-C)
    // ------------------------------------------------------------------

    /// `clCreateEventFromMPIRequest`: wrap a non-blocking MPI request in
    /// an event so OpenCL commands can depend on it. For receives, the
    /// payload lands in the returned [`RequestOutcome`].
    pub fn event_from_request(&self, req: Request) -> (Event, RequestOutcome) {
        let ue = self.inner.ctx.create_user_event("mpi-request");
        let event = ue.event();
        let outcome = RequestOutcome {
            slot: Arc::new(Monitor::new(self.inner.clock.clone(), None)),
        };
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(EventFromRequestOp::new(
            self.inner.clone(),
            req,
            ue,
            outcome.slot.clone(),
            ids,
            self.inner.clock.now_ns(),
        )));
        (event, outcome)
    }

    /// `MPI_Isend` with `MPI_CL_MEM` from **host** memory to a remote
    /// communicator device: the runtime chunks the payload so the remote
    /// side can overlap its host→device stage with the network (§V-A's
    /// wrapper functions). The send progresses on the engine; the caller
    /// resumes as soon as the initial injection burst is on the wire.
    pub fn isend_cl(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) -> ClSendRequest {
        let strategy = self.resolve(data.len());
        let plan = ResolvedStrategy::plan(strategy, data.len());
        let net = &self.inner.cfg.cluster.link;
        let pcie = &self.inner.cfg.device.pcie;
        let wire_tag = data_tag(tag);
        let chunks: Vec<(Vec<u8>, Option<SimNs>)> = plan
            .chunks
            .iter()
            .map(|&(off, len)| {
                let duration = match strategy {
                    TransferStrategy::Mapped => {
                        let stream = (len as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
                        Some(net.injection_ns(len).max(stream))
                    }
                    _ => None,
                };
                (data[off..off + len].to_vec(), duration)
            })
            .collect();
        let issued = Arc::new(Monitor::new(self.inner.clock.clone(), false));
        let slot: SendSlot = Arc::new(Monitor::new(self.inner.clock.clone(), None));
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(HostSendOp::new(
            self.inner.clone(),
            dst,
            wire_tag,
            chunks,
            issued.clone(),
            slot.clone(),
            ids,
            self.inner.clock.now_ns(),
        )));
        // Hand-off handshake: resume once the engine has pushed the first
        // injection burst onto the wire, keeping the fabric reservation
        // order identical to an inline send (costs no virtual time — the
        // engine runs at this same frozen instant).
        // blocking-api: submission handshake at one frozen virtual instant.
        issued.wait_labeled(actor, "clmpi isend_cl", |i| i.then_some(()));
        ClSendRequest { slot }
    }

    /// Blocking [`ClMpi::isend_cl`] (`MPI_Send` with `MPI_CL_MEM`).
    pub fn send_cl(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) {
        self.isend_cl(actor, dst, tag, data).wait(actor); // blocking-api: MPI_Send semantics
    }

    /// `MPI_Irecv` with `MPI_CL_MEM` into **host** memory from a remote
    /// communicator device: drains the sender's wire chunks into a host
    /// buffer; the returned request's event completes when all `size`
    /// bytes have arrived.
    pub fn irecv_cl(&self, _actor: &Actor, src: Rank, tag: Tag, size: usize) -> ClRecvRequest {
        // Map the tag on the calling thread: a bad tag is the caller's
        // error and must not panic the engine.
        let wire_tag = data_tag(tag);
        let ue = self.inner.ctx.create_user_event(format!("irecv_cl←{src}"));
        let event = ue.event();
        let host = HostBuffer::pinned(size);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(IrecvClOp::new(
            self.inner.clone(),
            src,
            wire_tag,
            size,
            host.clone(),
            ue,
            ids,
            self.inner.clock.now_ns(),
        )));
        ClRecvRequest { event, data: host }
    }

    // ------------------------------------------------------------------
    // One-sided window commands (`MPI_CL_MEM` exposed as `MPI_Win`)
    // ------------------------------------------------------------------

    /// Collectively expose the first `size` bytes of device buffer `buf`
    /// as an `MPI_Win`: every rank of the communicator must call this
    /// with its own buffer. The window's host segment is registered at
    /// creation (the pinned staging image the wire reads and writes) and
    /// seeded from the device buffer; the first access epoch is opened
    /// before returning, so put/get/accumulate commands can be enqueued
    /// immediately. Blocking (it is a collective), like `MPI_Win_create`.
    pub fn expose_buffer_as_window(
        &self,
        buf: &Buffer,
        size: usize,
        actor: &Actor,
    ) -> ClResult<ClWindow> {
        buf.check_range(0, size)?;
        let win = Win::create(&self.inner.comm, actor, size) // blocking-api: collective window creation
            .map_err(|e| ClError::TransferFailed(format!("win_create: {e}")))?;
        let image = buf.load(0, size).expect("range checked above");
        win.write_local(0, &image);
        win.fence(actor) // blocking-api: opens the first access epoch collectively
            .map_err(|e| ClError::TransferFailed(format!("win_create fence: {e}")))?;
        Ok(ClWindow {
            win,
            buf: buf.clone(),
            size,
        })
    }

    /// `clEnqueuePutBuffer`: one-sided write of `size` bytes at `offset`
    /// of device buffer `buf` into `target`'s window at `win_offset`.
    /// Gated by `wait_list`; the returned event completes when the bytes
    /// have landed in the target's window segment. The wire lowering is
    /// resolved per (peer, size) — see [`ClMpi::set_rma_adaptive`].
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_put_buffer(
        &self,
        queue: &CommandQueue,
        win: &ClWindow,
        blocking: bool,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        win.buf.check_range(offset, size)?;
        self.check_win_range(win, target, win_offset, size)?;
        let ue = self.inner.ctx.create_user_event(format!("put→{target}"));
        let event = ue.event();
        let strategy = self.resolve_rma(target, size);
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(PutOp::new(
            self.inner.clone(),
            queue.device().clone(),
            win.win.clone(),
            win.buf.clone(),
            offset,
            win_offset,
            size,
            target,
            strategy,
            wait_list.to_vec(),
            ue,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// `clEnqueueGetBuffer`: one-sided read of `size` bytes from
    /// `target`'s window at `win_offset` into `offset` of device buffer
    /// `buf`. Gated by `wait_list`; the returned event completes when
    /// the data is in device memory.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_get_buffer(
        &self,
        queue: &CommandQueue,
        win: &ClWindow,
        blocking: bool,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        win.buf.check_range(offset, size)?;
        self.check_win_range(win, target, win_offset, size)?;
        let ue = self.inner.ctx.create_user_event(format!("get←{target}"));
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(GetOp::new(
            self.inner.clone(),
            queue.device().clone(),
            win.win.clone(),
            win.buf.clone(),
            offset,
            win_offset,
            size,
            target,
            wait_list.to_vec(),
            ue,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// `clEnqueueAccumulateBuffer`: one-sided read-modify-write of the
    /// f64s in `(offset, size)` of device buffer `buf` into `target`'s
    /// window at `win_offset` with `op`. Concurrent accumulates from
    /// different ranks apply in the fabric arbiter's canonical grant
    /// order, so the result is deterministic.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_accumulate_buffer(
        &self,
        queue: &CommandQueue,
        win: &ClWindow,
        blocking: bool,
        offset: usize,
        win_offset: usize,
        size: usize,
        target: Rank,
        op: ReduceOp,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        win.buf.check_range(offset, size)?;
        self.check_win_range(win, target, win_offset, size)?;
        if !size.is_multiple_of(8) {
            return Err(ClError::InvalidValue(format!(
                "accumulate size {size} is not a multiple of 8 (f64 elements)"
            )));
        }
        let ue = self.inner.ctx.create_user_event(format!("acc→{target}"));
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(AccumulateOp::new(
            self.inner.clone(),
            queue.device().clone(),
            win.win.clone(),
            win.buf.clone(),
            offset,
            win_offset,
            size,
            target,
            op,
            wait_list.to_vec(),
            ue,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// `clEnqueueWinFence`: close the window's current access epoch and
    /// open the next. The returned event completes once every rank's
    /// matching fence has been reached and this rank's epoch ops have
    /// settled; an op failure latched during the epoch fails the event.
    /// Every rank must enqueue a matching fence (it synchronizes like
    /// `MPI_Win_fence`).
    pub fn enqueue_win_fence(
        &self,
        win: &ClWindow,
        blocking: bool,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        let ue = self.inner.ctx.create_user_event("win-fence".to_string());
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(WinFenceOp::new(
            self.inner.clone(),
            win.win.clone(),
            wait_list.to_vec(),
            ue,
            ids,
            self.inner.clock.now_ns(),
        )));
        if blocking {
            event.wait(actor); // blocking-api: explicit blocking enqueue flag
        }
        Ok(event)
    }

    /// Sync `size` bytes of the window's local segment at `win_offset`
    /// back into the shadowed device buffer at the same offset (h2d is
    /// modeled by the enqueue path that produced the segment bytes; this
    /// is the instantaneous control-plane view used between epochs).
    pub fn window_to_buffer(&self, win: &ClWindow, offset: usize, size: usize) -> ClResult<()> {
        win.buf.check_range(offset, size)?;
        let seg = win.win.read_local();
        if offset + size > seg.len() {
            return Err(ClError::InvalidValue(format!(
                "window range {offset}+{size} exceeds segment of {}",
                seg.len()
            )));
        }
        win.buf
            .store(offset, &seg[offset..offset + size])
            .expect("range checked above");
        Ok(())
    }

    fn check_win_range(
        &self,
        win: &ClWindow,
        target: Rank,
        win_offset: usize,
        size: usize,
    ) -> ClResult<()> {
        if target >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {target} out of range")));
        }
        let exposed = win.win.size_of(target);
        if win_offset.checked_add(size).is_none_or(|end| end > exposed) {
            return Err(ClError::InvalidValue(format!(
                "window range {win_offset}+{size} exceeds rank {target}'s {exposed}-byte window"
            )));
        }
        Ok(())
    }
}

/// An `MPI_CL_MEM` device buffer exposed as an `MPI_Win` (created by
/// [`ClMpi::expose_buffer_as_window`]): pairs the window — whose local
/// segment is the registered host staging image the wire reads and
/// writes — with the device buffer it shadows. Clones share the window's
/// epoch state.
#[derive(Clone)]
pub struct ClWindow {
    win: Win,
    buf: Buffer,
    size: usize,
}

impl ClWindow {
    /// The underlying `minimpi` window (epoch control, local segment).
    pub fn win(&self) -> &Win {
        &self.win
    }

    /// The shadowed device buffer.
    pub fn buffer(&self) -> &Buffer {
        &self.buf
    }

    /// Exposed bytes of this rank's segment.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // clock is poisoned; the engine worker dies on its own
        }
        if self.engine.on_worker_thread() {
            // The engine's last machine held the last runtime handle: the
            // worker is already draining, and must not join itself (the
            // Engine field's drop skips the self-join too).
            return;
        }
        if self.engine.active() > 0 {
            // Wait clock-aware for outstanding machines with a temporary
            // actor (the dropping thread is a running actor, so
            // registration is legal); the Engine field's drop then reaps
            // the worker thread.
            let tmp = self.clock.register("clmpi-drop");
            self.engine.wait_idle(&tmp);
        }
    }
}

/// Completion handle of a host-side `MPI_CL_MEM` send. The transfer
/// progresses on the rank's engine; this handle only observes it.
#[must_use = "wait the request to observe send completion"]
pub struct ClSendRequest {
    slot: SendSlot,
}

impl ClSendRequest {
    /// Block until the send's injection completes (buffer reusable).
    /// Panics if the transfer failed permanently; use
    /// [`ClSendRequest::wait_result`] to handle that gracefully.
    pub fn wait(&self, actor: &Actor) {
        // blocking-api: the whole point of waiting a send request.
        let outcome = self
            .slot
            .wait_labeled(actor, "isend_cl done", |s| s.clone());
        match outcome {
            Ok(done_at) => actor.advance_until(done_at),
            Err(e) => panic!("{e}"),
        }
    }

    /// Block until the send completes, or return the transfer error if
    /// the retry budget was exhausted.
    pub fn wait_result(self, actor: &Actor) -> ClResult<()> {
        // blocking-api: the whole point of waiting a send request.
        let outcome = self
            .slot
            .wait_labeled(actor, "isend_cl done", |s| s.clone());
        match outcome {
            Ok(done_at) => {
                actor.advance_until(done_at);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

/// Handle of a host-side `MPI_CL_MEM` receive: an event plus the host
/// buffer the payload lands in.
pub struct ClRecvRequest {
    /// Completes when all bytes have arrived in [`ClRecvRequest::data`].
    pub event: Event,
    /// Destination host buffer.
    pub data: HostBuffer,
}

/// Where the payload of an [`ClMpi::event_from_request`]-wrapped receive
/// lands once the event completes.
#[derive(Clone)]
pub struct RequestOutcome {
    slot: Arc<Monitor<Option<RecvResult>>>,
}

impl RequestOutcome {
    /// Take the receive result (None for sends, or if already taken).
    pub fn take(&self) -> Option<RecvResult> {
        self.slot.with(|s| s.take())
    }
}
