//! The clMPI runtime: inter-node communication commands and MPI interop.
//!
//! ### Implementation notes (vs. paper §V-A)
//!
//! The paper implements the extension *on top of* a proprietary OpenCL:
//! inter-node communication commands return **user events** that mimic
//! command events, and a runtime-internal thread executes the MPI calls so
//! the host thread is never blocked. This reproduction does the same, with
//! one simplification: instead of one long-lived communication thread
//! multiplexing requests, each communication command runs on its own
//! short-lived runtime thread (a clock actor). The observable semantics
//! are identical — transfers begin when their wait lists complete and
//! progress with no host involvement — while avoiding a hand-rolled
//! progress engine. Resource contention (PCIe, NIC) is still fully
//! accounted through the shared reservation timelines.

use simtime::plock::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

use minicl::{
    Buffer, ClError, ClResult, CommandQueue, Context, Device, Event, HostBuffer,
    EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST,
};
use minimpi::{Comm, Datatype, MpiError, Process, Rank, RecvResult, Request, Tag};
use simtime::{Actor, Monitor, SimClock, SimNs, Trace};

use crate::retry::RetryPolicy;
use crate::strategy::{ResolvedStrategy, TransferStrategy};
use crate::system::SystemConfig;
use crate::{data_tag, CL_MPI_TRANSFER_ERROR};

/// Loss bookkeeping behind the degradation heuristic.
#[derive(Default)]
struct FaultState {
    /// Chunk losses observed since the last successful delivery.
    consecutive_drops: u32,
    /// Once set, pipelined transfers resolve to pinned (fewer wire
    /// messages → fewer loss draws) until [`ClMpi::reset_degradation`].
    degraded: bool,
}

pub(crate) struct Inner {
    comm: Comm,
    ctx: Context,
    device: Device,
    cfg: SystemConfig,
    forced: Mutex<Option<TransferStrategy>>,
    outstanding: Monitor<usize>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    trace: Trace,
    stats: Mutex<Option<crate::stats::TransferStats>>,
    adaptive: Mutex<Option<Arc<crate::adaptive::AdaptiveSelector>>>,
    retry: Mutex<RetryPolicy>,
    fault_state: Mutex<FaultState>,
}

/// The per-rank clMPI runtime: binds one MPI endpoint to one OpenCL
/// context/device and provides the extension API.
#[derive(Clone)]
pub struct ClMpi {
    inner: Arc<Inner>,
}

impl ClMpi {
    /// Create the runtime for `p`'s rank under system config `cfg`. Builds
    /// a fresh [`Context`] holding `cfg.device`.
    pub fn new(p: &Process, cfg: SystemConfig) -> Self {
        let clock = p.clock().clone();
        let ctx = Context::new(clock.clone(), &[cfg.device]);
        let device = ctx.device(0).clone();
        let trace = p.comm.world().trace().clone();
        ClMpi {
            inner: Arc::new(Inner {
                comm: p.comm.clone(),
                ctx,
                device,
                cfg,
                forced: Mutex::new(None),
                outstanding: Monitor::new(clock, 0),
                handles: Mutex::new(Vec::new()),
                trace,
                stats: Mutex::new(None),
                adaptive: Mutex::new(None),
                retry: Mutex::new(RetryPolicy::default()),
                fault_state: Mutex::new(FaultState::default()),
            }),
        }
    }

    /// The OpenCL context this runtime manages.
    pub fn context(&self) -> &Context {
        &self.inner.ctx
    }

    /// The communicator device.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The MPI endpoint.
    pub fn comm(&self) -> &Comm {
        &self.inner.comm
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.inner.cfg
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.inner.comm.rank()
    }

    /// Force every subsequent transfer onto `strategy` (`None` restores
    /// automatic selection). Used by the Fig. 8 strategy sweeps.
    pub fn set_forced_strategy(&self, strategy: Option<TransferStrategy>) {
        *self.inner.forced.lock() = strategy;
    }

    /// Attach a measurement-based strategy tuner (see
    /// [`crate::adaptive::AdaptiveSelector`]); it overrides the static
    /// policy until detached with `None`. A forced strategy
    /// ([`ClMpi::set_forced_strategy`]) still takes precedence.
    pub fn set_adaptive(&self, selector: Option<Arc<crate::adaptive::AdaptiveSelector>>) {
        *self.inner.adaptive.lock() = selector;
    }

    /// Set how transfers react to observed chunk loss (attempt budget,
    /// backoff schedule, degradation threshold, receiver patience).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.inner.retry.lock() = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.inner.retry.lock()
    }

    /// True once repeated chunk loss has degraded pipelined transfers to
    /// pinned (see [`RetryPolicy::degrade_after`]).
    pub fn is_degraded(&self) -> bool {
        self.inner.fault_state.lock().degraded
    }

    /// Clear the degradation latch (e.g. after the operator restored the
    /// link), letting pipelined transfers resolve normally again.
    pub fn reset_degradation(&self) {
        let mut fs = self.inner.fault_state.lock();
        fs.degraded = false;
        fs.consecutive_drops = 0;
    }

    /// Attach (and return) a transfer-statistics collector: every
    /// subsequent transfer records its direction, resolved strategy,
    /// bytes, and virtual duration.
    pub fn enable_stats(&self) -> crate::stats::TransferStats {
        let stats = crate::stats::TransferStats::new();
        *self.inner.stats.lock() = Some(stats.clone());
        stats
    }

    fn clock(&self) -> &SimClock {
        self.inner.outstanding.clock()
    }

    pub(crate) fn inner_handle(&self) -> Arc<Inner> {
        self.inner.clone()
    }

    pub(crate) fn resolved_for(&self, size: usize) -> TransferStrategy {
        self.resolve(size)
    }

    pub(crate) fn spawn_runtime_job(
        &self,
        label: String,
        job: impl FnOnce(&Actor) + Send + 'static,
    ) {
        self.spawn_job(label, job)
    }

    fn resolve(&self, size: usize) -> TransferStrategy {
        // A forced strategy is an explicit benchmark request: honored
        // verbatim, even under degradation.
        if let Some(forced) = *self.inner.forced.lock() {
            return self.inner.cfg.resolve(forced, size);
        }
        let chosen = if let Some(sel) = self.inner.adaptive.lock().as_ref() {
            self.inner.cfg.resolve(sel.choose(size), size)
        } else {
            self.inner.cfg.resolve(TransferStrategy::Auto, size)
        };
        if matches!(chosen, TransferStrategy::Pipelined(_))
            && self.inner.fault_state.lock().degraded
        {
            return self.inner.cfg.resolve(TransferStrategy::Pinned, size);
        }
        chosen
    }

    /// Spawn a runtime communication thread (clock actor). The calling
    /// thread must itself be a running actor (the registration rule).
    fn spawn_job(&self, label: String, job: impl FnOnce(&Actor) + Send + 'static) {
        let actor = self.clock().register(label.clone());
        self.inner.outstanding.with(|n| *n += 1);
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name(label)
            .spawn(move || {
                job(&actor);
                // Decrement while still registered: dropping the actor
                // first would let the deadlock detector fire in the gap
                // where shutdown waiters still see outstanding > 0.
                inner.outstanding.with(|n| *n -= 1);
                drop(actor);
            })
            .expect("spawn clMPI communication thread");
        self.inner.handles.lock().push(handle);
    }

    /// Wait (in virtual time) for all outstanding communication commands,
    /// then reap the runtime threads. Call before the rank returns.
    pub fn shutdown(&self, actor: &Actor) {
        self.inner
            .outstanding
            .wait_labeled(actor, "clmpi shutdown", |n| (*n == 0).then_some(()));
        for h in self.inner.handles.lock().drain(..) {
            let _ = h.join();
        }
    }

    // ------------------------------------------------------------------
    // Inter-node communication commands (paper §IV-A)
    // ------------------------------------------------------------------

    /// `clEnqueueSendBuffer`: send `size` bytes at `offset` of device
    /// buffer `buf` to rank `dst` with `tag`. Gated by `wait_list`;
    /// returns an event that completes when the local send finishes (the
    /// buffer region is reusable). `blocking` waits on `actor`.
    ///
    /// The `queue` argument names the communicator device, exactly as in
    /// the paper — the command itself is ordered by events, not by queue
    /// position (the paper's user-event implementation, §V-A).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_send_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        dst: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if dst >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {dst} out of range")));
        }
        crate::checked_data_tag(tag)?;
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("send→{dst}#{tag}"));
        let event = ue.event();
        let inner = self.inner.clone();
        let strategy = self.resolve(size);
        let wait: Vec<Event> = wait_list.to_vec();
        let buf = buf.clone();
        let device = queue.device().clone();
        self.spawn_job(format!("clmpi-send-r{}-t{tag}", self.rank()), move |a| {
            if Event::wait_all_result(&wait, a).is_err() {
                // A failed dependency poisons this command, as the queue
                // executor does for ordinary OpenCL commands.
                ue.set_failed(a.now_ns(), EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                    .expect("send event settled once");
                return;
            }
            match run_send(&inner, &device, &buf, offset, size, dst, tag, strategy, a) {
                Ok(done_at) => {
                    a.advance_until(done_at);
                    ue.set_complete(a.now_ns())
                        .expect("send event completed once");
                }
                Err(_) => {
                    ue.set_failed(a.now_ns(), CL_MPI_TRANSFER_ERROR)
                        .expect("send event settled once");
                }
            }
        });
        if blocking {
            event.wait(actor);
        }
        Ok(event)
    }

    /// `clEnqueueRecvBuffer`: receive `size` bytes into `offset` of device
    /// buffer `buf` from rank `src` with `tag`. Gated by `wait_list`; the
    /// returned event completes when the data is in device memory.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_recv_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        blocking: bool,
        offset: usize,
        size: usize,
        src: Rank,
        tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        if src >= self.inner.comm.size() {
            return Err(ClError::InvalidValue(format!("rank {src} out of range")));
        }
        crate::checked_data_tag(tag)?;
        let ue = self
            .inner
            .ctx
            .create_user_event(format!("recv←{src}#{tag}"));
        let event = ue.event();
        let inner = self.inner.clone();
        let strategy = self.resolve(size);
        let wait: Vec<Event> = wait_list.to_vec();
        let buf = buf.clone();
        let device = queue.device().clone();
        self.spawn_job(format!("clmpi-recv-r{}-t{tag}", self.rank()), move |a| {
            if Event::wait_all_result(&wait, a).is_err() {
                ue.set_failed(a.now_ns(), EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST)
                    .expect("recv event settled once");
                return;
            }
            match run_recv(&inner, &device, &buf, offset, size, src, tag, strategy, a) {
                Ok(()) => ue
                    .set_complete(a.now_ns())
                    .expect("recv event completed once"),
                Err(_) => ue
                    .set_failed(a.now_ns(), CL_MPI_TRANSFER_ERROR)
                    .expect("recv event settled once"),
            }
        });
        if blocking {
            event.wait(actor);
        }
        Ok(event)
    }

    /// Combined halo-exchange convenience: enqueue a send of
    /// `(send_offset, size)` to `peer` and a receive into
    /// `(recv_offset, size)` from `peer`, both gated on `wait_list`.
    /// Returns `(send_event, recv_event)`. This is the pattern every
    /// stencil code writes by hand (paper Fig. 6).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_sendrecv_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        send_offset: usize,
        recv_offset: usize,
        size: usize,
        peer: Rank,
        send_tag: Tag,
        recv_tag: Tag,
        wait_list: &[Event],
        actor: &Actor,
    ) -> ClResult<(Event, Event)> {
        let es = self.enqueue_send_buffer(
            queue,
            buf,
            false,
            send_offset,
            size,
            peer,
            send_tag,
            wait_list,
            actor,
        )?;
        let er = self.enqueue_recv_buffer(
            queue,
            buf,
            false,
            recv_offset,
            size,
            peer,
            recv_tag,
            wait_list,
            actor,
        )?;
        Ok((es, er))
    }

    // ------------------------------------------------------------------
    // GPU-aware MPI comparator (paper §II related work)
    // ------------------------------------------------------------------

    /// A **GPU-aware MPI** send, as in cudaMPI / MPI-ACC / MVAPICH2-GPU:
    /// the MPI call accepts a device buffer directly and uses the same
    /// optimized transfer path as clMPI — but it executes **on the calling
    /// host thread**, which blocks until the send completes. The caller
    /// must have already synchronized with any producing kernel (that is
    /// the §II limitation clMPI removes: "the host thread needs to wait
    /// for the kernel execution completion in order to serialize the
    /// kernel execution and the MPI communication").
    #[allow(clippy::too_many_arguments)]
    pub fn gpu_aware_send(
        &self,
        actor: &Actor,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        dst: Rank,
        tag: Tag,
    ) -> ClResult<()> {
        buf.check_range(offset, size)?;
        let strategy = self.resolve(size);
        let done = run_send(
            &self.inner,
            queue.device(),
            buf,
            offset,
            size,
            dst,
            tag,
            strategy,
            actor,
        )?;
        actor.advance_until(done);
        Ok(())
    }

    /// GPU-aware MPI receive into a device buffer; blocks the calling
    /// host thread until the data is in device memory.
    #[allow(clippy::too_many_arguments)]
    pub fn gpu_aware_recv(
        &self,
        actor: &Actor,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        src: Rank,
        tag: Tag,
    ) -> ClResult<()> {
        buf.check_range(offset, size)?;
        let strategy = self.resolve(size);
        run_recv(
            &self.inner,
            queue.device(),
            buf,
            offset,
            size,
            src,
            tag,
            strategy,
            actor,
        )
    }

    // ------------------------------------------------------------------
    // MPI interoperability (paper §IV-C)
    // ------------------------------------------------------------------

    /// `clCreateEventFromMPIRequest`: wrap a non-blocking MPI request in
    /// an event so OpenCL commands can depend on it. For receives, the
    /// payload lands in the returned [`RequestOutcome`].
    pub fn event_from_request(&self, req: Request) -> (Event, RequestOutcome) {
        let ue = self.inner.ctx.create_user_event("mpi-request");
        let event = ue.event();
        let outcome = RequestOutcome {
            slot: Arc::new(Monitor::new(self.clock().clone(), None)),
        };
        let slot = outcome.slot.clone();
        self.spawn_job(format!("clmpi-evreq-r{}", self.rank()), move |a| {
            let result = req.wait(a);
            slot.with(|s| *s = result);
            ue.set_complete(a.now_ns())
                .expect("request event completed once");
        });
        (event, outcome)
    }

    /// `MPI_Isend` with `MPI_CL_MEM` from **host** memory to a remote
    /// communicator device: the runtime chunks the payload so the remote
    /// side can overlap its host→device stage with the network (§V-A's
    /// wrapper functions).
    pub fn isend_cl(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) -> ClSendRequest {
        let strategy = self.resolve(data.len());
        let plan = ResolvedStrategy::plan(strategy, data.len());
        let net = &self.inner.cfg.cluster.link;
        let pcie = &self.inner.cfg.device.pcie;
        let mut done_at = actor.now_ns();
        let mut error = None;
        for &(off, len) in &plan.chunks {
            let duration = match strategy {
                TransferStrategy::Mapped => {
                    let stream = (len as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
                    Some(net.injection_ns(len).max(stream))
                }
                _ => None,
            };
            match send_chunk_reliable(
                &self.inner,
                actor,
                dst,
                data_tag(tag),
                Datatype::ClMem,
                &data[off..off + len],
                actor.now_ns(),
                duration,
            ) {
                Ok(done) => done_at = done,
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        ClSendRequest { done_at, error }
    }

    /// Blocking [`ClMpi::isend_cl`] (`MPI_Send` with `MPI_CL_MEM`).
    pub fn send_cl(&self, actor: &Actor, dst: Rank, tag: Tag, data: &[u8]) {
        self.isend_cl(actor, dst, tag, data).wait(actor);
    }

    /// `MPI_Irecv` with `MPI_CL_MEM` into **host** memory from a remote
    /// communicator device: drains the sender's wire chunks into a host
    /// buffer; the returned request's event completes when all `size`
    /// bytes have arrived.
    pub fn irecv_cl(&self, _actor: &Actor, src: Rank, tag: Tag, size: usize) -> ClRecvRequest {
        // Map the tag on the calling thread: a bad tag is the caller's
        // error and must not panic a runtime thread.
        let wire_tag = data_tag(tag);
        let ue = self.inner.ctx.create_user_event(format!("irecv_cl←{src}"));
        let event = ue.event();
        let host = HostBuffer::pinned(size);
        let host2 = host.clone();
        let inner = self.inner.clone();
        self.spawn_job(format!("clmpi-irecvcl-r{}", self.rank()), move |a| {
            let mut received = 0usize;
            while received < size {
                let r = match recv_chunk(&inner, a, src, wire_tag) {
                    Ok(r) => r,
                    Err(_) => {
                        ue.set_failed(a.now_ns(), CL_MPI_TRANSFER_ERROR)
                            .expect("irecv_cl event settled once");
                        return;
                    }
                };
                if received + r.data.len() > size {
                    // Sender sent more than the posted size: a permanent
                    // protocol failure, reported through the event.
                    ue.set_failed(a.now_ns(), CL_MPI_TRANSFER_ERROR)
                        .expect("irecv_cl event settled once");
                    return;
                }
                host2.write(|h| {
                    h.as_mut_slice()[received..received + r.data.len()].copy_from_slice(&r.data)
                });
                received += r.data.len();
            }
            ue.set_complete(a.now_ns())
                .expect("irecv_cl completed once");
        });
        ClRecvRequest { event, data: host }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if std::thread::panicking() {
            return; // clock is poisoned; runtime threads die on their own
        }
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        if handles.is_empty() {
            return;
        }
        // Wait clock-aware for outstanding jobs with a temporary actor
        // (the dropping thread is a running actor, so registration is
        // legal), then reap the threads.
        let tmp = self.outstanding.clock().register("clmpi-drop");
        self.outstanding
            .wait_labeled(&tmp, "clmpi drop", |n| (*n == 0).then_some(()));
        drop(tmp);
        let me = std::thread::current().id();
        for h in handles {
            // If the last owner of the runtime is one of its own job
            // threads, it cannot join itself.
            if h.thread().id() != me {
                let _ = h.join();
            }
        }
    }
}

impl Inner {
    pub(crate) fn comm_handle(&self) -> &Comm {
        &self.comm
    }
}

/// Completion handle of a host-side `MPI_CL_MEM` send.
#[must_use = "wait the request to observe send completion"]
pub struct ClSendRequest {
    done_at: SimNs,
    error: Option<ClError>,
}

impl ClSendRequest {
    /// Block until the send's injection completes (buffer reusable).
    /// Panics if the transfer failed permanently; use
    /// [`ClSendRequest::wait_result`] to handle that gracefully.
    pub fn wait(&self, actor: &Actor) {
        if let Some(e) = &self.error {
            panic!("{e}");
        }
        actor.advance_until(self.done_at);
    }

    /// Block until the send completes, or return the transfer error if
    /// the retry budget was exhausted.
    pub fn wait_result(self, actor: &Actor) -> ClResult<()> {
        match self.error {
            Some(e) => Err(e),
            None => {
                actor.advance_until(self.done_at);
                Ok(())
            }
        }
    }

    /// The permanent transfer error, if the send failed.
    pub fn error(&self) -> Option<&ClError> {
        self.error.as_ref()
    }

    /// Virtual completion instant.
    pub fn done_at(&self) -> SimNs {
        self.done_at
    }
}

/// Handle of a host-side `MPI_CL_MEM` receive: an event plus the host
/// buffer the payload lands in.
pub struct ClRecvRequest {
    /// Completes when all bytes have arrived in [`ClRecvRequest::data`].
    pub event: Event,
    /// Destination host buffer.
    pub data: HostBuffer,
}

/// Where the payload of an [`ClMpi::event_from_request`]-wrapped receive
/// lands once the event completes.
#[derive(Clone)]
pub struct RequestOutcome {
    slot: Arc<Monitor<Option<RecvResult>>>,
}

impl RequestOutcome {
    /// Take the receive result (None for sends, or if already taken).
    pub fn take(&self) -> Option<RecvResult> {
        self.slot.with(|s| s.take())
    }
}

// ----------------------------------------------------------------------
// Transfer execution (runtime threads)
// ----------------------------------------------------------------------

/// Inject one wire chunk reliably: on sender-observed loss (the fabric's
/// link-layer NACK model), back off in virtual time and retransmit, up
/// to the policy's attempt budget. Feeds the degradation latch and the
/// fault counters; returns the completion instant of the successful
/// injection.
#[allow(clippy::too_many_arguments)]
fn send_chunk_reliable(
    inner: &Inner,
    a: &Actor,
    dst: Rank,
    wire_tag: Tag,
    datatype: Datatype,
    bytes: &[u8],
    earliest: SimNs,
    duration: Option<SimNs>,
) -> Result<SimNs, ClError> {
    let policy = *inner.retry.lock();
    let mut earliest = earliest;
    let mut last_done = earliest;
    for attempt in 1..=policy.max_attempts {
        let req = inner
            .comm
            .isend_raw(a, dst, wire_tag, datatype, bytes, earliest, duration);
        let done = req.known_completion().expect("send completion known");
        last_done = done;
        if req.delivered() {
            inner.fault_state.lock().consecutive_drops = 0;
            return Ok(done);
        }
        // The chunk burned link time but never reached the peer.
        if let Some(stats) = inner.stats.lock().as_ref() {
            stats.note_drop();
        }
        let newly_degraded = {
            let mut fs = inner.fault_state.lock();
            fs.consecutive_drops += 1;
            if !fs.degraded && fs.consecutive_drops >= policy.degrade_after {
                fs.degraded = true;
                true
            } else {
                false
            }
        };
        let fault_lane = format!("r{}.fault", inner.comm.rank());
        if newly_degraded {
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_degraded();
            }
            inner
                .trace
                .record(fault_lane.as_str(), "degrade pipelined→pinned", done, done);
        }
        if attempt == policy.max_attempts {
            break;
        }
        let backoff = policy.backoff_ns(attempt);
        inner.trace.record(
            fault_lane.as_str(),
            format!("retry#{attempt}→r{dst}"),
            done,
            done.saturating_add(backoff),
        );
        if let Some(stats) = inner.stats.lock().as_ref() {
            stats.note_retry();
        }
        earliest = done.saturating_add(backoff);
    }
    if let Some(stats) = inner.stats.lock().as_ref() {
        stats.note_failure();
    }
    // Charge the time actually spent trying before giving up.
    a.advance_until(last_done);
    Err(ClError::TransferFailed(format!(
        "chunk to rank {dst} lost {} time(s) on tag {wire_tag}; retry budget exhausted",
        policy.max_attempts
    )))
}

/// Execute the send side; returns the virtual completion instant of the
/// local send (last injection end).
#[allow(clippy::too_many_arguments)]
fn run_send(
    inner: &Inner,
    device: &Device,
    buf: &Buffer,
    offset: usize,
    size: usize,
    dst: Rank,
    tag: Tag,
    strategy: TransferStrategy,
    a: &Actor,
) -> Result<SimNs, ClError> {
    let plan = ResolvedStrategy::plan(strategy, size);
    let pcie = device.spec().pcie;
    let net = &inner.cfg.cluster.link;
    let lane = format!("r{}.comm", inner.comm.rank());
    let t0 = a.now_ns();
    let mut done_at = t0;
    match strategy {
        TransferStrategy::Mapped => {
            let bytes = buf.load(offset, size).expect("range checked at enqueue");
            let stream = (size as f64 * 1e9 / pcie.mapped_bps).round() as SimNs;
            let fused = net.injection_ns(size).max(stream);
            done_at = send_chunk_reliable(
                inner,
                a,
                dst,
                data_tag(tag),
                Datatype::ClMem,
                &bytes,
                t0 + pcie.map_setup_ns,
                Some(fused),
            )?;
            inner
                .trace
                .record(lane.as_str(), format!("map+send→{dst}"), t0, done_at);
        }
        TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
            // Staged path: chunks flow d2h (pinned staging) then network,
            // each chunk's network stage starting when its staging ends.
            // Retransmits re-inject from the host staging copy — the d2h
            // stage is not repeated.
            let stage_earliest = t0 + pcie.pin_setup_ns;
            let mut first = true;
            for &(coff, clen) in &plan.chunks {
                let bytes = buf
                    .load(offset + coff, clen)
                    .expect("range checked at enqueue");
                let earliest = if first { stage_earliest } else { t0 };
                first = false;
                let d2h = device
                    .d2h_link()
                    .reserve_duration(pcie.staged_ns(clen, true), earliest);
                done_at = send_chunk_reliable(
                    inner,
                    a,
                    dst,
                    data_tag(tag),
                    Datatype::ClMem,
                    &bytes,
                    d2h.end,
                    None,
                )?;
                inner.trace.record(lane.as_str(), "d2h", d2h.start, d2h.end);
                inner
                    .trace
                    .record(lane.as_str(), format!("net→{dst}"), d2h.end, done_at);
            }
        }
        TransferStrategy::Auto => unreachable!("strategy resolved before dispatch"),
    }
    if let Some(stats) = inner.stats.lock().as_ref() {
        stats.record("send", &strategy.name(), size, done_at.saturating_sub(t0));
    }
    if let Some(sel) = inner.adaptive.lock().as_ref() {
        sel.observe(size, strategy, done_at.saturating_sub(t0));
    }
    Ok(done_at)
}

/// Execute the receive side; completes when all bytes are in device
/// memory (the runtime thread has advanced to that instant on return).
#[allow(clippy::too_many_arguments)]
fn run_recv(
    inner: &Inner,
    device: &Device,
    buf: &Buffer,
    offset: usize,
    size: usize,
    src: Rank,
    tag: Tag,
    strategy: TransferStrategy,
    a: &Actor,
) -> Result<(), ClError> {
    let pcie = device.spec().pcie;
    let lane = format!("r{}.comm", inner.comm.rank());
    let recv_t0 = a.now_ns();
    // One-time staging setup cost, paid up front (overlaps the wait for
    // the first chunk in practice because it precedes it).
    match strategy {
        TransferStrategy::Mapped => a.advance_ns(pcie.map_setup_ns),
        TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
            a.advance_ns(pcie.pin_setup_ns)
        }
        TransferStrategy::Auto => unreachable!("strategy resolved before dispatch"),
    }
    let mut received = 0usize;
    while received < size {
        let r = recv_chunk(inner, a, src, data_tag(tag))?;
        let arrival = a.now_ns();
        if received + r.data.len() > size {
            return Err(ClError::TransferFailed(format!(
                "clMPI transfer overflow: got {} bytes into a {}-byte receive",
                received + r.data.len(),
                size
            )));
        }
        match strategy {
            TransferStrategy::Mapped => {
                // Zero-copy: the NIC already wrote through PCIe during the
                // (sender-fused) stream; data is usable at arrival.
                buf.store(offset + received, &r.data)
                    .expect("range checked at enqueue");
            }
            TransferStrategy::Pinned | TransferStrategy::Pipelined(_) => {
                let h2d = device
                    .h2d_link()
                    .reserve_duration(pcie.staged_ns(r.data.len(), true), arrival);
                a.advance_until(h2d.end);
                buf.store(offset + received, &r.data)
                    .expect("range checked at enqueue");
                inner.trace.record(lane.as_str(), "h2d", h2d.start, h2d.end);
            }
            TransferStrategy::Auto => unreachable!(),
        }
        received += r.data.len();
    }
    if strategy == TransferStrategy::Mapped {
        // Unmap after the MPI transfer completes (map → MPI → unmap, the
        // paper's mapped implementation): paid after arrival, which is
        // what keeps the pinned path ahead for small messages on devices
        // with expensive mapping bookkeeping (RICC's C1060).
        a.advance_ns(pcie.map_setup_ns);
    }
    if let Some(stats) = inner.stats.lock().as_ref() {
        stats.record(
            "recv",
            &strategy.name(),
            size,
            a.now_ns().saturating_sub(recv_t0),
        );
    }
    if let Some(sel) = inner.adaptive.lock().as_ref() {
        sel.observe(size, strategy, a.now_ns().saturating_sub(recv_t0));
    }
    Ok(())
}

/// Receive one wire chunk. On a perfect fabric this is a plain blocking
/// receive (the exact seed code path, keeping zero-fault runs
/// bit-identical); under a fault plan the receiver applies the policy's
/// per-chunk patience so a permanently lost chunk surfaces as an error
/// instead of a hang.
fn recv_chunk(inner: &Inner, a: &Actor, src: Rank, wire_tag: Tag) -> Result<RecvResult, ClError> {
    if !inner.comm.world().has_faults() {
        return Ok(inner.comm.recv(a, Some(src), Some(wire_tag)));
    }
    let patience = inner.retry.lock().chunk_timeout_ns;
    inner
        .comm
        .recv_timeout(a, Some(src), Some(wire_tag), patience)
        .map_err(|e: MpiError| {
            if let Some(stats) = inner.stats.lock().as_ref() {
                stats.note_failure();
            }
            ClError::TransferFailed(format!(
                "receive from rank {src} (tag {wire_tag}) gave up: {e}"
            ))
        })
}
