//! # clmpi — the paper's contribution
//!
//! An OpenCL extension for interoperation with MPI (Takizawa et al.,
//! IPDPS 2013), reproduced over the simulated substrates of this
//! workspace. The extension adds, exactly as §IV of the paper describes:
//!
//! * **Inter-node communication commands** —
//!   [`ClMpi::enqueue_send_buffer`] / [`ClMpi::enqueue_recv_buffer`]
//!   transfer a device memory object to/from a remote rank. They are
//!   ordered against other OpenCL commands purely through **event
//!   objects**: the returned event is a user event that mimics a command
//!   event (the paper's own implementation technique, §V-A), and the
//!   transfer starts only after its wait list completes — with **no host
//!   thread involvement**.
//! * **MPI interoperability** — [`ClMpi::event_from_request`]
//!   (= `clCreateEventFromMPIRequest`) turns a non-blocking MPI request
//!   into an event that OpenCL commands can wait on; the `MPI_CL_MEM`
//!   wrappers [`ClMpi::send_cl`] / [`ClMpi::isend_cl`] /
//!   [`ClMpi::irecv_cl`] let plain MPI calls target communicator devices
//!   (§IV-C).
//! * **Hidden, system-aware transfer strategies** — pinned, mapped and
//!   pipelined data paths ([`TransferStrategy`]), selected automatically
//!   per system and message size ([`SystemConfig`]), reproducing §III's
//!   three implementations and §V-B's selection policy.
//!
//! ## Quick start
//!
//! ```
//! use clmpi::{ClMpi, SystemConfig};
//! use minimpi::run_world_sized;
//!
//! let sys = SystemConfig::cichlid();
//! let cluster = sys.cluster.clone();
//! let res = run_world_sized(cluster, 2, move |p| {
//!     let rt = ClMpi::new(&p, SystemConfig::cichlid());
//!     let buf = rt.context().create_buffer(1024);
//!     let q = rt.context().create_queue(0, format!("r{}", p.rank()));
//!     if p.rank() == 0 {
//!         buf.store(0, &[42u8; 1024]).unwrap();
//!         let e = rt.enqueue_send_buffer(&q, &buf, false, 0, 1024, 1, 7, &[], &p.actor).unwrap();
//!         e.wait(&p.actor);
//!     } else {
//!         let e = rt.enqueue_recv_buffer(&q, &buf, false, 0, 1024, 0, 7, &[], &p.actor).unwrap();
//!         e.wait(&p.actor);
//!         assert_eq!(buf.load(0, 1024).unwrap(), vec![42u8; 1024]);
//!     }
//!     rt.shutdown(&p.actor);
//!     p.actor.now_ns()
//! });
//! assert!(res.elapsed_ns > 0);
//! ```

pub mod adaptive;
mod collective;
mod engine;
mod fileio;
pub mod obs;
mod retry;
mod runtime;
pub mod stats;
mod strategy;
mod system;

pub use adaptive::{AdaptiveSelector, CollectiveSelector, PeerSelector};
pub use collective::{CollAlgo, CollTuning};
pub use engine::{Engine, EngineOp, Step};
pub use fileio::{decode_checkpoint, encode_checkpoint, SimStorage, CKPT_HEADER_LEN, CKPT_MAGIC};
pub use obs::{chrome_trace, validate_json, ObsCounters, ObsSummary, OverlapReport, RankOverlap};
pub use retry::RetryPolicy;
pub use runtime::{ClMpi, ClRecvRequest, ClSendRequest, ClWindow, RequestOutcome};
pub use stats::{FaultStats, TransferStats};
pub use strategy::{analytic, chunk_layout, PackMode, ResolvedStrategy, TransferStrategy};
pub use system::SystemConfig;

// Event execution status of a transfer that failed permanently (retry
// budget exhausted or receiver timeout). Defined once in
// `minicl::status` (see that module for the full error-code story) and
// re-exported here so `clmpi::CL_MPI_TRANSFER_ERROR` keeps working.
pub use minicl::status::CL_MPI_TRANSFER_ERROR;

// Collectives reduce over f64 with minimpi's operator set; re-exported so
// applications don't need a direct minimpi dependency for the enum.
pub use minimpi::ReduceOp;

/// Tag space base for clMPI-internal messages; user tags passed to
/// `enqueue_*_buffer` and the `*_cl` wrappers are mapped above
/// [`minimpi::MAX_USER_TAG`] so they never collide with plain MPI traffic
/// of the same application.
pub const CLMPI_TAG_BASE: minimpi::Tag = 1 << 22;

/// Restrict `plan` to clMPI's data-plane tag space: payload chunks feel
/// the faults while MPI control traffic (barriers, collectives, plain
/// user messages) stays reliable. This is the recommended way to build a
/// plan for clMPI fault-injection experiments.
pub fn data_plane_faults(plan: minimpi::FaultPlan) -> minimpi::FaultPlan {
    plan.with_tag_floor(CLMPI_TAG_BASE)
}

/// Tag space base for clMPI collective traffic: a region above the
/// point-to-point data plane, subdivided per collective kind (bcast /
/// allreduce / reduce) so concurrent collectives with equal user tags
/// never cross-match. Everything here is ≥ [`CLMPI_TAG_BASE`], so
/// [`data_plane_faults`] plans exercise collective chunks too.
pub const CLMPI_COLL_TAG_BASE: minimpi::Tag = CLMPI_TAG_BASE + (1 << 21);

pub(crate) const COLL_SPACE_BCAST: minimpi::Tag = 0;
pub(crate) const COLL_SPACE_ALLREDUCE: minimpi::Tag = 1;
pub(crate) const COLL_SPACE_REDUCE: minimpi::Tag = 2;

/// Map a user collective tag into `space`'s sub-region of the collective
/// tag plane, validating the user range up front (like
/// [`checked_data_tag`]).
pub(crate) fn checked_coll_tag(
    space: minimpi::Tag,
    user: minimpi::Tag,
) -> Result<minimpi::Tag, minicl::ClError> {
    if (0..=minimpi::MAX_USER_TAG).contains(&user) {
        Ok(CLMPI_COLL_TAG_BASE + space * (minimpi::MAX_USER_TAG + 1) + user)
    } else {
        Err(minicl::ClError::InvalidValue(format!(
            "clMPI collective tag {user} out of user range (0..={})",
            minimpi::MAX_USER_TAG
        )))
    }
}

pub(crate) fn data_tag(user: minimpi::Tag) -> minimpi::Tag {
    assert!(
        (0..=minimpi::MAX_USER_TAG).contains(&user),
        "clMPI tag {user} out of user range"
    );
    CLMPI_TAG_BASE + user
}

/// Non-panicking [`data_tag`]: the public enqueue API validates tags up
/// front so a bad tag surfaces as `CL_INVALID_VALUE` on the calling
/// thread instead of panicking a runtime thread.
pub(crate) fn checked_data_tag(user: minimpi::Tag) -> Result<minimpi::Tag, minicl::ClError> {
    if (0..=minimpi::MAX_USER_TAG).contains(&user) {
        Ok(CLMPI_TAG_BASE + user)
    } else {
        Err(minicl::ClError::InvalidValue(format!(
            "clMPI tag {user} out of user range (0..={})",
            minimpi::MAX_USER_TAG
        )))
    }
}
