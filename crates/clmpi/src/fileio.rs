//! Future-work extension (paper §VI): file-I/O commands.
//!
//! "Not only MPI peer-to-peer communications but also other
//! time-consuming tasks such as file I/O would be encapsulated in other
//! additional OpenCL commands." This module prototypes that: a simulated
//! node-local storage device ([`SimStorage`]) and
//! [`ClMpi::enqueue_write_file`] / [`ClMpi::enqueue_read_file`] commands
//! that move device buffers to/from it, returning ordinary events — so
//! checkpointing overlaps computation exactly like communication does.

use std::collections::BTreeMap;
use std::sync::Arc;

use minicl::{Buffer, ClResult, CommandQueue, Device, Event, UserEvent};
use simnet::{Link, LinkSpec};
use simtime::plock::Mutex;
use simtime::{Actor, SimClock, SimNs};

use crate::engine::{deps_settled, EngineOp, Step};

/// A simulated node-local storage device: an in-memory "filesystem" plus
/// a serialized bandwidth/latency timeline (one head, like a real disk or
/// a shared SSD namespace).
#[derive(Clone)]
pub struct SimStorage {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    link: Arc<Link>,
}

impl SimStorage {
    /// A ~2012 cluster-node local disk array: ~200 MB/s streaming,
    /// ~4 ms access latency, small per-op overhead.
    pub fn node_local_disk(clock: SimClock) -> Self {
        Self::with_spec(
            clock,
            LinkSpec {
                latency_ns: 4_000_000,
                bandwidth_bps: 200.0e6,
                per_msg_overhead_ns: 100_000,
            },
        )
    }

    /// Storage with an explicit cost model.
    pub fn with_spec(clock: SimClock, spec: LinkSpec) -> Self {
        SimStorage {
            files: Arc::new(Mutex::new(BTreeMap::new())),
            link: Arc::new(Link::new(clock, spec)),
        }
    }

    /// Bytes currently stored under `path`.
    pub fn file_len(&self, path: &str) -> Option<usize> {
        self.files.lock().get(path).map(|v| v.len())
    }

    /// Snapshot a file's contents.
    pub fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        self.files.lock().get(path).cloned()
    }

    /// Store raw bytes (host-side write, no device involved).
    pub fn write_file(&self, path: &str, data: Vec<u8>) {
        self.files.lock().insert(path.to_string(), data);
    }

    pub(crate) fn reserve(&self, bytes: usize, earliest: SimNs) -> SimNs {
        let r = self.link.reserve(bytes, earliest);
        r.arrival
    }
}

impl crate::runtime::ClMpi {
    /// Write `size` bytes at `offset` of device buffer `buf` to
    /// `storage` under `path` (a checkpoint). Non-blocking: the returned
    /// event completes when the data is durable; gate subsequent commands
    /// on it (or don't, and keep computing — that is the point).
    ///
    /// Cost: device→host staging (pinned path) then the storage stream,
    /// serialized on the storage timeline.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_write_file(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self
            .context()
            .create_user_event(format!("write-file {size}B"));
        let event = ue.event();
        self.inner.engine.submit(Box::new(FileWriteOp {
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-fwrite-r{}", self.rank()),
            state: FileState::WaitDeps,
        }));
        Ok(event)
    }

    /// Read a file from `storage` into `offset` of device buffer `buf`.
    /// The file must hold at least `size` bytes *by the time the command
    /// runs* (its wait list has completed).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_read_file(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self
            .context()
            .create_user_event(format!("read-file {size}B"));
        let event = ue.event();
        self.inner.engine.submit(Box::new(FileReadOp {
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-fread-r{}", self.rank()),
            state: FileState::WaitDeps,
        }));
        Ok(event)
    }
}

/// Shared two-phase shape of both file machines: wait for the
/// dependency list, make every reservation in one burst, then park until
/// the terminal instant and publish the payload.
enum FileState {
    WaitDeps,
    Finish { at: SimNs, payload: Vec<u8> },
    Done,
}

/// `enqueue_write_file`: device→host staging (pinned path), then the
/// storage stream; the bytes become durable — and the event completes —
/// at the storage timeline's arrival instant.
struct FileWriteOp {
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    state: FileState,
}

impl EngineOp for FileWriteOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match self.state {
                FileState::WaitDeps => {
                    // Like the collective prototype, this future-work
                    // command ignores dependency failures.
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let pcie = self.device.spec().pcie;
                    let staged = self
                        .device
                        .d2h_link()
                        .reserve_duration(pcie.staged_ns(self.size, true), now + pcie.pin_setup_ns);
                    // Snapshot the region when staging starts: later
                    // device-side writes do not leak into the checkpoint.
                    let bytes = self
                        .buf
                        .load(self.offset, self.size)
                        .expect("range checked at enqueue");
                    let durable_at = self.storage.reserve(self.size, staged.end);
                    self.state = FileState::Finish {
                        at: durable_at,
                        payload: bytes,
                    };
                }
                FileState::Finish { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, FileState::Done);
                    let FileState::Finish { payload, .. } = state else {
                        unreachable!("matched above")
                    };
                    self.storage.write_file(&self.path, payload);
                    self.ue.set_complete(at).expect("file write completed once");
                    return Step::Done;
                }
                FileState::Done => return Step::Done,
            }
        }
    }
}

/// `enqueue_read_file`: the storage stream, then host→device staging;
/// the event completes with the data in device memory. A missing or
/// short file is a programming error and panics (poisoning the world,
/// like any rank panic).
struct FileReadOp {
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    state: FileState,
}

impl EngineOp for FileReadOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            match self.state {
                FileState::WaitDeps => {
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let path = &self.path;
                    // Snapshot the file when the read starts (the old
                    // behavior): later writes do not leak into it.
                    let data = self
                        .storage
                        .read_file(path)
                        .unwrap_or_else(|| panic!("enqueue_read_file: no file '{path}'"));
                    assert!(
                        data.len() >= self.size,
                        "file '{path}' holds {} bytes, {} requested",
                        data.len(),
                        self.size
                    );
                    let pcie = self.device.spec().pcie;
                    let read_done = self.storage.reserve(self.size, now);
                    let h2d = self.device.h2d_link().reserve_duration(
                        pcie.staged_ns(self.size, true),
                        read_done + pcie.pin_setup_ns,
                    );
                    self.state = FileState::Finish {
                        at: h2d.end,
                        payload: data,
                    };
                }
                FileState::Finish { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, FileState::Done);
                    let FileState::Finish { payload, .. } = state else {
                        unreachable!("matched above")
                    };
                    self.buf
                        .store(self.offset, &payload[..self.size])
                        .expect("range checked");
                    self.ue.set_complete(at).expect("file read completed once");
                    return Step::Done;
                }
                FileState::Done => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use minimpi::run_world_sized;

    #[test]
    fn checkpoint_roundtrip_through_storage() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let a = rt.context().create_buffer(1 << 20);
            let b = rt.context().create_buffer(1 << 20);
            a.store(0, &vec![42u8; 1 << 20]).expect("store in range");
            let ew = rt
                .enqueue_write_file(&q, &a, 0, 1 << 20, &storage, "ckpt.bin", &[], &p.actor)
                .expect("enqueue accepted");
            let er = rt
                .enqueue_read_file(&q, &b, 0, 1 << 20, &storage, "ckpt.bin", &[ew], &p.actor)
                .expect("enqueue accepted");
            er.wait(&p.actor);
            assert_eq!(
                b.load(0, 1 << 20).expect("load in range"),
                vec![42u8; 1 << 20]
            );
            assert_eq!(storage.file_len("ckpt.bin"), Some(1 << 20));
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn checkpoint_overlaps_computation() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(8 << 20);
            // 8 MiB at ~200 MB/s ≈ 40 ms of storage time…
            let ew = rt
                .enqueue_write_file(&q, &buf, 0, 8 << 20, &storage, "c", &[], &p.actor)
                .expect("enqueue accepted");
            // …hidden under 50 ms of computation on the same device.
            let ek = q.enqueue_kernel("compute", 50_000_000, &[], || {});
            ek.wait(&p.actor);
            ew.wait(&p.actor);
            assert!(
                p.actor.now_ns() < 60_000_000,
                "checkpoint hidden under compute: {}",
                p.actor.now_ns()
            );
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn storage_operations_serialize_on_the_device() {
        let clock = SimClock::new();
        let s = SimStorage::node_local_disk(clock);
        let a = s.reserve(1 << 20, 0);
        let b = s.reserve(1 << 20, 0);
        assert!(b > a, "second op queues behind the first");
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn reading_missing_file_fails() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(64);
            let e = rt
                .enqueue_read_file(&q, &buf, 0, 64, &storage, "nope", &[], &p.actor)
                .expect("enqueue accepted");
            e.wait(&p.actor);
            rt.shutdown(&p.actor);
        });
    }
}
