//! Future-work extension (paper §VI): file-I/O commands.
//!
//! "Not only MPI peer-to-peer communications but also other
//! time-consuming tasks such as file I/O would be encapsulated in other
//! additional OpenCL commands." This module prototypes that: a simulated
//! node-local storage device ([`SimStorage`]) and
//! [`ClMpi::enqueue_write_file`] / [`ClMpi::enqueue_read_file`] commands
//! that move device buffers to/from it, returning ordinary events — so
//! checkpointing overlaps computation exactly like communication does.

use std::collections::BTreeMap;
use std::sync::Arc;

use minicl::{Buffer, ClResult, CommandQueue, Device, Event, UserEvent, CL_MPI_TRANSFER_ERROR};
use simnet::{Link, LinkSpec};
use simtime::plock::Mutex;
use simtime::{Actor, SimClock, SimNs};

use crate::engine::{deps_settled, record_envelope, EngineOp, Step};
use crate::obs::ChildIds;
use crate::runtime::Inner;

/// A simulated node-local storage device: an in-memory "filesystem" plus
/// a serialized bandwidth/latency timeline (one head, like a real disk or
/// a shared SSD namespace).
#[derive(Clone)]
pub struct SimStorage {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    link: Arc<Link>,
    clock: SimClock,
    defer: Arc<Mutex<StorageDefer>>,
}

/// A deferred storage reservation, granted later in canonical order.
/// Several ranks share one storage device (the shared-PFS model), and
/// their engine threads hit the timeline at the same virtual instant;
/// granting in real call order would leak host scheduling into virtual
/// time. Same design as the fabric's deferred-send arbiter.
struct StorageJob {
    /// Canonical tiebreak between posters at the same instant (the
    /// poster's global rank — unique per shared storage).
    prio: u64,
    bytes: usize,
    earliest: SimNs,
    seq: u64,
    /// Filled with the reservation's arrival instant at grant time.
    cell: Arc<Mutex<Option<SimNs>>>,
}

#[derive(Default)]
struct StorageDefer {
    pending: Vec<StorageJob>,
    next_seq: u64,
}

impl SimStorage {
    /// A ~2012 cluster-node local disk array: ~200 MB/s streaming,
    /// ~4 ms access latency, small per-op overhead.
    pub fn node_local_disk(clock: SimClock) -> Self {
        Self::with_spec(
            clock,
            LinkSpec {
                latency_ns: 4_000_000,
                bandwidth_bps: 200.0e6,
                per_msg_overhead_ns: 100_000,
            },
        )
    }

    /// Storage with an explicit cost model.
    pub fn with_spec(clock: SimClock, spec: LinkSpec) -> Self {
        SimStorage {
            files: Arc::new(Mutex::new(BTreeMap::new())),
            link: Arc::new(Link::new(clock.clone(), spec)),
            clock,
            defer: Arc::new(Mutex::new(StorageDefer::default())),
        }
    }

    /// Bytes currently stored under `path`.
    pub fn file_len(&self, path: &str) -> Option<usize> {
        self.files.lock().get(path).map(|v| v.len())
    }

    /// Snapshot a file's contents.
    pub fn read_file(&self, path: &str) -> Option<Vec<u8>> {
        self.files.lock().get(path).cloned()
    }

    /// Store raw bytes (host-side write, no device involved).
    pub fn write_file(&self, path: &str, data: Vec<u8>) {
        self.files.lock().insert(path.to_string(), data);
    }

    /// Synchronous reservation (first-come timeline order). Only safe
    /// when a single thread drives the storage; the engine machines go
    /// through [`SimStorage::reserve_deferred`] instead.
    #[cfg(test)]
    pub(crate) fn reserve(&self, bytes: usize, earliest: SimNs) -> SimNs {
        let r = self.link.reserve(bytes, earliest);
        r.arrival
    }

    /// Post a reservation to the deferred arbiter. The returned cell is
    /// filled with the arrival instant once [`SimStorage::pump`] grants
    /// the job; poll it after pumping. `prio` breaks same-instant ties
    /// canonically (pass the poster's global rank).
    pub(crate) fn reserve_deferred(
        &self,
        prio: u64,
        bytes: usize,
        earliest: SimNs,
    ) -> Arc<Mutex<Option<SimNs>>> {
        let mut q = self.defer.lock();
        // Clamp stale instants up to now. Grant batches are frozen: the
        // poster is runnable, so the clock cannot advance while this job
        // is posted — every later post lands at `earliest` ≥ any instant
        // a pump has already granted through.
        let earliest = earliest.max(self.clock.now_ns());
        let cell = Arc::new(Mutex::new(None));
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending.push(StorageJob {
            prio,
            bytes,
            earliest,
            seq,
            cell: cell.clone(),
        });
        // Drive the clock past the grant threshold even if every actor
        // is parked waiting on this very reservation.
        self.clock.schedule_alarm(earliest + 1);
        cell
    }

    /// Grant every deferred job whose instant has strictly passed, in
    /// canonical `(earliest, prio, seq)` order. Reservations are
    /// backdated to their (clamped) post instants, so the timeline is
    /// identical to the eager first-come order — minus the race.
    pub(crate) fn pump(&self, now: SimNs) {
        // checker-allow(lock-lifetime): defer is the serialization point
        // for the canonical (earliest, prio, seq) grant order — releasing
        // it mid-grant would let a racing pump interleave reservations.
        // The nested `cell` lock is a per-job leaf that is never held
        // across any other acquisition.
        let mut q = self.defer.lock();
        if !q.pending.iter().any(|j| j.earliest < now) {
            return;
        }
        let mut due = Vec::new();
        let mut i = 0;
        while i < q.pending.len() {
            if q.pending[i].earliest < now {
                due.push(q.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|j| (j.earliest, j.prio, j.seq));
        for j in due {
            let r = self.link.reserve(j.bytes, j.earliest);
            *j.cell.lock() = Some(r.arrival);
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint framing (crash-consistent device-state snapshots)
// ----------------------------------------------------------------------

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: [u8; 8] = *b"CLMPICKP";
/// Framing overhead: magic + payload length + FNV-1a checksum.
pub const CKPT_HEADER_LEN: usize = 24;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Frame `payload` as a checkpoint file: magic, length, checksum,
/// payload. [`decode_checkpoint`] rejects anything torn or corrupted.
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CKPT_HEADER_LEN + payload.len());
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a checkpoint file and return its payload. Errors describe
/// why the file is unusable — a write torn by a node kill shows up as a
/// length mismatch; corruption as a checksum mismatch.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<&[u8], String> {
    if bytes.len() < CKPT_HEADER_LEN {
        return Err(format!(
            "checkpoint torn: {} bytes, header needs {CKPT_HEADER_LEN}",
            bytes.len()
        ));
    }
    if bytes[..8] != CKPT_MAGIC {
        return Err("checkpoint has no CLMPICKP magic".into());
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced")) as usize;
    let sum = u64::from_le_bytes(bytes[16..24].try_into().expect("sliced"));
    let body = &bytes[CKPT_HEADER_LEN..];
    if body.len() != len {
        return Err(format!(
            "checkpoint torn: header promises {len} payload bytes, file holds {}",
            body.len()
        ));
    }
    if fnv1a(body) != sum {
        return Err("checkpoint checksum mismatch".into());
    }
    Ok(body)
}

impl crate::runtime::ClMpi {
    /// Write `size` bytes at `offset` of device buffer `buf` to
    /// `storage` under `path` (a checkpoint). Non-blocking: the returned
    /// event completes when the data is durable; gate subsequent commands
    /// on it (or don't, and keep computing — that is the point).
    ///
    /// Cost: device→host staging (pinned path) then the storage stream,
    /// serialized on the storage timeline.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_write_file(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self
            .context()
            .create_user_event(format!("write-file {size}B"));
        let event = ue.event();
        self.inner.engine.submit(Box::new(FileWriteOp {
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-fwrite-r{}", self.rank()),
            prio: self.inner.comm.global_rank(self.inner.comm.rank()) as u64,
            state: FileState::WaitDeps,
        }));
        Ok(event)
    }

    /// Read a file from `storage` into `offset` of device buffer `buf`.
    /// The file must hold at least `size` bytes *by the time the command
    /// runs* (its wait list has completed).
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_read_file(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self
            .context()
            .create_user_event(format!("read-file {size}B"));
        let event = ue.event();
        self.inner.engine.submit(Box::new(FileReadOp {
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-fread-r{}", self.rank()),
            prio: self.inner.comm.global_rank(self.inner.comm.rank()) as u64,
            state: FileState::WaitDeps,
        }));
        Ok(event)
    }

    /// `clEnqueueCheckpointBuffer`: write `size` bytes at `offset` of
    /// device buffer `buf` to `storage` under `path`, framed with a
    /// checksum ([`encode_checkpoint`]) for crash consistency. While the
    /// write is in flight the file exists *torn* (header plus a partial
    /// payload, as on a real disk); the complete framed file replaces it
    /// only at the durable instant. If this rank's node is killed inside
    /// the write window, the torn file is what survives — and
    /// [`crate::ClMpi::enqueue_restore_buffer`] rejects it — and the returned
    /// event is poisoned with `CL_MPI_TRANSFER_ERROR`.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_checkpoint_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self.context().create_user_event(format!("ckpt {size}B"));
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(CheckpointWriteOp {
            inner: self.inner.clone(),
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-ckpt-r{}", self.rank()),
            ids,
            submit_ns: self.inner.clock.now_ns(),
            state: CkptState::WaitDeps,
        }));
        Ok(event)
    }

    /// `clEnqueueRestoreBuffer`: read the checkpoint at `path` from
    /// `storage`, validate its framing ([`decode_checkpoint`]), and land
    /// the `size`-byte payload at `offset` of device buffer `buf`. A
    /// missing, torn, or corrupted file — or a payload of the wrong
    /// length — poisons the event with `CL_MPI_TRANSFER_ERROR` and
    /// leaves the buffer untouched, so recovery code can probe
    /// candidate checkpoints safely. Recorded as an `op.restore` span.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_restore_buffer(
        &self,
        queue: &CommandQueue,
        buf: &Buffer,
        offset: usize,
        size: usize,
        storage: &SimStorage,
        path: impl Into<String>,
        wait_list: &[Event],
        _actor: &Actor,
    ) -> ClResult<Event> {
        buf.check_range(offset, size)?;
        let ue = self.context().create_user_event(format!("restore {size}B"));
        let event = ue.event();
        let ids = self.inner.new_op();
        self.inner.engine.submit(Box::new(RestoreOp {
            inner: self.inner.clone(),
            device: queue.device().clone(),
            buf: buf.clone(),
            offset,
            size,
            storage: storage.clone(),
            path: path.into(),
            wait: wait_list.to_vec(),
            ue,
            label: format!("clmpi-restore-r{}", self.rank()),
            ids,
            submit_ns: self.inner.clock.now_ns(),
            state: RestoreState::WaitDeps,
        }));
        Ok(event)
    }
}

/// Shared shape of both file machines: wait for the dependency list,
/// post the storage reservation to the arbiter, poll for the grant,
/// then park until the terminal instant and publish the payload.
enum FileState {
    WaitDeps,
    /// Storage reservation posted; polling the arbiter for the grant.
    WaitDisk {
        cell: Arc<Mutex<Option<SimNs>>>,
        earliest: SimNs,
        payload: Vec<u8>,
    },
    Finish {
        at: SimNs,
        payload: Vec<u8>,
    },
    Done,
}

/// `enqueue_write_file`: device→host staging (pinned path), then the
/// storage stream; the bytes become durable — and the event completes —
/// at the storage timeline's arrival instant.
struct FileWriteOp {
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    prio: u64,
    state: FileState,
}

impl EngineOp for FileWriteOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            if let FileState::WaitDisk {
                ref cell, earliest, ..
            } = self.state
            {
                self.storage.pump(now);
                let granted: Option<SimNs> = *cell.lock();
                let Some(durable_at) = granted else {
                    return Step::Park(Some(now.max(earliest) + 1));
                };
                let state = std::mem::replace(&mut self.state, FileState::Done);
                let FileState::WaitDisk { payload, .. } = state else {
                    unreachable!("matched above")
                };
                self.state = FileState::Finish {
                    at: durable_at,
                    payload,
                };
            }
            match self.state {
                FileState::WaitDeps => {
                    // Like the collective prototype, this future-work
                    // command ignores dependency failures.
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let pcie = self.device.spec().pcie;
                    let staged = self
                        .device
                        .d2h_link()
                        .reserve_duration(pcie.staged_ns(self.size, true), now + pcie.pin_setup_ns);
                    // Snapshot the region when staging starts: later
                    // device-side writes do not leak into the checkpoint.
                    let bytes = self
                        .buf
                        .load(self.offset, self.size)
                        .expect("range checked at enqueue");
                    let cell = self
                        .storage
                        .reserve_deferred(self.prio, self.size, staged.end);
                    self.state = FileState::WaitDisk {
                        cell,
                        earliest: staged.end,
                        payload: bytes,
                    };
                }
                FileState::WaitDisk { .. } => unreachable!("handled above"),
                FileState::Finish { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, FileState::Done);
                    let FileState::Finish { payload, .. } = state else {
                        unreachable!("matched above")
                    };
                    self.storage.write_file(&self.path, payload);
                    self.ue.set_complete(at).expect("file write completed once");
                    return Step::Done;
                }
                FileState::Done => return Step::Done,
            }
        }
    }
}

/// `enqueue_read_file`: the storage stream, then host→device staging;
/// the event completes with the data in device memory. A missing or
/// short file is a programming error and panics (poisoning the world,
/// like any rank panic).
struct FileReadOp {
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    prio: u64,
    state: FileState,
}

impl EngineOp for FileReadOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            if let FileState::WaitDisk {
                ref cell, earliest, ..
            } = self.state
            {
                self.storage.pump(now);
                let granted: Option<SimNs> = *cell.lock();
                let Some(read_done) = granted else {
                    return Step::Park(Some(now.max(earliest) + 1));
                };
                let state = std::mem::replace(&mut self.state, FileState::Done);
                let FileState::WaitDisk { payload, .. } = state else {
                    unreachable!("matched above")
                };
                // The per-rank h2d link has a single driving thread, so
                // the synchronous reservation stays deterministic.
                let pcie = self.device.spec().pcie;
                let h2d = self.device.h2d_link().reserve_duration(
                    pcie.staged_ns(self.size, true),
                    read_done + pcie.pin_setup_ns,
                );
                self.state = FileState::Finish {
                    at: h2d.end,
                    payload,
                };
            }
            match self.state {
                FileState::WaitDeps => {
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let path = &self.path;
                    // Snapshot the file when the read starts (the old
                    // behavior): later writes do not leak into it.
                    let data = self
                        .storage
                        .read_file(path)
                        .unwrap_or_else(|| panic!("enqueue_read_file: no file '{path}'"));
                    assert!(
                        data.len() >= self.size,
                        "file '{path}' holds {} bytes, {} requested",
                        data.len(),
                        self.size
                    );
                    let cell = self.storage.reserve_deferred(self.prio, self.size, now);
                    self.state = FileState::WaitDisk {
                        cell,
                        earliest: now,
                        payload: data,
                    };
                }
                FileState::WaitDisk { .. } => unreachable!("handled above"),
                FileState::Finish { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, FileState::Done);
                    let FileState::Finish { payload, .. } = state else {
                        unreachable!("matched above")
                    };
                    self.buf
                        .store(self.offset, &payload[..self.size])
                        .expect("range checked");
                    self.ue.set_complete(at).expect("file read completed once");
                    return Step::Done;
                }
                FileState::Done => return Step::Done,
            }
        }
    }
}

enum CkptState {
    WaitDeps,
    /// Storage reservation posted (torn file already on disk); polling
    /// the arbiter for the durable instant.
    WaitDisk {
        cell: Arc<Mutex<Option<SimNs>>>,
        write_start: SimNs,
        full: Vec<u8>,
    },
    /// Write in flight: a torn file is already on disk; the complete
    /// framed file replaces it at `at` unless the node dies first.
    Finish {
        at: SimNs,
        write_start: SimNs,
        full: Vec<u8>,
    },
    Done,
}

/// `clEnqueueCheckpointBuffer`: the [`FileWriteOp`] pipeline plus
/// checkpoint framing and crash consistency. The torn intermediate file
/// is published when the storage write begins; a node kill inside
/// `[write_start, durable)` leaves it there and poisons the event.
struct CheckpointWriteOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: CkptState,
}

impl EngineOp for CheckpointWriteOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            if let CkptState::WaitDisk {
                ref cell,
                write_start,
                ..
            } = self.state
            {
                self.storage.pump(now);
                let granted: Option<SimNs> = *cell.lock();
                let Some(durable_at) = granted else {
                    return Step::Park(Some(now.max(write_start) + 1));
                };
                let state = std::mem::replace(&mut self.state, CkptState::Done);
                let CkptState::WaitDisk { full, .. } = state else {
                    unreachable!("matched above")
                };
                self.state = CkptState::Finish {
                    at: durable_at,
                    write_start,
                    full,
                };
            }
            match self.state {
                CkptState::WaitDeps => {
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    let pcie = self.device.spec().pcie;
                    let staged = self
                        .device
                        .d2h_link()
                        .reserve_duration(pcie.staged_ns(self.size, true), now + pcie.pin_setup_ns);
                    // Snapshot the region when staging starts, as
                    // `enqueue_write_file` does.
                    let payload = self
                        .buf
                        .load(self.offset, self.size)
                        .expect("range checked at enqueue");
                    let full = encode_checkpoint(&payload);
                    let prio = self.inner.comm.global_rank(self.inner.comm.rank()) as u64;
                    let cell = self.storage.reserve_deferred(prio, full.len(), staged.end);
                    // The file exists — torn — from the moment the
                    // storage write begins, like a file growing on a
                    // real disk. Header plus half the payload: enough
                    // for restore to see the promise it cannot keep.
                    let torn =
                        full[..CKPT_HEADER_LEN + (full.len() - CKPT_HEADER_LEN) / 2].to_vec();
                    self.storage.write_file(&self.path, torn);
                    self.state = CkptState::WaitDisk {
                        cell,
                        write_start: staged.end,
                        full,
                    };
                }
                CkptState::WaitDisk { .. } => unreachable!("handled above"),
                CkptState::Finish {
                    at, write_start, ..
                } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, CkptState::Done);
                    let CkptState::Finish { full, .. } = state else {
                        unreachable!("matched above")
                    };
                    let me = self.inner.comm.global_rank(self.inner.comm.rank());
                    if self.inner.comm.world().node_down_in(me, write_start, at) {
                        // Killed mid-write: the torn file is what the
                        // survivors find on the shared storage.
                        record_envelope(
                            &self.inner,
                            &self.ids,
                            "op.ckpt",
                            format!("ckpt torn {}", self.path),
                            self.submit_ns,
                            at,
                            self.size as u64,
                            false,
                            None,
                            None,
                        );
                        self.inner.note_settled(false, 0, 0);
                        self.ue
                            .set_failed(at, CL_MPI_TRANSFER_ERROR)
                            .expect("ckpt event settled once");
                        return Step::Done;
                    }
                    self.storage.write_file(&self.path, full);
                    record_envelope(
                        &self.inner,
                        &self.ids,
                        "op.ckpt",
                        format!("ckpt {}", self.path),
                        self.submit_ns,
                        at,
                        self.size as u64,
                        true,
                        None,
                        None,
                    );
                    self.inner.note_settled(true, 0, 0);
                    self.ue.set_complete(at).expect("ckpt event completed once");
                    return Step::Done;
                }
                CkptState::Done => return Step::Done,
            }
        }
    }
}

enum RestoreState {
    WaitDeps,
    /// Storage read (or missing-file probe, `data == None`) posted to
    /// the arbiter; polling for the grant.
    WaitDisk {
        cell: Arc<Mutex<Option<SimNs>>>,
        earliest: SimNs,
        data: Option<Vec<u8>>,
    },
    /// Validated: the payload lands in device memory at `at`.
    Land {
        at: SimNs,
        payload: Vec<u8>,
    },
    /// Rejected (missing/torn/corrupt/mis-sized): poison at `at`.
    Fail {
        at: SimNs,
        why: String,
    },
    Done,
}

/// `clEnqueueRestoreBuffer`: storage stream, framing validation, then
/// host→device staging. Every rejection settles the event as failed —
/// never a panic — so recovery code can probe candidate checkpoints.
struct RestoreOp {
    inner: Arc<Inner>,
    device: Device,
    buf: Buffer,
    offset: usize,
    size: usize,
    storage: SimStorage,
    path: String,
    wait: Vec<Event>,
    ue: UserEvent,
    label: String,
    ids: ChildIds,
    submit_ns: SimNs,
    state: RestoreState,
}

impl RestoreOp {
    fn settle(&mut self, ok: bool, name: String, at: SimNs) -> Step {
        record_envelope(
            &self.inner,
            &self.ids,
            "op.restore",
            name,
            self.submit_ns,
            at,
            self.size as u64,
            ok,
            None,
            None,
        );
        self.inner.note_settled(ok, 0, 0);
        if ok {
            self.ue
                .set_complete(at)
                .expect("restore event completed once");
        } else {
            self.ue
                .set_failed(at, CL_MPI_TRANSFER_ERROR)
                .expect("restore event settled once");
        }
        self.state = RestoreState::Done;
        Step::Done
    }
}

impl EngineOp for RestoreOp {
    fn label(&self) -> &str {
        &self.label
    }

    fn step(&mut self, now: SimNs, _actor: &Actor) -> Step {
        loop {
            if let RestoreState::WaitDisk {
                ref cell, earliest, ..
            } = self.state
            {
                self.storage.pump(now);
                let granted: Option<SimNs> = *cell.lock();
                let Some(read_done) = granted else {
                    return Step::Park(Some(now.max(earliest) + 1));
                };
                let state = std::mem::replace(&mut self.state, RestoreState::Done);
                let RestoreState::WaitDisk { data, .. } = state else {
                    unreachable!("matched above")
                };
                let Some(data) = data else {
                    // The probe came back empty; it still paid the
                    // access latency.
                    self.state = RestoreState::Fail {
                        at: read_done,
                        why: format!("no file '{}'", self.path),
                    };
                    continue;
                };
                let verdict = match decode_checkpoint(&data) {
                    Err(why) => Err(why),
                    Ok(p) if p.len() != self.size => Err(format!(
                        "payload holds {} bytes, {} requested",
                        p.len(),
                        self.size
                    )),
                    Ok(p) => Ok(p.to_vec()),
                };
                match verdict {
                    Err(why) => self.state = RestoreState::Fail { at: read_done, why },
                    Ok(payload) => {
                        let pcie = self.device.spec().pcie;
                        let h2d = self.device.h2d_link().reserve_duration(
                            pcie.staged_ns(self.size, true),
                            read_done + pcie.pin_setup_ns,
                        );
                        self.state = RestoreState::Land {
                            at: h2d.end,
                            payload,
                        };
                    }
                }
            }
            match self.state {
                RestoreState::WaitDeps => {
                    if !deps_settled(&self.wait) {
                        return Step::Park(None);
                    }
                    // Snapshot the file when the read starts; a missing
                    // file still pays the access latency before the
                    // probe fails.
                    let data = self.storage.read_file(&self.path);
                    let bytes = data.as_ref().map_or(0, Vec::len);
                    let prio = self.inner.comm.global_rank(self.inner.comm.rank()) as u64;
                    let cell = self.storage.reserve_deferred(prio, bytes, now);
                    self.state = RestoreState::WaitDisk {
                        cell,
                        earliest: now,
                        data,
                    };
                }
                RestoreState::WaitDisk { .. } => unreachable!("handled above"),
                RestoreState::Land { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, RestoreState::Done);
                    let RestoreState::Land { payload, .. } = state else {
                        unreachable!("matched above")
                    };
                    self.buf
                        .store(self.offset, &payload)
                        .expect("range checked at enqueue");
                    return self.settle(true, format!("restore {}", self.path), at);
                }
                RestoreState::Fail { at, .. } => {
                    if now < at {
                        return Step::Park(Some(at));
                    }
                    let state = std::mem::replace(&mut self.state, RestoreState::Done);
                    let RestoreState::Fail { why, .. } = state else {
                        unreachable!("matched above")
                    };
                    return self.settle(false, format!("restore {}: {why}", self.path), at);
                }
                RestoreState::Done => return Step::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use minimpi::run_world_sized;

    #[test]
    fn checkpoint_roundtrip_through_storage() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let a = rt.context().create_buffer(1 << 20);
            let b = rt.context().create_buffer(1 << 20);
            a.store(0, &vec![42u8; 1 << 20]).expect("store in range");
            let ew = rt
                .enqueue_write_file(&q, &a, 0, 1 << 20, &storage, "ckpt.bin", &[], &p.actor)
                .expect("enqueue accepted");
            let er = rt
                .enqueue_read_file(&q, &b, 0, 1 << 20, &storage, "ckpt.bin", &[ew], &p.actor)
                .expect("enqueue accepted");
            er.wait(&p.actor);
            assert_eq!(
                b.load(0, 1 << 20).expect("load in range"),
                vec![42u8; 1 << 20]
            );
            assert_eq!(storage.file_len("ckpt.bin"), Some(1 << 20));
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn checkpoint_overlaps_computation() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(8 << 20);
            // 8 MiB at ~200 MB/s ≈ 40 ms of storage time…
            let ew = rt
                .enqueue_write_file(&q, &buf, 0, 8 << 20, &storage, "c", &[], &p.actor)
                .expect("enqueue accepted");
            // …hidden under 50 ms of computation on the same device.
            let ek = q.enqueue_kernel("compute", 50_000_000, &[], || {});
            ek.wait(&p.actor);
            ew.wait(&p.actor);
            assert!(
                p.actor.now_ns() < 60_000_000,
                "checkpoint hidden under compute: {}",
                p.actor.now_ns()
            );
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn storage_operations_serialize_on_the_device() {
        let clock = SimClock::new();
        let s = SimStorage::node_local_disk(clock);
        let a = s.reserve(1 << 20, 0);
        let b = s.reserve(1 << 20, 0);
        assert!(b > a, "second op queues behind the first");
    }

    #[test]
    fn checkpoint_restore_roundtrip_validates_framing() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let a = rt.context().create_buffer(1 << 16);
            let b = rt.context().create_buffer(1 << 16);
            let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
            a.store(0, &data).expect("store in range");
            let ew = rt
                .enqueue_checkpoint_buffer(&q, &a, 0, 1 << 16, &storage, "ck", &[], &p.actor)
                .expect("enqueue accepted");
            let er = rt
                .enqueue_restore_buffer(&q, &b, 0, 1 << 16, &storage, "ck", &[ew], &p.actor)
                .expect("enqueue accepted");
            er.wait_result(&p.actor).expect("restore validates");
            assert_eq!(b.load(0, 1 << 16).expect("load in range"), data);
            // The file carries the framing header on top of the payload.
            assert_eq!(storage.file_len("ck"), Some((1 << 16) + CKPT_HEADER_LEN));
            let file = storage.read_file("ck").expect("file durable");
            assert_eq!(decode_checkpoint(&file).expect("valid"), &data[..]);
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn restore_rejects_torn_and_missing_files_without_touching_the_buffer() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(1024);
            buf.store(0, &[7u8; 1024]).expect("store in range");
            // A torn file: valid header, truncated payload.
            let full = encode_checkpoint(&[1u8; 1024]);
            storage.write_file("torn", full[..full.len() / 2].to_vec());
            let e = rt
                .enqueue_restore_buffer(&q, &buf, 0, 1024, &storage, "torn", &[], &p.actor)
                .expect("enqueue accepted");
            let err = e.wait_result(&p.actor).expect_err("torn file rejected");
            assert!(format!("{err:?}").contains(&CL_MPI_TRANSFER_ERROR.to_string()));
            // Missing file: same failure mode, no panic.
            let e2 = rt
                .enqueue_restore_buffer(&q, &buf, 0, 1024, &storage, "nope", &[], &p.actor)
                .expect("enqueue accepted");
            e2.wait_result(&p.actor).expect_err("missing file rejected");
            // The buffer kept its prior contents through both rejections.
            assert_eq!(buf.load(0, 1024).expect("load in range"), vec![7u8; 1024]);
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    fn kill_mid_write_leaves_a_torn_file_that_restore_rejects() {
        use minimpi::{run_world_faulty, FaultPlan};
        // 4 MiB at ~200 MB/s streams for ~20 ms; the node dies at 5 ms,
        // squarely inside the write window.
        let plan = FaultPlan::none().with_node_down(0, 5_000_000);
        run_world_faulty(SystemConfig::ricc().cluster.clone(), 1, plan, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(4 << 20);
            buf.store(0, &vec![9u8; 4 << 20]).expect("store in range");
            let ew = rt
                .enqueue_checkpoint_buffer(&q, &buf, 0, 4 << 20, &storage, "ck", &[], &p.actor)
                .expect("enqueue accepted");
            ew.wait_result(&p.actor)
                .expect_err("mid-write kill poisons the checkpoint event");
            // What survives on storage is the torn intermediate file…
            let file = storage.read_file("ck").expect("torn file present");
            decode_checkpoint(&file).expect_err("torn file detected");
            // …and restore refuses to use it.
            let er = rt
                .enqueue_restore_buffer(&q, &buf, 0, 4 << 20, &storage, "ck", &[], &p.actor)
                .expect("enqueue accepted");
            er.wait_result(&p.actor).expect_err("restore rejects torn");
            rt.shutdown(&p.actor);
        });
    }

    #[test]
    #[should_panic(expected = "clock poisoned by a panicking actor")]
    fn reading_missing_file_fails() {
        run_world_sized(SystemConfig::ricc().cluster.clone(), 1, |p| {
            let rt = crate::ClMpi::new(&p, SystemConfig::ricc());
            let q = rt.context().create_queue(0, "q");
            let storage = SimStorage::node_local_disk(p.clock().clone());
            let buf = rt.context().create_buffer(64);
            let e = rt
                .enqueue_read_file(&q, &buf, 0, 64, &storage, "nope", &[], &p.actor)
                .expect("enqueue accepted");
            e.wait(&p.actor);
            rt.shutdown(&p.actor);
        });
    }
}
